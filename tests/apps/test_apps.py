"""Workload generators: they parse, classify as declared, and run."""

import pytest

from repro.apps import APP_BUILDERS, build_app
from repro.apps.base import AppSpec, mix_stages, stage_decls
from repro.analysis.patterns import find_opportunities
from repro.errors import ReproError
from repro.interp import run_cluster
from repro.lang import parse

SMALL = {
    "figure2": dict(n=32, nranks=4, steps=1, stages=2),
    "indirect": dict(n=8, nranks=4, stages=2),
    "indirect-external": dict(n=8, nranks=4, stages=2),
    "fft": dict(n=8, nranks=4, steps=1, stages=2),
    "sort": dict(keys_per_dest=8, nranks=4, steps=1, stages=2),
    "stencil": dict(n=8, nranks=4, steps=1),
    "lu": dict(n=8, nranks=4, steps=1),
    "nodeloop": dict(n=8, nranks=4, steps=1, stages=2),
    "cg": dict(n=16, nranks=4, steps=2, ndots=4, stages=2),
    "halo": dict(n=8, nranks=4, steps=2, stages=2),
}


@pytest.mark.parametrize("name", sorted(APP_BUILDERS))
def test_app_parses(name):
    app = build_app(name, **SMALL[name])
    parse(app.source)


@pytest.mark.parametrize("name", sorted(APP_BUILDERS))
def test_app_detector_classification(name):
    app = build_app(name, **SMALL[name])
    result = find_opportunities(parse(app.source), oracle=app.oracle)
    if app.kind == "collective":
        # collective-bound workloads carry no alltoall site: they exist
        # for the algorithm ablation, not for the pre-push transform
        assert len(result.opportunities) == 0
        return
    assert len(result.opportunities) == 1, [
        r.reason for r in result.rejections
    ]
    assert result.opportunities[0].kind.value == app.kind


@pytest.mark.parametrize("name", sorted(APP_BUILDERS))
def test_app_runs_on_cluster(name):
    app = build_app(name, **SMALL[name])
    run = run_cluster(app.source, app.nranks, externals=app.externals)
    assert run.time > 0
    for array in app.check_arrays:
        assert array in run.arrays[0]


def test_unknown_app_rejected():
    with pytest.raises(KeyError, match="unknown app"):
        build_app("quicksort")


def test_indivisible_sizes_rejected():
    with pytest.raises(ReproError, match="not divisible"):
        build_app("figure2", n=10, nranks=4)
    with pytest.raises(ReproError, match="not divisible"):
        build_app("fft", n=10, nranks=4)


def test_rank_dependence():
    """Every app's data must differ across ranks (otherwise the exchange
    proves nothing)."""
    import numpy as np

    for name in sorted(APP_BUILDERS):
        app = build_app(name, **SMALL[name])
        run = run_cluster(app.source, app.nranks, externals=app.externals)
        a0 = run.arrays[0][app.check_arrays[0]]
        a1 = run.arrays[1][app.check_arrays[0]]
        assert not np.array_equal(a0, a1), name


def test_external_variant_matches_subroutine_variant():
    """The Python external producer reproduces the in-language producer's
    integer arithmetic exactly."""
    import numpy as np

    sub = build_app("indirect", n=8, nranks=4, stages=3)
    ext = build_app("indirect-external", n=8, nranks=4, stages=3)
    run_sub = run_cluster(sub.source, 4)
    run_ext = run_cluster(ext.source, 4, externals=ext.externals)
    for r in range(4):
        assert np.array_equal(run_sub.array(r, "ar"), run_ext.array(r, "ar"))


class TestMixStages:
    def test_zero_stages_direct_assign(self):
        assert mix_stages("x + 1", 0, result="a(i)") == "      a(i) = x + 1\n"

    def test_stage_chain_structure(self):
        text = mix_stages("seed", 3, result="a(i)", indent="")
        lines = text.strip().splitlines()
        assert lines[0] == "t0 = seed"
        assert lines[-1] == "a(i) = t3"
        assert len(lines) == 5

    def test_negative_stages_rejected(self):
        with pytest.raises(ReproError):
            mix_stages("x", -1, result="y")

    def test_stage_decls(self):
        assert stage_decls(0) == ""
        assert "t0, t1, t2" in stage_decls(2)


def test_appspec_requires_two_ranks():
    with pytest.raises(ReproError, match=">= 2 ranks"):
        AppSpec(
            name="x",
            description="",
            source="",
            nranks=1,
            kind="direct",
            scheme="A",
            check_arrays=(),
        )
