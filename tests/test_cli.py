"""The compuniformer CLI."""

import pytest

from repro.cli import main
from tests.programs import direct_1d


@pytest.fixture
def kernel_file(tmp_path):
    p = tmp_path / "kernel.f90"
    p.write_text(direct_1d(n=16, nprocs=4, steps=1))
    return p


class TestTransform:
    def test_transform_to_stdout(self, kernel_file, capsys):
        rc = main(["transform", str(kernel_file), "-K", "4", "-q"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mpi_isend" in out
        assert "mpi_alltoall" not in out

    def test_transform_to_file(self, kernel_file, tmp_path, capsys):
        out_file = tmp_path / "out.f90"
        rc = main(
            ["transform", str(kernel_file), "-K", "4", "-o", str(out_file)]
        )
        assert rc == 0
        assert "mpi_isend" in out_file.read_text()
        assert "direct pattern" in capsys.readouterr().err

    def test_transform_auto_k(self, kernel_file):
        assert main(["transform", str(kernel_file), "-q"]) == 0

    def test_untransformable_returns_2(self, tmp_path, capsys):
        p = tmp_path / "plain.f90"
        p.write_text("program p\n  integer :: x\n\n  x = 1\nend program p\n")
        assert main(["transform", str(p), "-q"]) == 2

    def test_parse_error_returns_1(self, tmp_path, capsys):
        p = tmp_path / "broken.f90"
        p.write_text("program p\n  do i = \nend program p\n")
        assert main(["transform", str(p), "-q"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_run_reports_timing(self, kernel_file, capsys):
        rc = main(["run", str(kernel_file), "-n", "4", "--network", "mpich-gm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan:" in out
        assert "messages:" in out
        assert "collectives:" in out

    def test_run_with_collective(self, kernel_file, capsys):
        rc = main(
            ["run", str(kernel_file), "-n", "4", "--collective", "bruck"]
        )
        assert rc == 0
        assert "alltoall=bruck" in capsys.readouterr().out

    def test_run_rejects_unknown_collective(self, kernel_file, capsys):
        rc = main(
            ["run", str(kernel_file), "-n", "4", "--collective", "quantum"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestCollectives:
    def test_list(self, capsys):
        assert main(["collectives"]) == 0
        out = capsys.readouterr().out
        assert "alltoall" in out
        assert "pairwise (default)" in out
        assert "bruck" in out
        assert "allreduce" in out and "bcast" in out


class TestVerify:
    def test_verify_equivalent(self, kernel_file, capsys):
        rc = main(["verify", str(kernel_file), "-n", "4", "-K", "4"])
        assert rc == 0
        assert "EQUIVALENT" in capsys.readouterr().out


class TestApps:
    def test_list(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out and "indirect" in out

    def test_print_source(self, capsys):
        assert main(["apps", "fft"]) == 0
        assert "mpi_alltoall" in capsys.readouterr().out
