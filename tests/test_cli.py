"""The compuniformer CLI."""

import json

import pytest

from repro.cli import main
from tests.programs import direct_1d


@pytest.fixture
def kernel_file(tmp_path):
    p = tmp_path / "kernel.f90"
    p.write_text(direct_1d(n=16, nprocs=4, steps=1))
    return p


class TestTransform:
    def test_transform_to_stdout(self, kernel_file, capsys):
        rc = main(["transform", str(kernel_file), "-K", "4", "-q"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mpi_isend" in out
        assert "mpi_alltoall" not in out

    def test_transform_to_file(self, kernel_file, tmp_path, capsys):
        out_file = tmp_path / "out.f90"
        rc = main(
            ["transform", str(kernel_file), "-K", "4", "-o", str(out_file)]
        )
        assert rc == 0
        assert "mpi_isend" in out_file.read_text()
        assert "direct pattern" in capsys.readouterr().err

    def test_transform_auto_k(self, kernel_file):
        assert main(["transform", str(kernel_file), "-q"]) == 0

    def test_untransformable_returns_2(self, tmp_path, capsys):
        p = tmp_path / "plain.f90"
        p.write_text("program p\n  integer :: x\n\n  x = 1\nend program p\n")
        assert main(["transform", str(p), "-q"]) == 2

    def test_parse_error_returns_1(self, tmp_path, capsys):
        p = tmp_path / "broken.f90"
        p.write_text("program p\n  do i = \nend program p\n")
        assert main(["transform", str(p), "-q"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_run_reports_timing(self, kernel_file, capsys):
        rc = main(["run", str(kernel_file), "-n", "4", "--network", "mpich-gm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan:" in out
        assert "messages:" in out
        assert "collectives:" in out

    def test_run_with_collective(self, kernel_file, capsys):
        rc = main(
            ["run", str(kernel_file), "-n", "4", "--collective", "bruck"]
        )
        assert rc == 0
        assert "alltoall=bruck" in capsys.readouterr().out

    def test_run_rejects_unknown_collective(self, kernel_file, capsys):
        rc = main(
            ["run", str(kernel_file), "-n", "4", "--collective", "quantum"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestCollectives:
    def test_list(self, capsys):
        assert main(["collectives"]) == 0
        out = capsys.readouterr().out
        assert "alltoall" in out
        assert "pairwise (default)" in out
        assert "bruck" in out
        assert "allreduce" in out and "bcast" in out


class TestVerify:
    def test_verify_equivalent(self, kernel_file, capsys):
        rc = main(["verify", str(kernel_file), "-n", "4", "-K", "4"])
        assert rc == 0
        assert "EQUIVALENT" in capsys.readouterr().out


class TestApps:
    def test_list(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out and "indirect" in out

    def test_print_source(self, capsys):
        assert main(["apps", "fft"]) == 0
        assert "mpi_alltoall" in capsys.readouterr().out


class TestSweep:
    """The sweep subcommand: cached figure regeneration and custom specs."""

    FIGURE_ARGS = [
        "sweep",
        "figure1",
        "--n",
        "8",
        "--nranks",
        "4",
        "--stages",
        "2",
    ]

    def test_figure_target_warm_cache_is_bit_identical(self, tmp_path, capsys):
        args = self.FIGURE_ARGS + ["--cache-dir", str(tmp_path / "c")]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "Figure 1" in cold.out
        assert "misses" in cold.err

        assert main(args) == 0
        warm = capsys.readouterr()
        # the acceptance criterion: zero simulations, identical tables
        assert warm.out == cold.out
        assert "0 misses" in warm.err
        assert "verify 1 hits" in warm.err

    def test_no_cache_bypasses_a_populated_cache(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "c")]
        assert main(self.FIGURE_ARGS + cache) == 0
        capsys.readouterr()
        assert main(self.FIGURE_ARGS + cache + ["--no-cache"]) == 0
        res = capsys.readouterr()
        assert "cache[" not in res.err  # the cache was never consulted

    def test_custom_sweep_with_artifact(self, tmp_path, capsys):
        out = tmp_path / "art.json"
        args = [
            "sweep",
            "--app",
            "fft",
            "--n",
            "8",
            "--nranks",
            "4",
            "-K",
            "2",
            "-K",
            "4",
            "--cache-dir",
            str(tmp_path / "c"),
            "-o",
            str(out),
        ]
        assert main(args) == 0
        table = capsys.readouterr().out
        assert "cli-fft" in table and "prepush" in table
        artifact = json.loads(out.read_text())
        assert artifact["cache"]["misses"] > 0
        runs = artifact["result"]["runs"]
        assert len(runs) == 4  # 2 tile sizes x 2 variants
        # warm re-run: refused without --force (the artifact exists),
        # then reports zero misses and identical values with it
        assert main(args) == 1
        assert "refusing to overwrite" in capsys.readouterr().err
        assert main(args + ["--force"]) == 0
        warm = json.loads(out.read_text())
        assert warm["cache"]["misses"] == 0
        assert warm["result"]["stats"]["simulated"] == 0
        for a, b in zip(runs, warm["result"]["runs"]):
            assert a["measurement"] == b["measurement"]

    def test_spec_file(self, tmp_path, capsys):
        spec = {
            "name": "from-file",
            "app": "fft",
            "app_kwargs": {"n": 8, "steps": 1, "stages": 2},
            "nranks": [4],
            "tile_sizes": [4],
            "networks": ["gmnet"],
            "verify": False,
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        assert main(["sweep", "--spec", str(path), "--no-cache"]) == 0
        assert "from-file" in capsys.readouterr().out

    def test_bad_spec_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text('{"name": "x", "app": "fft", "colour": "red"}')
        assert main(["sweep", "--spec", str(path), "--no-cache"]) == 1
        assert "unknown keys" in capsys.readouterr().err

    def test_spec_and_app_conflict(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text("{}")
        rc = main(
            ["sweep", "--spec", str(path), "--app", "fft", "--no-cache"]
        )
        assert rc == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_figure_target_rejects_axis_flags(self, capsys):
        """Flags a figure target cannot honor must error, not silently
        run a different sweep than the one asked for."""
        rc = main(["sweep", "figure1", "-K", "4", "--no-cache"])
        assert rc == 1
        assert "custom sweeps" in capsys.readouterr().err

        rc = main(
            [
                "sweep",
                "figure1",
                "--network",
                "gmnet",
                "--network",
                "hostnet",
                "--no-cache",
            ]
        )
        assert rc == 1
        assert "repeated --network" in capsys.readouterr().err

    def test_figure_target_rejects_unaccepted_flag(self, capsys):
        # ablation_scenarios sweeps every scenario itself: a single
        # --network cannot be honored and must not be dropped
        rc = main(
            ["sweep", "scenarios", "--network", "gmnet", "--no-cache"]
        )
        assert rc == 1
        assert "--network not supported" in capsys.readouterr().err


class TestVariants:
    def test_list_variants(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        assert "original" in out and "(empty: program unchanged)" in out
        assert "prepush" in out
        assert "interchange -> tile -> commgen -> indirect-elim" in out
        assert "tile-only" in out and "prepush-schemeB-off" in out

    def test_run_with_variant_and_report(self, kernel_file, capsys):
        rc = main(
            [
                "run",
                str(kernel_file),
                "-n",
                "4",
                "--variant",
                "prepush",
                "-K",
                "4",
                "--report",
            ]
        )
        assert rc == 0
        res = capsys.readouterr()
        assert "variant:        prepush" in res.out
        assert "makespan:" in res.out
        # the per-pass chain lands on stderr
        assert "pipeline prepush" in res.err
        assert "pass commgen" in res.err

    def test_run_report_requires_variant(self, kernel_file, capsys):
        rc = main(["run", str(kernel_file), "-n", "4", "--report"])
        assert rc == 1
        assert "--variant" in capsys.readouterr().err

    def test_run_variant_changes_traffic(self, kernel_file, capsys):
        assert main(["run", str(kernel_file), "-n", "4"]) == 0
        plain = capsys.readouterr().out
        assert (
            main(
                ["run", str(kernel_file), "-n", "4", "--variant", "prepush"]
            )
            == 0
        )
        treated = capsys.readouterr().out

        def messages(out):
            return next(
                line for line in out.splitlines() if "messages:" in line
            )

        assert messages(plain) != messages(treated)

    def test_custom_sweep_with_variant_axis(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "--app",
                "fft",
                "--n",
                "8",
                "--nranks",
                "4",
                "--variant",
                "original",
                "--variant",
                "no-interchange",
                "--no-cache",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "no-interchange" in out

    def test_figure_target_accepts_single_variant(self, capsys):
        # nodeloop at tiny geometry: --variant selects the treatment arm
        rc = main(
            [
                "sweep",
                "nodeloop",
                "--n",
                "8",
                "--nranks",
                "4",
                "--stages",
                "1",
                "--no-verify",
                "--no-cache",
                "--variant",
                "tile-only",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tile-only+interchange" in out

    def test_figure_target_rejects_repeated_variant(self, capsys):
        rc = main(
            [
                "sweep",
                "figure1",
                "--variant",
                "prepush",
                "--variant",
                "tile-only",
                "--no-cache",
            ]
        )
        assert rc == 1
        assert "repeated --variant" in capsys.readouterr().err

    def test_run_tile_size_requires_variant(self, kernel_file, capsys):
        rc = main(["run", str(kernel_file), "-n", "4", "-K", "4"])
        assert rc == 1
        assert "--variant" in capsys.readouterr().err

    def test_run_variant_untransformable_errors(self, tmp_path, capsys):
        p = tmp_path / "plain.f90"
        p.write_text("program p\n  integer :: x\n\n  x = 1\nend program p\n")
        rc = main(["run", str(p), "-n", "2", "--variant", "prepush"])
        assert rc == 1
        assert "transformed nothing" in capsys.readouterr().err

    def test_run_partial_variant_unchanged_notes(self, tmp_path, capsys):
        from repro.apps import build_app

        p = tmp_path / "ind.f90"
        p.write_text(build_app("indirect", n=8, nranks=4, stages=1).source)
        rc = main(["run", str(p), "-n", "4", "--variant", "tile-only"])
        assert rc == 0
        res = capsys.readouterr()
        assert "left the program unchanged" in res.err
        assert "makespan:" in res.out

    def test_variants_target_accepts_repeated_variant(self, capsys):
        rc = main(
            [
                "sweep",
                "variants",
                "--nranks",
                "4",
                "--variant",
                "tile-only",
                "--variant",
                "no-interchange",
                "--network",
                "gmnet",
                "--no-verify",
                "--no-cache",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tile-only" in out and "no-interchange" in out


P2P_KERNEL = """
program ring
  integer :: buf(1:8)
  integer :: i, ierr
  do i = 1, 8
    buf(i) = i + mynode()
  enddo
  call mpi_isend(buf, 8, mod(mynode() + 1, numnodes()), 0, ierr)
  call mpi_waitall(ierr)
end program ring
"""


class TestEngineMode:
    """--engine-mode on run/bench/sweep (DESIGN.md §10)."""

    @pytest.fixture
    def p2p_file(self, tmp_path):
        p = tmp_path / "p2p.f90"
        p.write_text(P2P_KERNEL)
        return p

    def test_run_round_trips_and_modes_agree(self, kernel_file, capsys):
        reports = {}
        for mode in ("auto", "replay", "full"):
            rc = main(
                ["run", str(kernel_file), "-n", "4", "--engine-mode", mode]
            )
            assert rc == 0
            reports[mode] = capsys.readouterr().out
            assert "makespan:" in reports[mode]
        # the engine contract: every mode prints the same numbers
        assert reports["auto"] == reports["replay"] == reports["full"]

    def test_forced_replay_on_asymmetric_program_errors(
        self, p2p_file, capsys
    ):
        rc = main(
            ["run", str(p2p_file), "-n", "4", "--engine-mode", "replay"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "not provably rank-symmetric" in err

    def test_auto_falls_back_silently_on_asymmetric_program(
        self, p2p_file, capsys
    ):
        assert main(["run", str(p2p_file), "-n", "4"]) == 0
        auto = capsys.readouterr()
        assert main(
            ["run", str(p2p_file), "-n", "4", "--engine-mode", "full"]
        ) == 0
        full = capsys.readouterr()
        assert auto.out == full.out
        assert "not provably rank-symmetric" not in auto.err

    def test_run_rejects_unknown_mode(self, kernel_file, capsys):
        with pytest.raises(SystemExit):
            main(
                ["run", str(kernel_file), "-n", "4", "--engine-mode", "warp"]
            )
        assert "invalid choice" in capsys.readouterr().err

    def test_bench_accepts_engine_mode(self, capsys):
        rc = main(["bench", "nodeloop", "--engine-mode", "full"])
        assert rc == 0
        assert "Ablation E" in capsys.readouterr().out

    def test_sweep_engine_modes_share_results(self, tmp_path, capsys):
        args = [
            "sweep",
            "--app",
            "fft",
            "--n",
            "8",
            "--nranks",
            "4",
            "--variant",
            "original",
            "--no-verify",
            "--no-cache",
        ]
        outs = {}
        for mode in ("replay", "full"):
            out = tmp_path / f"{mode}.json"
            rc = main(args + ["--engine-mode", mode, "-o", str(out)])
            assert rc == 0
            capsys.readouterr()
            outs[mode] = json.loads(out.read_text())
        replay = outs["replay"]["result"]["runs"]
        full = outs["full"]["result"]["runs"]
        assert replay and len(replay) == len(full)
        for a, b in zip(replay, full):
            assert a["measurement"] == b["measurement"]
