"""Shared fixtures wrapping the canonical test programs."""

from __future__ import annotations

import pytest
from hypothesis import settings

from tests.programs import direct_1d, direct_2d, indirect_3d, nodeloop_outer

# Property tests run a deterministic simulator / exact solvers whose cost
# per example varies widely; the wall-clock deadline is meaningless and
# 50 examples keeps the full suite's runtime bounded.  Tests may override
# with their own @settings.
settings.register_profile("repro", deadline=None, max_examples=50)
settings.load_profile("repro")


@pytest.fixture
def fig2_source() -> str:
    return direct_1d()


@pytest.fixture
def twod_source() -> str:
    return direct_2d()


@pytest.fixture
def nodeloop_source() -> str:
    return nodeloop_outer()


@pytest.fixture
def indirect_source() -> str:
    return indirect_3d()
