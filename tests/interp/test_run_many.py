"""The batch runner: RunBatch mode surfacing and the fallback paths.

The serial fallback used to be silent — a sandbox without working
multiprocessing would quietly run a "parallel" sweep in-process.  These
tests pin that every path reports how it actually executed.
"""

import concurrent.futures

import pytest

from repro.apps import build_app
from repro.interp.runner import ClusterJob, RunBatch, run_many


def make_jobs(count=2, nranks=2):
    app = build_app("fft", n=8, nranks=nranks, steps=1, stages=1)
    return [
        ClusterJob(program=app.source, nranks=nranks, network="gmnet")
        for _ in range(count)
    ]


class _FakePool:
    """ProcessPoolExecutor stand-in that maps in-process.

    Lets the pool bookkeeping path run deterministically even in
    sandboxes where real multiprocessing is unavailable.
    """

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def map(self, fn, items):
        return [fn(item) for item in items]


class _BrokenPool:
    def __init__(self, max_workers=None):
        raise OSError("no process support in this sandbox")


class TestRunManyModes:
    def test_no_pool_requested(self):
        batch = run_many(make_jobs(), processes=None)
        assert isinstance(batch, RunBatch)
        assert batch.mode == "serial"
        assert batch.reason == "no pool requested"
        assert batch.processes == 1
        assert len(batch) == 2

    def test_single_job_stays_serial(self):
        batch = run_many(make_jobs(count=1), processes=8)
        assert batch.mode == "serial"
        assert "too small" in batch.reason

    def test_unpicklable_jobs_fall_back(self):
        app = build_app("indirect-external", n=4, nranks=2, stages=1)
        jobs = [
            ClusterJob(
                program=app.source, nranks=2, externals=app.externals
            )
            for _ in range(2)
        ]
        batch = run_many(jobs, processes=4)
        assert batch.mode == "serial"
        assert "not picklable" in batch.reason

    def test_pool_mode_reported(self, monkeypatch):
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _FakePool
        )
        batch = run_many(make_jobs(count=3), processes=2)
        assert batch.mode == "pool"
        assert batch.reason == ""
        assert batch.processes == 2  # min(processes, len(jobs))
        assert len(batch) == 3

    def test_broken_pool_falls_back_with_reason(self, monkeypatch):
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _BrokenPool
        )
        batch = run_many(make_jobs(), processes=2)
        assert batch.mode == "serial"
        assert "pool unavailable" in batch.reason
        assert len(batch) == 2

    def test_pool_and_serial_results_identical(self, monkeypatch):
        """Both paths must return the same results in the same order —
        the §3.2 determinism argument the sweep cache is built on."""
        jobs = make_jobs(count=3)
        serial = run_many(jobs, processes=None)
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _FakePool
        )
        pooled = run_many(jobs, processes=2)
        assert pooled.mode == "pool"
        for a, b in zip(serial, pooled):
            assert a.result.time == b.result.time
            assert a.result.rank_times == b.result.rank_times
            assert a.result.stats == b.result.stats
