"""FArray: Fortran array semantics over numpy storage."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InterpError
from repro.interp.values import FArray


class TestAllocate:
    def test_basic(self):
        a = FArray.allocate("integer", [(1, 4), (1, 3)])
        assert a.shape == (4, 3)
        assert a.lbounds == (1, 1)
        assert a.data.dtype == np.int64
        assert a.data.flags["F_CONTIGUOUS"]

    def test_real(self):
        a = FArray.allocate("real", [(1, 2)])
        assert a.data.dtype == np.float64

    def test_custom_lower_bounds(self):
        a = FArray.allocate("integer", [(0, 3), (-2, 2)])
        assert a.shape == (4, 5)
        assert a.lbounds == (0, -2)

    def test_degenerate_rejected(self):
        with pytest.raises(InterpError):
            FArray.allocate("integer", [(5, 4)])

    def test_unknown_type_rejected(self):
        with pytest.raises(InterpError):
            FArray.allocate("complex", [(1, 2)])


class TestIndexing:
    def test_get_set_roundtrip(self):
        a = FArray.allocate("integer", [(1, 3), (1, 3)])
        a.set([2, 3], 42)
        assert a.get([2, 3]) == 42

    def test_lower_bound_offset(self):
        a = FArray.allocate("integer", [(0, 2)])
        a.set([0], 7)
        assert a.data[0] == 7

    def test_bounds_checked(self):
        a = FArray.allocate("integer", [(1, 3)])
        with pytest.raises(InterpError, match="out of bounds"):
            a.get([4])
        with pytest.raises(InterpError, match="out of bounds"):
            a.get([0])

    def test_rank_checked(self):
        a = FArray.allocate("integer", [(1, 3)])
        with pytest.raises(InterpError, match="rank mismatch"):
            a.get([1, 1])


class TestColumnMajorOrder:
    def test_flat_is_fortran_order(self):
        a = FArray.allocate("integer", [(1, 2), (1, 2)])
        a.set([1, 1], 11)
        a.set([2, 1], 21)
        a.set([1, 2], 12)
        a.set([2, 2], 22)
        assert list(a.flat()) == [11, 21, 12, 22]

    def test_flat_offset(self):
        a = FArray.allocate("integer", [(1, 3), (1, 4)])
        # column-major: offset(i, j) = (i-1) + 3*(j-1)
        assert a.flat_offset([1, 1]) == 0
        assert a.flat_offset([3, 1]) == 2
        assert a.flat_offset([1, 2]) == 3
        assert a.flat_offset([2, 4]) == 10

    @given(
        i=st.integers(1, 3),
        j=st.integers(1, 4),
        k=st.integers(1, 2),
    )
    def test_flat_offset_matches_flat_view(self, i, j, k):
        a = FArray.allocate("integer", [(1, 3), (1, 4), (1, 2)])
        a.set([i, j, k], 999)
        assert a.flat()[a.flat_offset([i, j, k])] == 999
        a.set([i, j, k], 0)


class TestSections:
    def test_contiguous_column(self):
        a = FArray.allocate("integer", [(1, 4), (1, 4)])
        a.set([2, 3], 5)
        sec = a.section([(1, 4), 3])
        assert sec.shape == (4,)
        assert sec[1] == 5

    def test_section_is_view(self):
        a = FArray.allocate("integer", [(1, 4)])
        sec = a.section([(2, 3)])
        sec[0] = 77
        assert a.get([2]) == 77

    def test_section_bounds_checked(self):
        a = FArray.allocate("integer", [(1, 4)])
        with pytest.raises(InterpError):
            a.section([(0, 2)])
        with pytest.raises(InterpError):
            a.section([(3, 5)])

    def test_empty_section_allowed(self):
        a = FArray.allocate("integer", [(1, 4)])
        assert a.section([(3, 2)]).size == 0


class TestSequenceAssociation:
    def test_view_from_window(self):
        a = FArray.allocate("integer", [(1, 10)])
        for i in range(1, 11):
            a.set([i], i)
        w = a.view_from(4, [(1, 3)], "integer")
        assert list(w.flat()) == [5, 6, 7]
        w.set([1], 99)
        assert a.get([5]) == 99  # shares storage

    def test_view_from_reshapes(self):
        a = FArray.allocate("integer", [(1, 12)])
        w = a.view_from(0, [(1, 3), (1, 4)], "integer")
        assert w.shape == (3, 4)
        w.set([2, 1], 5)
        assert a.get([2]) == 5  # column-major: (2,1) -> flat 1

    def test_view_from_overrun_rejected(self):
        a = FArray.allocate("integer", [(1, 4)])
        with pytest.raises(InterpError, match="sequence association"):
            a.view_from(2, [(1, 4)], "integer")


def test_copy_is_independent():
    a = FArray.allocate("integer", [(1, 3)])
    b = a.copy()
    b.set([1], 5)
    assert a.get([1]) == 0


def test_equality():
    a = FArray.allocate("integer", [(1, 2)])
    b = FArray.allocate("integer", [(1, 2)])
    assert a == b
    b.set([1], 1)
    assert a != b
