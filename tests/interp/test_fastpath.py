"""The compiled fast path: purity analysis and semantic/timing parity.

The closure compiler (repro.interp.compiler) must be invisible: same
values, same printed output, same virtual-time totals as the generator
slow path.  These tests pin the behaviors that are easiest to get
subtly wrong — control flow exceptions crossing compiled frames,
recursion through lazily compiled bodies, and Compute-event batching.
"""

import pytest

from repro.errors import InterpError
from repro.interp import Interpreter
from repro.interp.runner import run_cluster, run_serial
from repro.lang import parse
from repro.runtime.costmodel import CostModel


class TestPurity:
    def test_mpi_statements_are_impure(self):
        src = """
program t
  integer :: x, ierr

  x = 1
  call mpi_barrier(0, ierr)
end program t
"""
        it = Interpreter(parse(src))
        compiler = it._compiler
        body = it.source.main.body
        assert compiler.stmt_is_pure(body[0])  # x = 1
        assert not compiler.stmt_is_pure(body[1])  # mpi_barrier

    def test_loop_containing_mpi_is_impure_but_compute_loop_is_pure(self):
        src = """
program t
  integer :: i, x, ierr

  do i = 1, 3
    x = i
  enddo
  do i = 1, 3
    call mpi_barrier(0, ierr)
  enddo
end program t
"""
        it = Interpreter(parse(src))
        body = it.source.main.body
        assert it._compiler.stmt_is_pure(body[0])
        assert not it._compiler.stmt_is_pure(body[1])

    def test_call_purity_follows_the_call_graph(self):
        src = """
program t
  integer :: ierr

  call leaf(ierr)
  call comm(ierr)
end program t

subroutine leaf(r)
  integer :: r

  r = 1
end subroutine leaf

subroutine comm(r)
  integer :: r

  call mpi_barrier(0, r)
end subroutine comm
"""
        it = Interpreter(parse(src))
        body = it.source.main.body
        assert it._compiler.stmt_is_pure(body[0])  # leaf is compute-only
        assert not it._compiler.stmt_is_pure(body[1])  # comm reaches MPI


class TestMutualRecursionPurity:
    def test_impurity_propagates_through_a_cycle(self):
        """A member of a mutual-recursion cycle whose partner reaches MPI
        must be classified impure — an optimistic recursive memo would
        finalize it as pure and crash the compiled fast path."""
        src = """
program t
  integer :: ierr, n

  n = 2
  call a(n, ierr)
end program t

subroutine a(n, r)
  integer :: n, r

  call b(n, r)
  call mpi_barrier(0, r)
end subroutine a

subroutine b(n, r)
  integer :: n, r

  if (n > 0) then
    n = n - 1
    call a(n, r)
  endif
end subroutine b
"""
        it = Interpreter(parse(src))
        compiler = it._compiler
        for unit in it.subroutines.values():
            assert not compiler.sub_is_pure(unit)
        # and the program actually runs on the cluster without tripping
        # the fast path's pure-region invariant
        run = run_cluster(src, nranks=2)
        assert run.time > 0


class TestControlFlowParity:
    def test_exit_and_cycle_in_nested_pure_loops(self):
        src = """
program t
  integer :: i, j, hits

  hits = 0
  do i = 1, 5
    do j = 1, 5
      if (j == 3) then
        cycle
      endif
      if (j == 4 .and. i >= 3) then
        exit
      endif
      hits = hits + 1
    enddo
  enddo
  print *, hits, i, j
end program t
"""
        run = run_serial(src)
        # i = 1, 2: j skips 3, completes -> 4 hits each; i = 3..5: j = 1, 2
        # hit, 3 cycles, 4 exits -> 2 hits each
        assert run.outputs[0] == [(14, 6, 4)]

    def test_while_loop_with_exit(self):
        src = """
program t
  integer :: n, steps

  n = 27
  steps = 0
  do while (n /= 1)
    if (steps > 200) then
      exit
    endif
    if (mod(n, 2) == 0) then
      n = n / 2
    else
      n = 3 * n + 1
    endif
    steps = steps + 1
  enddo
  print *, n, steps
end program t
"""
        run = run_serial(src)
        assert run.outputs[0] == [(1, 111)]  # collatz(27) reaches 1 in 111 steps

    def test_recursive_subroutine_through_lazy_compile(self):
        src = """
program t
  integer :: r

  r = 0
  call fact(5, r)
  print *, r
end program t

subroutine fact(n, r)
  integer :: n, r

  if (n <= 1) then
    r = 1
  else
    call fact(n - 1, r)
    r = r * n
  endif
end subroutine fact
"""
        run = run_serial(src)
        assert run.outputs[0] == [(120,)]

    def test_undeclared_scalar_still_raises(self):
        src = """
program t
  integer :: x

  y = x
end program t
"""
        with pytest.raises(InterpError, match="undeclared scalar"):
            run_serial(src)

    def test_out_of_bounds_still_raises(self):
        src = """
program t
  integer :: a(1:4)

  a(5) = 1
end program t
"""
        with pytest.raises(InterpError, match="out of bounds"):
            run_serial(src)


class TestTimingParity:
    SRC = """
program t
  integer :: a(1:32)
  integer :: i, k, s, ierr

  s = 0
  do k = 1, 4
    do i = 1, 32
      a(i) = i * k
    enddo
    call mpi_barrier(0, ierr)
    do i = 1, 32
      s = s + a(i)
    enddo
  enddo
  print *, s
end program t
"""

    def test_flush_threshold_does_not_change_totals(self):
        """Compute batching granularity must be timing-invisible: the
        fast path accumulates whole pure regions regardless of the
        threshold, and totals at MPI boundaries are exact."""
        default = run_cluster(self.SRC, nranks=2)
        tiny = run_cluster(
            self.SRC, nranks=2, cost_model=CostModel(flush_threshold=1e-12)
        )
        assert default.result.time == tiny.result.time
        assert default.result.rank_times == tiny.result.rank_times
        assert default.outputs == tiny.outputs

    def test_determinism_across_runs(self):
        a = run_cluster(self.SRC, nranks=2)
        b = run_cluster(self.SRC, nranks=2)
        assert a.result.time == b.result.time
        assert a.result.stats == b.result.stats


class TestEngineBatching:
    def test_consecutive_computes_batch_to_same_total(self):
        import numpy as np

        from repro.runtime import Compute, Engine

        def chunks():
            for _ in range(1000):
                yield Compute(seconds=1e-6)

        def single():
            yield Compute(seconds=1000 * 1e-6)

        a = Engine([chunks()], "ideal").run()
        b = Engine([single()], "ideal").run()
        assert a.time == pytest.approx(b.time)
        assert a.stats[0].compute_time == pytest.approx(
            b.stats[0].compute_time
        )

    def test_ops_processed_counts_batched_computes(self):
        from repro.runtime import Compute, Engine

        def prog():
            for _ in range(50):
                yield Compute(seconds=1e-6)

        engine = Engine([prog()], "ideal")
        engine.run()
        assert engine.ops_processed >= 50


class TestCopyOnWritePayloads:
    def test_inflight_mutation_still_detected_and_snapshot_delivered(self):
        import numpy as np

        from repro.runtime import Compute, Engine, Irecv, Isend, Wait

        received = np.zeros(4, dtype=np.int64)
        buf = np.array([1, 2, 3, 4], dtype=np.int64)

        def sender():
            h = yield Isend(dest=1, tag=0, data=buf)
            buf[0] = 99  # mutate with the transfer in flight: a race
            yield Compute(seconds=1.0)
            yield Wait(handles=[h])

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=received, nbytes=32)
            yield Wait(handles=[h])

        result = Engine([sender(), receiver()], "gmnet").run()
        # the receiver sees the isend-time payload, not the mutated buffer
        assert list(received) == [1, 2, 3, 4]
        assert any("modified while the transfer" in w for w in result.warnings)

    def test_no_false_race_when_buffer_untouched(self):
        import numpy as np

        from repro.runtime import Engine, Irecv, Isend, Wait

        received = np.zeros(4, dtype=np.int64)
        buf = np.array([5, 6, 7, 8], dtype=np.int64)

        def sender():
            h = yield Isend(dest=1, tag=0, data=buf)
            yield Wait(handles=[h])

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=received, nbytes=32)
            yield Wait(handles=[h])

        result = Engine([sender(), receiver()], "gmnet").run()
        assert list(received) == [5, 6, 7, 8]
        assert result.warnings == []
