"""External procedures and the make_producer factory."""

import numpy as np
import pytest

from repro.errors import InterpError
from repro.interp.procedures import (
    ExternalCall,
    ExternalProc,
    ExternalRegistry,
    make_producer,
)
from repro.interp.values import FArray


class TestRegistry:
    def test_register_lookup(self):
        p = ExternalProc("f", lambda call: None)
        reg = ExternalRegistry([p])
        assert reg.lookup("f") is p
        assert reg.lookup("g") is None
        assert reg.names() == ["f"]

    def test_oracle_answers(self):
        reg = ExternalRegistry(
            [
                ExternalProc("f", lambda c: None, mutates={1}),
                ExternalProc("g", lambda c: None, mutates={0, 2}),
            ]
        )
        assert reg.oracle_answers() == {"f": {1}, "g": {0, 2}}


class TestExternalCall:
    def test_scalar_and_array_accessors(self):
        arr = FArray.allocate("integer", [(1, 4)])
        call = ExternalCall(name="f", args=[7, arr], rank=0, size=2)
        assert call.scalar(0) == 7
        assert call.array(1) is arr

    def test_type_confusion_raises(self):
        arr = FArray.allocate("integer", [(1, 4)])
        call = ExternalCall(name="f", args=[7, arr], rank=0, size=2)
        with pytest.raises(InterpError):
            call.scalar(1)
        with pytest.raises(InterpError):
            call.array(0)


class TestMakeProducer:
    def _producer(self, slab=None):
        def fill(step, rank, size, flat):
            flat[:] = step * 100 + rank

        return make_producer(
            "gen", fill, work_per_element=10e-9, slab_size=slab
        )

    def test_fills_whole_buffer_without_slab_limit(self):
        proc = self._producer()
        arr = FArray.allocate("integer", [(1, 6)])
        cost = proc.fn(ExternalCall("gen", [3, arr], rank=2, size=4))
        assert list(arr.flat()) == [302] * 6
        assert cost == pytest.approx(60e-9)

    def test_slab_size_bounds_writes(self):
        """After the transformation expands At, the producer receives a
        sequence-association window larger than one slab; slab_size keeps
        it from stomping the other slots."""
        proc = self._producer(slab=4)
        arr = FArray.allocate("integer", [(1, 10)])
        cost = proc.fn(ExternalCall("gen", [1, arr], rank=0, size=2))
        flat = list(arr.flat())
        assert flat[:4] == [100] * 4
        assert flat[4:] == [0] * 6
        assert cost == pytest.approx(40e-9)

    def test_declares_mutation(self):
        assert self._producer().mutates == {1}
