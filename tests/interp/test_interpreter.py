"""AST interpreter: Fortran semantics, procedures, costs, MPI interception."""

import numpy as np
import pytest

from repro.errors import InterpError
from repro.interp import ExternalProc, ExternalRegistry, run_cluster, run_serial
from repro.runtime.costmodel import CostModel
from repro.runtime.network import IDEAL, MPICH_GM


def _run(body: str, decls: str = "", **kwargs):
    src = f"program t\n{decls}\n{body}\nend program t\n"
    return run_serial(src, **kwargs)


class TestScalarsAndExpressions:
    def test_assignment_and_print(self):
        run = _run("  x = 2 + 3 * 4\n  print *, x", "  integer :: x")
        assert run.outputs[0] == [(14,)]

    def test_integer_division_truncates_toward_zero(self):
        run = _run(
            "  a = 7 / 2\n  b = (0 - 7) / 2\n  print *, a, b",
            "  integer :: a, b",
        )
        assert run.outputs[0] == [(3, -3)]

    def test_mod_follows_dividend_sign(self):
        run = _run(
            "  a = mod(7, 3)\n  b = mod(0 - 7, 3)\n  print *, a, b",
            "  integer :: a, b",
        )
        assert run.outputs[0] == [(1, -1)]

    def test_real_arithmetic(self):
        run = _run(
            "  x = 1.5 * 2.0\n  print *, x", "  real :: x"
        )
        assert run.outputs[0] == [(3.0,)]

    def test_intrinsics(self):
        run = _run(
            "  print *, min(3, 1, 2), max(4, 9), abs(0 - 5), ishft(1, 4)",
        )
        assert run.outputs[0] == [(1, 9, 5, 16)]

    def test_undefined_variable_raises(self):
        with pytest.raises(InterpError, match="undefined variable"):
            _run("  x = y", "  integer :: x")

    def test_integer_division_by_zero(self):
        with pytest.raises(InterpError, match="division by zero"):
            _run("  x = 1 / 0", "  integer :: x")

    def test_parameter_initializer(self):
        run = _run(
            "  print *, n * 2", "  integer, parameter :: n = 21"
        )
        assert run.outputs[0] == [(42,)]


class TestControlFlow:
    def test_do_loop_trip_count(self):
        run = _run(
            "  s = 0\n  do i = 1, 5\n    s = s + i\n  enddo\n  print *, s",
            "  integer :: s, i",
        )
        assert run.outputs[0] == [(15,)]

    def test_do_loop_zero_trips(self):
        run = _run(
            "  s = 0\n  do i = 5, 1\n    s = s + 1\n  enddo\n  print *, s",
            "  integer :: s, i",
        )
        assert run.outputs[0] == [(0,)]

    def test_do_loop_step(self):
        run = _run(
            "  s = 0\n  do i = 1, 10, 3\n    s = s + i\n  enddo\n  print *, s",
            "  integer :: s, i",
        )
        assert run.outputs[0] == [(22,)]  # 1+4+7+10

    def test_if_elseif_else(self):
        body = """
  do i = 1, 3
    if (i == 1) then
      print *, 10
    elseif (i == 2) then
      print *, 20
    else
      print *, 30
    endif
  enddo"""
        run = _run(body, "  integer :: i")
        assert run.outputs[0] == [(10,), (20,), (30,)]

    def test_exit_and_cycle(self):
        body = """
  s = 0
  do i = 1, 10
    if (mod(i, 2) == 0) then
      cycle
    endif
    if (i > 6) then
      exit
    endif
    s = s + i
  enddo
  print *, s"""
        run = _run(body, "  integer :: s, i")
        assert run.outputs[0] == [(9,)]  # 1 + 3 + 5

    def test_while_loop(self):
        body = """
  i = 1
  do while (i < 100)
    i = i * 2
  enddo
  print *, i"""
        run = _run(body, "  integer :: i")
        assert run.outputs[0] == [(128,)]


class TestArrays:
    def test_column_major_final_arrays(self):
        body = """
  do j = 1, 2
    do i = 1, 2
      a(i, j) = i * 10 + j
    enddo
  enddo"""
        run = _run(body, "  integer :: a(1:2, 1:2)\n  integer :: i, j")
        a = run.array(0, "a")
        assert a[0, 0] == 11 and a[1, 0] == 21 and a[0, 1] == 12

    def test_out_of_bounds_write_raises(self):
        with pytest.raises(InterpError, match="out of bounds"):
            _run("  a(5) = 1", "  integer :: a(1:4)")

    def test_nonunit_lower_bound(self):
        run = _run(
            "  do i = 0, 3\n    a(i) = i * i\n  enddo\n  print *, a(3)",
            "  integer :: a(0:3)\n  integer :: i",
        )
        assert run.outputs[0] == [(9,)]


class TestSubroutines:
    SRC = """
program t
  integer :: a(1:6)
  integer :: x, i

  do i = 1, 6
    a(i) = 0
  enddo
  x = 5
  call fill(a, x)
  print *, a(1), a(6), x
end program t

subroutine fill(buf, v)
  integer :: buf(1:6)
  integer :: v
  integer :: i

  do i = 1, 6
    buf(i) = v * i
  enddo
  v = v + 1
end subroutine fill
"""

    def test_by_reference_array_and_scalar_copyback(self):
        run = run_serial(self.SRC)
        assert run.outputs[0] == [(5, 30, 6)]

    def test_sequence_association_element_start(self):
        src = """
program t
  integer :: a(1:8)
  integer :: i

  do i = 1, 8
    a(i) = 0
  enddo
  call fill(a(5))
  print *, a(4), a(5), a(8)
end program t

subroutine fill(buf)
  integer :: buf(1:4)
  integer :: i

  do i = 1, 4
    buf(i) = i * 100
  enddo
end subroutine fill
"""
        run = run_serial(src)
        assert run.outputs[0] == [(0, 100, 400)]

    def test_unknown_procedure_raises(self):
        with pytest.raises(InterpError, match="unknown procedure"):
            _run("  call missing(1)")

    def test_wrong_arity_raises(self):
        src = """
program t
  call f(1, 2)
end program t

subroutine f(x)
  integer :: x
end subroutine f
"""
        with pytest.raises(InterpError, match="passes 2 args"):
            run_serial(src)


class TestExternals:
    def test_external_fills_array_and_charges_time(self):
        def fn(call):
            arr = call.array(1)
            arr.flat()[:] = call.scalar(0) * 10
            return 5e-6

        reg = ExternalRegistry([ExternalProc("gen", fn, mutates={1})])
        src = """
program t
  integer :: a(1:4)

  call gen(7, a)
  print *, a(1)
end program t
"""
        run = run_serial(src, externals=reg)
        assert run.outputs[0] == [(70,)]
        assert run.time >= 5e-6


class TestMpiInterception:
    def test_mynode_numnodes(self):
        src = """
program t
  print *, mynode(), numnodes()
end program t
"""
        run = run_cluster(src, nranks=3)
        assert [o[0] for o in run.outputs] == [(0, 3), (1, 3), (2, 3)]

    def test_alltoall_through_interpreter(self):
        src = """
program t
  integer, parameter :: n = 8, np = 4
  integer :: as(1:n)
  integer :: ar(1:n)
  integer :: i, ierr

  do i = 1, n
    as(i) = mynode() * 100 + i
  enddo
  call mpi_alltoall(as, n / np, 0, ar, n / np, 0, 0, ierr)
end program t
"""
        run = run_cluster(src, nranks=4, network=MPICH_GM)
        # rank j's partition r holds rank r's partition j
        for j in range(4):
            ar = run.array(j, "ar")
            for r in range(4):
                assert ar[2 * r] == r * 100 + 2 * j + 1
                assert ar[2 * r + 1] == r * 100 + 2 * j + 2

    def test_isend_irecv_sections(self):
        src = """
program t
  integer :: a(1:4, 1:4)
  integer :: r(1:4, 1:4)
  integer :: i, j, ierr

  do i = 1, 4
    do j = 1, 4
      a(i, j) = mynode() * 1000 + i * 10 + j
      r(i, j) = 0
    enddo
  enddo
  if (mynode() == 0) then
    call mpi_isend(a(1:2, 2:3), 4, 1, 9, ierr)
  endif
  if (mynode() == 1) then
    call mpi_irecv(r(3:4, 1:2), 4, 0, 9, ierr)
  endif
  call mpi_waitall(ierr)
end program t
"""
        run = run_cluster(src, nranks=2, network=MPICH_GM)
        r = run.array(1, "r")
        # rank 0's a(1:2, 2:3) in column-major order lands in r(3:4, 1:2)
        assert r[2, 0] == 12 and r[3, 0] == 22
        assert r[2, 1] == 13 and r[3, 1] == 23

    def test_count_mismatch_raises(self):
        src = """
program t
  integer :: a(1:4)
  integer :: ierr

  call mpi_isend(a(1:4), 3, 1, 0, ierr)
  call mpi_waitall(ierr)
end program t
"""
        with pytest.raises(InterpError, match="differs from section size"):
            run_cluster(src, nranks=2)

    def test_mpi_without_comm_raises(self):
        src = """
program t
  integer :: ierr

  call mpi_barrier(0, ierr)
end program t
"""
        # run_serial provides a 1-rank comm, so build an Interpreter directly
        from repro.interp import Interpreter
        from repro.lang import parse

        it = Interpreter(parse(src))
        with pytest.raises(InterpError, match="requires a communicator"):
            list(it.run())

    def test_ierr_set_to_zero(self):
        src = """
program t
  integer :: ierr

  ierr = 99
  call mpi_barrier(0, ierr)
  print *, ierr
end program t
"""
        run = run_cluster(src, nranks=2)
        assert run.outputs[0] == [(0,)]


class TestVirtualTime:
    def test_cost_scaling_scales_time(self):
        body = "  do i = 1, 1000\n    x = x + i\n  enddo"
        decls = "  integer :: x, i"
        base = _run(body, decls)
        scaled = _run(body, decls, cost_model=CostModel().scaled(10.0))
        assert scaled.time > base.time * 5

    def test_python_speed_does_not_leak(self):
        """Virtual time depends only on executed operations, not wall time."""
        a = _run("  x = 1 + 1", "  integer :: x").time
        b = _run("  x = 1 + 1", "  integer :: x").time
        assert a == b
