"""The tune driver end-to-end: cache-as-memo-table and determinism.

The contract under test (DESIGN.md §12): same space + strategy +
budget + objective + seed ⇒ bit-identical trajectory JSONL over a warm
cache and zero simulations; a cold and a warm run agree on everything
except the ``cache_hit`` provenance flags (equal
``search_fingerprint``).
"""

from __future__ import annotations

import json

import pytest

from repro.api import Session
from repro.errors import TuneError
from repro.harness.sweep import SweepSpec
from repro.tune import Axis, SearchSpace, Trajectory, default_space, tune

NRANKS = 4
APP_KWARGS = {"n": 16, "steps": 1, "stages": 2}


def small_space(**over) -> SearchSpace:
    kwargs = dict(
        app="fft",
        app_kwargs=dict(APP_KWARGS),
        axes=(
            Axis("variant", ("original", "prepush", "tile-only")),
            Axis("tile_size", ("auto", 4)),
            Axis("nranks", (NRANKS,), kind="integer"),
        ),
    )
    kwargs.update(over)
    return SearchSpace(**kwargs)


@pytest.fixture
def session(tmp_path):
    with Session(cache_dir=tmp_path / "cache") as s:
        yield s


class TestDriver:
    def test_budget_must_be_positive(self, session):
        with pytest.raises(TuneError, match="budget"):
            tune(small_space(), session=session, budget=0)

    def test_unknown_objective_rejected(self, session):
        with pytest.raises(TuneError, match="objective"):
            tune(small_space(), session=session, objective="throughput")

    def test_budget_caps_evaluations(self, session):
        result = tune(
            small_space(), session=session, strategy="grid", budget=3
        )
        assert result.evaluations == 3
        assert len(result.trajectory.steps) == 3

    def test_exhausted_strategy_ends_early(self, session):
        space = small_space()
        result = tune(space, session=session, strategy="grid", budget=100)
        assert result.evaluations == space.size()

    def test_trajectory_records_cumulative_best(self, session):
        result = tune(
            small_space(), session=session, strategy="grid", budget=100
        )
        best = float("inf")
        for step in result.trajectory.steps:
            best = min(best, step.objective)
            assert step.best_objective == best
        assert result.best_objective == best
        series = result.trajectory.best_fitness_series()
        assert series == sorted(series, reverse=True)

    def test_callable_objective(self, session):
        calls = []

        def my_objective(run):
            calls.append(run.axes["variant"])
            return float(run.axes["nranks"])

        result = tune(
            small_space(),
            session=session,
            strategy="grid",
            budget=100,
            objective=my_objective,
        )
        assert result.objective == "my_objective"
        assert result.best_objective == float(NRANKS)
        assert len(calls) == result.evaluations

    def test_speedup_objective_measures_against_baseline(self, session):
        space = small_space(
            axes=(
                Axis("variant", ("prepush",)),
                Axis("nranks", (NRANKS,), kind="integer"),
            )
        )
        result = tune(
            space,
            session=session,
            strategy="grid",
            budget=4,
            objective="speedup",
        )
        # the objective is the negated speedup time(orig)/time(prepush)
        assert result.best_objective < 0.0
        # cross-check against an explicit measurement pair
        sweep = session.sweep(
            SweepSpec(
                name="check",
                app="fft",
                app_kwargs=dict(APP_KWARGS),
                variants=("original", "prepush"),
                nranks=(NRANKS,),
            )
        )
        times = {r.axes["variant"]: r.measurement.time for r in sweep.runs}
        assert result.best_objective == pytest.approx(
            -(times["original"] / times["prepush"])
        )


class TestGridEquivalence:
    def test_full_budget_grid_tune_is_the_sweep(self, session):
        """A full-budget grid tune and the corresponding SweepSpec
        cross-product measure exactly the same points and agree on the
        optimum."""
        space = small_space()
        spec = SweepSpec(
            name="xprod",
            app="fft",
            app_kwargs=dict(APP_KWARGS),
            variants=("original", "prepush", "tile-only"),
            tile_sizes=("auto", 4),
            nranks=(NRANKS,),
        )
        sweep = session.sweep(spec)
        result = tune(space, session=session, strategy="grid", budget=100)
        # same deduplicated point set...
        sweep_fps = {r.fingerprint for r in sweep.runs}
        tune_fps = {s.fingerprint for s in result.trajectory.steps}
        assert tune_fps <= sweep_fps
        assert result.evaluations == len(tune_fps)
        # ...and the tune optimum is the sweep's fastest cell
        assert result.best_objective == min(
            r.measurement.time for r in sweep.runs
        )


class TestDeterminism:
    def test_same_seed_warm_cache_bit_identical(self, session):
        space = small_space()
        cold = tune(
            space, session=session, strategy="hill-climb", budget=8, seed=7
        )
        assert cold.simulations > 0
        warm1 = tune(
            space, session=session, strategy="hill-climb", budget=8, seed=7
        )
        warm2 = tune(
            space, session=session, strategy="hill-climb", budget=8, seed=7
        )
        # warm runs: every evaluation answered from the cache
        assert warm1.simulations == 0
        assert warm1.cache_hits == warm1.evaluations
        # bit-identical trajectory JSONL between warm runs
        assert warm1.trajectory.to_jsonl() == warm2.trajectory.to_jsonl()
        # cold vs warm differ only in cache_hit flags
        assert cold.trajectory.to_jsonl() != warm1.trajectory.to_jsonl()
        assert (
            cold.trajectory.search_fingerprint()
            == warm1.trajectory.search_fingerprint()
        )
        assert cold.best_candidate == warm1.best_candidate
        assert cold.best_objective == warm1.best_objective

    def test_different_seeds_diverge(self, session):
        space = small_space()
        a = tune(space, session=session, strategy="random", budget=4, seed=1)
        b = tune(space, session=session, strategy="random", budget=4, seed=2)
        keys_a = [s.candidate for s in a.trajectory.steps]
        keys_b = [s.candidate for s in b.trajectory.steps]
        assert keys_a != keys_b

    def test_session_seed_threads_through(self, tmp_path):
        with Session(cache_dir=tmp_path / "cache", seed=42) as s:
            result = s.tune(small_space(), strategy="random", budget=2)
        assert result.seed == 42
        assert result.trajectory.header["seed"] == 42

    def test_explicit_seed_beats_session_seed(self, tmp_path):
        with Session(cache_dir=tmp_path / "cache", seed=42) as s:
            result = s.tune(
                small_space(), strategy="random", budget=2, seed=3
            )
        assert result.seed == 3


class TestHillClimbQuality:
    def test_beats_or_matches_variant_grid(self, session):
        """The ablation-H question: which variant wins at the paper's
        coordinates?  A seeded hill-climb with budget past the first
        axis sweep must find an objective <= the best variant-grid
        cell, because its opening coordinate sweep covers that grid."""
        space = default_space(
            "fft",
            app_kwargs=dict(APP_KWARGS),
            nranks=(NRANKS,),
            tile_sizes=("auto", 4),
        )
        n_variants = len(space.axis("variant").values)
        result = tune(
            space,
            session=session,
            strategy="hill-climb",
            budget=n_variants + 1,
            seed=0,
        )
        grid = session.sweep(
            SweepSpec(
                name="ablation-h",
                app="fft",
                app_kwargs=dict(APP_KWARGS),
                variants=tuple(space.axis("variant").values),
                nranks=(NRANKS,),
            )
        )
        assert result.best_objective <= min(
            r.measurement.time for r in grid.runs
        )


class TestTrajectoryArtifact:
    def test_write_and_read_round_trip(self, session, tmp_path):
        path = tmp_path / "tune.jsonl"
        result = tune(
            small_space(),
            session=session,
            strategy="grid",
            budget=4,
            trajectory_path=str(path),
        )
        loaded = Trajectory.read(path)
        assert loaded.header == result.trajectory.header
        assert loaded.to_jsonl() == result.trajectory.to_jsonl()
        assert (
            loaded.search_fingerprint()
            == result.trajectory.search_fingerprint()
        )

    def test_header_is_the_search_identity(self, session):
        space = small_space()
        result = tune(
            space, session=session, strategy="grid", budget=2, seed=5
        )
        header = result.trajectory.header
        assert header["kind"] == "tune-trajectory"
        assert header["space_fingerprint"] == space.fingerprint()
        assert header["strategy"] == "grid"
        assert header["seed"] == 5
        assert header["space"] == space.to_dict()

    def test_read_rejects_non_trajectory(self, tmp_path):
        path = tmp_path / "not.jsonl"
        path.write_text(json.dumps({"kind": "sweep"}) + "\n")
        with pytest.raises(TuneError, match="tune-trajectory"):
            Trajectory.read(path)

    def test_on_step_streams_every_evaluation(self, session):
        seen = []
        result = tune(
            small_space(),
            session=session,
            strategy="grid",
            budget=3,
            on_step=seen.append,
        )
        assert [s.step for s in seen] == [0, 1, 2]
        assert seen == result.trajectory.steps
