"""Strategies: the registry, and each built-in's search behavior.

These tests drive the ask/tell protocol by hand with a synthetic
objective — no simulation, so they pin down pure search semantics:
termination, no-repeat proposals, truncated-batch tolerance, and seeded
determinism.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import TuneError
from repro.tune import (
    Axis,
    SearchSpace,
    get_strategy,
    list_strategies,
    register_strategy,
)
from repro.tune.strategies import (
    EvalResult,
    GridStrategy,
    HillClimbStrategy,
    RandomStrategy,
    SuccessiveHalvingStrategy,
)


def small_space(**over) -> SearchSpace:
    kwargs = dict(
        app="fft",
        app_kwargs={"n": 16, "steps": 1, "stages": 2},
        axes=(
            Axis("variant", ("original", "prepush", "tile-only")),
            Axis("tile_size", ("auto", 4)),
        ),
    )
    kwargs.update(over)
    return SearchSpace(**kwargs)


def drive(strategy, space, objective, budget):
    """The driver loop with a synthetic objective; returns the scored
    history in evaluation order."""
    history = []
    while len(history) < budget:
        proposals = strategy.ask(history)
        if not proposals:
            break
        proposals = [space.normalize(c) for c in proposals]
        proposals = proposals[: budget - len(history)]
        told = []
        for cand in proposals:
            res = EvalResult(
                candidate=cand,
                key=space.candidate_key(cand),
                objective=objective(cand),
                cached=False,
                step=len(history),
            )
            told.append(res)
            history.append(res)
        strategy.tell(told)
    return history


class TestRegistry:
    def test_builtins_registered(self):
        names = list_strategies()
        assert {"grid", "random", "hill-climb", "successive-halving"} <= set(
            names
        )
        assert names == sorted(names)
        assert len(names) >= 3

    def test_unknown_name_lists_registered(self):
        with pytest.raises(TuneError, match="grid"):
            get_strategy("simulated-annealing")

    def test_duplicate_registration_refused(self):
        with pytest.raises(TuneError, match="overwrite=True"):
            register_strategy("grid", GridStrategy)
        # explicit overwrite is allowed (and restores the original)
        register_strategy("grid", GridStrategy, overwrite=True)

    def test_bad_names_and_factories_refused(self):
        with pytest.raises(TuneError, match="non-empty string"):
            register_strategy("", GridStrategy)
        with pytest.raises(TuneError, match="not callable"):
            register_strategy("broken", "not-a-factory")


class TestGrid:
    def test_enumerates_exactly_the_canonical_grid(self):
        space = small_space()
        strat = GridStrategy(space, random.Random(0), budget=100)
        history = drive(strat, space, lambda c: 0.0, budget=100)
        assert [h.candidate for h in history] == space.grid()
        # exhausted: a further ask proposes nothing
        assert strat.ask(history) == []

    def test_tolerates_truncated_batches(self):
        space = small_space()
        strat = GridStrategy(space, random.Random(0), budget=2)
        history = drive(strat, space, lambda c: 0.0, budget=2)
        assert len(history) == 2
        assert [h.candidate for h in history] == space.grid()[:2]


class TestRandom:
    def test_no_repeats_and_full_coverage(self):
        space = small_space()
        strat = RandomStrategy(space, random.Random(3), budget=100)
        history = drive(strat, space, lambda c: 0.0, budget=100)
        keys = [h.key for h in history]
        assert len(set(keys)) == len(keys)
        # the grid-scan fallback finishes coverage once sampling saturates
        assert len(keys) == space.size()

    def test_seeded_determinism(self):
        space = small_space()
        runs = []
        for _ in range(2):
            strat = RandomStrategy(space, random.Random(11), budget=4)
            runs.append(
                [h.key for h in drive(strat, space, lambda c: 0.0, budget=4)]
            )
        assert runs[0] == runs[1]

    def test_bad_batch_rejected(self):
        with pytest.raises(TuneError, match="batch"):
            RandomStrategy(small_space(), random.Random(0), budget=4, batch=0)


class TestHillClimb:
    def test_finds_global_optimum_of_separable_objective(self):
        # separable objective: coordinate descent provably converges
        space = small_space()

        def objective(cand):
            score = 0.0
            score += {"original": 2.0, "prepush": 0.0, "tile-only": 1.0}[
                cand["variant"]
            ]
            score += 0.5 if cand["tile_size"] == "auto" else 0.0
            return score

        strat = HillClimbStrategy(space, random.Random(0), budget=100)
        history = drive(strat, space, objective, budget=100)
        assert min(h.objective for h in history) == 0.0
        best = min(history, key=lambda h: h.objective)
        assert best.candidate == {"variant": "prepush", "tile_size": 4}

    def test_never_reasks_a_scored_candidate(self):
        space = small_space()
        strat = HillClimbStrategy(space, random.Random(5), budget=100)
        history = drive(strat, space, lambda c: 1.0, budget=100)
        keys = [h.key for h in history]
        assert len(set(keys)) == len(keys)
        # restarts eventually cover the whole space, then exhaust
        assert len(keys) == space.size()
        assert strat.ask(history) == []

    def test_single_valued_space_ends_immediately(self):
        space = small_space(axes=(Axis("variant", ("original",)),))
        strat = HillClimbStrategy(space, random.Random(0), budget=10)
        assert strat.ask([]) == []


class TestSuccessiveHalving:
    def _space(self):
        return small_space(
            axes=(
                Axis("variant", ("original", "prepush")),
                Axis("nranks", (2, 4, 8), kind="integer"),
            )
        )

    def test_requires_multi_valued_nranks_axis(self):
        with pytest.raises(TuneError, match="nranks axis"):
            SuccessiveHalvingStrategy(
                small_space(), random.Random(0), budget=16
            )

    def test_bad_eta_rejected(self):
        with pytest.raises(TuneError, match="eta"):
            SuccessiveHalvingStrategy(
                self._space(), random.Random(0), budget=16, eta=1
            )

    def test_rungs_climb_and_survivors_halve(self):
        space = self._space()
        strat = SuccessiveHalvingStrategy(space, random.Random(2), budget=16)
        # prefer prepush, penalize rank count slightly so scores vary
        history = drive(
            strat,
            space,
            lambda c: (0.0 if c["variant"] == "prepush" else 1.0)
            + 0.01 * c["nranks"],
            budget=16,
        )
        by_rung = {}
        for h in history:
            by_rung.setdefault(h.candidate["nranks"], []).append(h)
        # the first cohort screens at the lowest rung, and each rung's
        # cohort is no larger than the one below it
        rungs = sorted(by_rung)
        assert rungs[0] == 2
        sizes = [len(by_rung[r]) for r in rungs]
        assert sizes == sorted(sizes, reverse=True)
        # the top rung only sees the screened winner
        top = by_rung[max(rungs)]
        assert all(h.candidate["variant"] == "prepush" for h in top)

    def test_seeded_determinism(self):
        space = self._space()
        runs = []
        for _ in range(2):
            strat = SuccessiveHalvingStrategy(
                space, random.Random(9), budget=12
            )
            runs.append(
                [h.key for h in drive(strat, space, lambda c: 0.5, budget=12)]
            )
        assert runs[0] == runs[1]
