"""The CI bench-artifact merge script (``benchmarks/merge_bench.py``)."""

from __future__ import annotations

import json

import pytest

from benchmarks.merge_bench import main, merge, suite_name


def bench_doc(name: str, mean: float, **extra) -> dict:
    return {
        "datetime": "2026-08-07T00:00:00",
        "benchmarks": [
            {
                "name": name,
                "stats": {"mean": mean},
                "extra_info": dict(extra),
            }
        ],
    }


def test_suite_name_strips_prefix(tmp_path):
    assert suite_name(tmp_path / "BENCH_tune.json") == "tune"
    assert suite_name(tmp_path / "custom.json") == "custom"


def test_merge_copies_inputs_and_indexes(tmp_path):
    a = tmp_path / "BENCH_tune.json"
    a.write_text(json.dumps(bench_doc("test_tune", 0.05, warm_speedup=8.0)))
    b = tmp_path / "BENCH_smoke.json"
    b.write_text(json.dumps(bench_doc("test_engine", 1.5)))
    out = tmp_path / "bench"

    index = merge([str(a), str(b)], out)

    # verbatim copies plus the merged index
    assert (out / "BENCH_tune.json").read_text() == a.read_text()
    assert (out / "BENCH_smoke.json").read_text() == b.read_text()
    on_disk = json.loads((out / "index.json").read_text())
    assert on_disk == index
    tune = index["suites"]["tune"]
    assert tune["source"] == "BENCH_tune.json"
    assert tune["benchmarks"]["test_tune"]["mean_s"] == 0.05
    assert tune["benchmarks"]["test_tune"]["extra_info"] == {
        "warm_speedup": 8.0
    }
    assert index["suites"]["smoke"]["benchmarks"]["test_engine"] == {
        "mean_s": 1.5
    }


def test_index_is_deterministic(tmp_path):
    a = tmp_path / "BENCH_x.json"
    a.write_text(json.dumps(bench_doc("t", 1.0)))
    merge([str(a)], tmp_path / "b1")
    merge([str(a)], tmp_path / "b2")
    assert (tmp_path / "b1" / "index.json").read_text() == (
        tmp_path / "b2" / "index.json"
    ).read_text()


def test_non_benchmark_input_fails_loudly(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{}")
    with pytest.raises(SystemExit, match="not a pytest-benchmark"):
        merge([str(bad)], tmp_path / "bench")
    missing = tmp_path / "nope.json"
    with pytest.raises(SystemExit, match="unreadable"):
        merge([str(missing)], tmp_path / "bench")


def test_cli_entry_point(tmp_path, capsys):
    a = tmp_path / "BENCH_tune.json"
    a.write_text(json.dumps(bench_doc("t", 1.0)))
    out = tmp_path / "bench"
    assert main([str(a), "-o", str(out)]) == 0
    assert "merged 1 suite(s), 1 benchmark(s)" in capsys.readouterr().out
    assert (out / "index.json").exists()
