"""SearchSpace: axes, constraints, canonicalization, serialization.

The space's dict form is both the serve wire payload (a ``tune``
request ships ``to_dict()``) and the trajectory-header format, so the
round-trip property test here is a protocol invariant — mirroring
``tests/harness/test_spec_roundtrip.py`` for :class:`SweepSpec`.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import APP_BUILDERS
from repro.errors import TuneError
from repro.harness.sweep import SweepSpec
from repro.runtime.collectives import default_algorithm, list_algorithms
from repro.runtime.network import list_models
from repro.transform.pipeline import list_variants
from repro.tune import Axis, SearchSpace, default_space
from repro.tune.space import AXIS_NAMES, list_constraints


def tiny_space(**over) -> SearchSpace:
    kwargs = dict(
        app="fft",
        app_kwargs={"n": 16, "steps": 1, "stages": 2},
        axes=(
            Axis("variant", ("original", "prepush")),
            Axis("tile_size", ("auto", 4)),
            Axis("nranks", (4,), kind="integer"),
        ),
    )
    kwargs.update(over)
    return SearchSpace(**kwargs)


class TestAxis:
    def test_unknown_name_rejected(self):
        with pytest.raises(TuneError, match="unknown axis"):
            Axis("fanout", (1, 2))

    def test_empty_values_rejected(self):
        with pytest.raises(TuneError, match="at least one value"):
            Axis("variant", ())

    def test_bad_kind_rejected(self):
        with pytest.raises(TuneError, match="kind"):
            Axis("nranks", (4, 8), kind="ordinal")

    def test_integer_kind_rejects_non_ints(self):
        with pytest.raises(TuneError, match="non-int"):
            Axis("nranks", (4, "eight"), kind="integer")
        # bool is not an acceptable int
        with pytest.raises(TuneError, match="non-int"):
            Axis("nranks", (4, True), kind="integer")

    def test_duplicate_values_rejected(self):
        with pytest.raises(TuneError, match="duplicate"):
            Axis("tile_size", ("auto", 4, 4))

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TuneError, match="unknown keys"):
            Axis.from_dict({"name": "variant", "values": ["original"], "x": 1})


class TestValidation:
    def test_duplicate_axes_rejected(self):
        with pytest.raises(TuneError, match="duplicate axes"):
            SearchSpace(
                app="fft",
                axes=(
                    Axis("variant", ("original",)),
                    Axis("variant", ("prepush",)),
                ),
            )

    def test_unknown_constraint_rejected(self):
        with pytest.raises(TuneError, match="unknown constraints"):
            tiny_space(constraints=("no-such-rule",))

    def test_unresolvable_variant_fails_at_construction(self):
        with pytest.raises(Exception):
            tiny_space(
                axes=(Axis("variant", ("original", "no-such-variant")),)
            )

    def test_unresolvable_network_fails_at_construction(self):
        with pytest.raises(Exception):
            tiny_space(axes=(Axis("network", ("carrier-pigeon",)),))

    def test_nranks_axis_must_be_integer_kind(self):
        with pytest.raises(TuneError, match="integer-kind"):
            tiny_space(axes=(Axis("nranks", (4, 8)),))

    def test_builtin_constraints_listed(self):
        names = list_constraints()
        assert "tile-size-requires-tiling" in names
        assert "interchange-requires-interchange-pass" in names


class TestNormalize:
    def test_unknown_candidate_key_rejected(self):
        with pytest.raises(TuneError, match="unknown axes"):
            tiny_space().normalize({"variant": "original", "fanout": 2})

    def test_off_axis_value_rejected(self):
        with pytest.raises(TuneError, match="not on axis"):
            tiny_space().normalize({"variant": "no-interchange"})

    def test_missing_axis_takes_first_value(self):
        cand = tiny_space().normalize({})
        assert cand == {"variant": "original", "tile_size": "auto", "nranks": 4}

    def test_tile_size_collapses_without_tile_pass(self):
        # the 'original' pipeline has no passes at all, so a concrete
        # tile size is inexpressible and must canonicalize to "auto"
        cand = tiny_space().normalize({"variant": "original", "tile_size": 4})
        assert cand["tile_size"] == "auto"
        # 'prepush' tiles, so the knob survives
        cand = tiny_space().normalize({"variant": "prepush", "tile_size": 4})
        assert cand["tile_size"] == 4

    def test_interchange_collapses_without_interchange_pass(self):
        space = tiny_space(
            axes=(
                Axis("variant", ("no-interchange", "prepush")),
                Axis("interchange", ("auto", "never")),
            )
        )
        cand = space.normalize(
            {"variant": "no-interchange", "interchange": "never"}
        )
        assert cand["interchange"] == "auto"
        cand = space.normalize({"variant": "prepush", "interchange": "never"})
        assert cand["interchange"] == "never"

    def test_normalize_is_idempotent(self):
        space = tiny_space()
        for cand in space.grid():
            assert space.normalize(cand) == cand


class TestEnumeration:
    def test_grid_dedupes_collapsed_candidates(self):
        # variant=original collapses both tile sizes into one candidate:
        # 2*2 raw combinations -> 3 canonical candidates
        space = tiny_space()
        grid = space.grid()
        assert len(grid) == 3
        assert space.size() == 3
        keys = {space.candidate_key(c) for c in grid}
        assert len(keys) == len(grid)

    def test_grid_matches_sweep_cross_product(self):
        """The grid is exactly the cross-product a SweepSpec over the
        same values expands to, deduplicated by job identity."""
        from repro.harness.sweep import expand_spec
        from repro.interp.runner import job_fingerprint

        space = tiny_space()
        spec = SweepSpec(
            name="xprod",
            app=space.app,
            app_kwargs=dict(space.app_kwargs),
            variants=("original", "prepush"),
            tile_sizes=("auto", 4),
            nranks=(4,),
        )
        points, _ = expand_spec(spec)
        fingerprints = {job_fingerprint(p.job()) for p in points}
        # the sweep expansion dedupes by the same fingerprint the tune
        # cache memoizes on, so distinct canonical candidates == distinct
        # sweep points
        assert len(fingerprints) == len(space.grid())

    def test_sample_is_seed_deterministic(self):
        space = tiny_space()
        a = [space.sample(random.Random(7)) for _ in range(5)]
        b = [space.sample(random.Random(7)) for _ in range(5)]
        assert a == b

    def test_neighbors_excludes_self_and_dedupes(self):
        space = tiny_space()
        base = {"variant": "original", "tile_size": "auto", "nranks": 4}
        neigh = space.neighbors(base)
        base_key = space.candidate_key(space.normalize(base))
        keys = [space.candidate_key(c) for c in neigh]
        assert base_key not in keys
        assert len(set(keys)) == len(keys)
        # original+tile=4 collapses back onto the base and is excluded;
        # the single remaining one-axis move is variant -> prepush
        assert neigh == [
            {"variant": "prepush", "tile_size": "auto", "nranks": 4}
        ]

    def test_axis_moves_restrict_to_one_axis(self):
        space = tiny_space()
        base = {"variant": "prepush", "tile_size": "auto", "nranks": 4}
        moves = space.axis_moves(base, "tile_size")
        assert moves == [space.normalize(dict(base, tile_size=4))]
        assert space.axis_moves(base, "network") == []  # undeclared axis


class TestSerialization:
    def test_round_trip(self):
        space = tiny_space()
        wire = json.loads(json.dumps(space.to_dict()))
        rebuilt = SearchSpace.from_dict(wire)
        assert rebuilt.to_dict() == space.to_dict()
        assert rebuilt.fingerprint() == space.fingerprint()

    def test_from_dict_rejects_unknown_keys(self):
        data = tiny_space().to_dict()
        data["budget"] = 40
        with pytest.raises(TuneError, match="unknown keys"):
            SearchSpace.from_dict(data)

    def test_from_dict_requires_app_and_axes(self):
        with pytest.raises(TuneError, match="'app' and 'axes'"):
            SearchSpace.from_dict({"app": "fft"})

    def test_fingerprint_tracks_content(self):
        a = tiny_space()
        b = tiny_space(cpu_scale=2.0)
        assert a.fingerprint() != b.fingerprint()

    def test_default_space_draws_registries(self):
        space = default_space("fft")
        variant_axis = space.axis("variant")
        assert list(variant_axis.values) == list_variants()
        coll_axis = space.axis("collective")
        assert coll_axis.values[0] is None
        default = default_algorithm("alltoall")
        expected = {
            f"alltoall={name}"
            for name in list_algorithms("alltoall")
            if name != default
        }
        assert set(coll_axis.values[1:]) == expected


class TestSpecsFor:
    def test_single_point_spec(self):
        space = tiny_space()
        (spec,) = space.specs_for(
            {"variant": "prepush", "tile_size": 4}, name="t0"
        )
        assert isinstance(spec, SweepSpec)
        assert spec.name == "t0"
        assert spec.variants == ("prepush",)
        assert spec.tile_sizes == (4,)
        assert spec.nranks == (4,)

    def test_baseline_spec_added_for_transformed_candidate(self):
        space = tiny_space()
        specs = space.specs_for(
            {"variant": "prepush"}, name="t0", baseline=True
        )
        assert [s.name for s in specs] == ["t0", "t0-baseline"]
        assert specs[1].variants == ("original",)

    def test_no_baseline_for_original(self):
        space = tiny_space()
        specs = space.specs_for(
            {"variant": "original"}, name="t0", baseline=True
        )
        assert [s.name for s in specs] == ["t0"]


# ------------------------------------------------------ property test

_collective_values = st.lists(
    st.one_of(
        st.none(),
        st.sampled_from(
            sorted(
                f"alltoall={name}" for name in list_algorithms("alltoall")
            )
        ),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda v: json.dumps(v),
)


@st.composite
def spaces(draw) -> SearchSpace:
    """Registry-drawn spaces with a random subset of declared axes."""
    axes = []
    names = draw(
        st.lists(
            st.sampled_from(AXIS_NAMES), min_size=1, max_size=6, unique=True
        )
    )
    for name in names:
        if name == "variant":
            values = tuple(
                draw(
                    st.lists(
                        st.sampled_from(list_variants()),
                        min_size=1,
                        max_size=3,
                        unique=True,
                    )
                )
            )
            axes.append(Axis("variant", values))
        elif name == "tile_size":
            values = tuple(
                draw(
                    st.lists(
                        st.one_of(
                            st.just("auto"),
                            st.integers(min_value=1, max_value=64),
                        ),
                        min_size=1,
                        max_size=3,
                        unique=True,
                    )
                )
            )
            axes.append(Axis("tile_size", values))
        elif name == "interchange":
            values = tuple(
                draw(
                    st.lists(
                        st.sampled_from(["auto", "never"]),
                        min_size=1,
                        max_size=2,
                        unique=True,
                    )
                )
            )
            axes.append(Axis("interchange", values))
        elif name == "collective":
            axes.append(Axis("collective", tuple(draw(_collective_values))))
        elif name == "network":
            values = tuple(
                draw(
                    st.lists(
                        st.sampled_from(list_models()),
                        min_size=1,
                        max_size=3,
                        unique=True,
                    )
                )
            )
            axes.append(Axis("network", values))
        elif name == "nranks":
            values = tuple(
                draw(
                    st.lists(
                        st.sampled_from([2, 4, 8, 16, 1024]),
                        min_size=1,
                        max_size=3,
                        unique=True,
                    )
                )
            )
            axes.append(Axis("nranks", values, kind="integer"))
    return SearchSpace(
        app=draw(st.sampled_from(sorted(APP_BUILDERS))),
        app_kwargs=draw(
            st.dictionaries(
                st.sampled_from(["n", "steps", "stages"]),
                st.integers(min_value=1, max_value=64),
                max_size=3,
            )
        ),
        axes=tuple(axes),
        cpu_scale=draw(
            st.floats(
                min_value=0.001,
                max_value=1000.0,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        verify=draw(st.booleans()),
        engine_mode=draw(st.sampled_from([None, "auto", "replay", "full"])),
    )


@given(space=spaces())
def test_to_dict_json_from_dict_round_trip(space: SearchSpace) -> None:
    wire = json.loads(json.dumps(space.to_dict()))
    rebuilt = SearchSpace.from_dict(wire)
    assert rebuilt.to_dict() == space.to_dict()
    assert rebuilt.fingerprint() == space.fingerprint()
    # a second trip is the identity (serve echoes spaces in trajectory
    # headers)
    assert SearchSpace.from_dict(rebuilt.to_dict()).to_dict() == wire


@given(space=spaces())
def test_round_trip_preserves_canonicalization(space: SearchSpace) -> None:
    """The rebuilt space normalizes every candidate identically — the
    serve-side search must collapse exactly what the client side would."""
    rebuilt = SearchSpace.from_dict(json.loads(json.dumps(space.to_dict())))
    assert rebuilt.default_candidate() == space.default_candidate()
    grid = space.grid()
    assert rebuilt.grid() == grid
    for cand in grid[:4]:
        assert rebuilt.normalize(cand) == space.normalize(cand)
