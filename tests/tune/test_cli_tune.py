"""The ``tune`` and ``strategies`` CLI verbs, and the artifact
overwrite guard shared with ``sweep``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.tune import list_strategies

TUNE_ARGS = [
    "tune",
    "fft",
    "--n",
    "16",
    "--steps",
    "1",
    "--stages",
    "2",
    "--nranks",
    "4",
    "-K",
    "auto",
    "-K",
    "4",
    "--strategy",
    "grid",
    "--budget",
    "6",
    "--seed",
    "7",
]


def tune_args(tmp_path, *extra):
    return TUNE_ARGS + ["--cache-dir", str(tmp_path / "cache"), *extra]


class TestStrategiesVerb:
    def test_lists_every_registered_strategy(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in list_strategies():
            assert name in out
        assert len(list_strategies()) >= 3


class TestTuneVerb:
    def test_runs_and_reports_best(self, tmp_path, capsys):
        assert main(tune_args(tmp_path)) == 0
        captured = capsys.readouterr()
        assert "best time=" in captured.out
        assert "via grid" in captured.out
        assert "[seed 7]" in captured.out
        # per-evaluation progress streams to stderr
        assert "[1/6]" in captured.err

    def test_quiet_suppresses_progress(self, tmp_path, capsys):
        assert main(tune_args(tmp_path, "-q")) == 0
        assert "[1/6]" not in capsys.readouterr().err

    def test_warm_rerun_reproduces_bit_identically(self, tmp_path, capsys):
        """The acceptance criterion: the second same-seed run answers
        from cache (zero simulations) and writes a bit-identical
        trajectory."""
        traj1 = tmp_path / "t1.jsonl"
        traj2 = tmp_path / "t2.jsonl"
        assert main(tune_args(tmp_path, "--trajectory", str(traj1))) == 0
        cold = capsys.readouterr()
        assert main(tune_args(tmp_path, "--trajectory", str(traj2))) == 0
        warm = capsys.readouterr()
        assert "(0 simulated" in warm.out
        assert "(0 simulated" not in cold.out

        cold_lines = traj1.read_text().splitlines()
        warm_lines = traj2.read_text().splitlines()
        assert cold_lines[0] == warm_lines[0]  # identical headers
        # step lines differ only in the cache_hit provenance flag
        for a, b in zip(cold_lines[1:], warm_lines[1:]):
            da, db = json.loads(a), json.loads(b)
            assert db.pop("cache_hit") is True
            da.pop("cache_hit")
            assert da == db

    def test_json_artifact_carries_trajectory(self, tmp_path):
        out = tmp_path / "tune.json"
        assert main(tune_args(tmp_path, "-o", str(out))) == 0
        artifact = json.loads(out.read_text())
        assert artifact["strategy"] == "grid"
        assert artifact["seed"] == 7
        assert artifact["evaluations"] == len(
            artifact["trajectory"]["steps"]
        )
        assert (
            artifact["trajectory"]["header"]["kind"] == "tune-trajectory"
        )
        assert artifact["best_candidate"]["nranks"] == 4

    def test_unknown_strategy_fails_cleanly(self, tmp_path, capsys):
        args = tune_args(tmp_path)
        args[args.index("grid")] = "simulated-annealing"
        assert main(args) == 1
        assert "unknown strategy" in capsys.readouterr().err


class TestOverwriteGuard:
    def test_tune_refuses_existing_output(self, tmp_path, capsys):
        out = tmp_path / "tune.json"
        out.write_text("{}")
        assert main(tune_args(tmp_path, "-o", str(out))) == 1
        err = capsys.readouterr().err
        assert "refusing to overwrite" in err
        assert "--force" in err
        # the guard fires before any simulation work
        assert "[1/6]" not in err
        assert out.read_text() == "{}"

    def test_tune_refuses_existing_trajectory(self, tmp_path, capsys):
        traj = tmp_path / "t.jsonl"
        traj.write_text("old\n")
        assert main(tune_args(tmp_path, "--trajectory", str(traj))) == 1
        assert "refusing to overwrite" in capsys.readouterr().err
        assert traj.read_text() == "old\n"

    def test_tune_force_overwrites(self, tmp_path, capsys):
        out = tmp_path / "tune.json"
        out.write_text("{}")
        assert main(tune_args(tmp_path, "-o", str(out), "--force")) == 0
        assert json.loads(out.read_text())["strategy"] == "grid"

    def test_sweep_refuses_existing_output(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        out.write_text("{}")
        args = [
            "sweep",
            "--app",
            "fft",
            "--n",
            "8",
            "--nranks",
            "4",
            "--cache-dir",
            str(tmp_path / "cache"),
            "-o",
            str(out),
        ]
        assert main(args) == 1
        assert "refusing to overwrite" in capsys.readouterr().err
        assert out.read_text() == "{}"
        # --force clears the refusal
        assert main(args + ["--force"]) == 0
        assert "runs" in json.loads(out.read_text())["result"]
