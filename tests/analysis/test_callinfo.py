"""Interprocedural mutation facts and the §3.1 oracle protocol."""

from repro.analysis.callinfo import (
    ConservativeOracle,
    DictOracle,
    RecordingOracle,
    call_mutates_name,
    mutated_arg_positions,
)
from repro.lang import parse
from repro.lang.ast_nodes import CallStmt


def test_direct_mutation_detected():
    src = """
program t
  integer :: a(1:4)

  call f(1, a)
end program t

subroutine f(x, buf)
  integer :: x
  integer :: buf(1:4)

  buf(2) = x
end subroutine f
"""
    result = mutated_arg_positions(parse(src))
    assert result == {"f": {1}}


def test_transitive_mutation_fixed_point():
    src = """
program t
  integer :: a(1:4)

  call outer(a)
end program t

subroutine outer(p)
  integer :: p(1:4)

  call inner(p)
end subroutine outer

subroutine inner(q)
  integer :: q(1:4)

  q(1) = 9
end subroutine inner
"""
    result = mutated_arg_positions(parse(src))
    assert result["inner"] == {0}
    assert result["outer"] == {0}  # via the call chain


def test_scalar_dummy_assignment_counts():
    src = """
program t
  integer :: x

  call bump(x)
end program t

subroutine bump(v)
  integer :: v

  v = v + 1
end subroutine bump
"""
    assert mutated_arg_positions(parse(src)) == {"bump": {0}}


def test_unknown_callee_consults_oracle():
    src = """
program t
  integer :: a(1:4)

  call wrapper(a)
end program t

subroutine wrapper(p)
  integer :: p(1:4)

  call libraryfn(p)
end subroutine wrapper
"""
    conservative = mutated_arg_positions(parse(src))
    assert conservative["wrapper"] == {0}
    denying = mutated_arg_positions(
        parse(src), DictOracle({"libraryfn": set()}, default=False)
    )
    assert denying["wrapper"] == set()


def test_call_mutates_name_known_and_oracle():
    call = CallStmt(name="p", args=[parse_expr("a")])
    assert call_mutates_name(call, "a", {"p": {0}})
    assert not call_mutates_name(call, "a", {"p": set()})
    # unknown procedure: oracle decides
    assert call_mutates_name(call, "a", {}, ConservativeOracle())
    assert not call_mutates_name(
        call, "a", {}, DictOracle({}, default=False)
    )


def parse_expr(name: str):
    from repro.lang.ast_nodes import VarRef

    return VarRef(name=name)


def test_recording_oracle_logs_queries():
    inner = DictOracle({"p": {1}})
    rec = RecordingOracle(inner)
    assert rec.may_mutate("p", 1)
    assert not rec.may_mutate("p", 0)
    assert rec.may_mutate("unknown", 3)  # DictOracle default=True
    assert [(q.procedure, q.arg_index, q.answer) for q in rec.queries] == [
        ("p", 1, True),
        ("p", 0, False),
        ("unknown", 3, True),
    ]


def test_recording_oracle_defaults_to_conservative():
    rec = RecordingOracle()
    assert rec.may_mutate("anything", 0)
