"""Omega-lite integer feasibility tests, cross-validated against brute
force enumeration (hypothesis)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affine import Affine
from repro.analysis.omega import (
    Constraint,
    Feasibility,
    is_feasible,
    solve_sample,
)


def V(name, c=1):
    return Affine.variable(name, c)


def C(k):
    return Affine.constant(k)


def box(name, lo, hi):
    return [
        Constraint.ge(V(name), C(lo)),
        Constraint.le(V(name), C(hi)),
    ]


class TestBasics:
    def test_empty_system_feasible(self):
        assert is_feasible([]) is Feasibility.YES

    def test_trivially_false(self):
        assert is_feasible([Constraint.geq0(C(-1))]) is Feasibility.NO

    def test_trivially_true(self):
        assert is_feasible([Constraint.geq0(C(0))]) is Feasibility.YES

    def test_single_box(self):
        assert is_feasible(box("i", 1, 10)) is Feasibility.YES

    def test_empty_box(self):
        assert is_feasible(box("i", 10, 1)) is Feasibility.NO

    def test_equality_within_box(self):
        cons = box("i", 1, 10) + [Constraint.equals(V("i"), C(5))]
        assert is_feasible(cons) is Feasibility.YES

    def test_equality_outside_box(self):
        cons = box("i", 1, 10) + [Constraint.equals(V("i"), C(50))]
        assert is_feasible(cons) is Feasibility.NO


class TestGcdEqualities:
    def test_even_sum_odd_target(self):
        # 2i + 4j == 7 has no integer solution
        expr = V("i", 2) + V("j", 4) - C(7)
        assert is_feasible([Constraint.eq0(expr)]) is Feasibility.NO

    def test_even_sum_even_target(self):
        expr = V("i", 2) + V("j", 4) - C(6)
        cons = [Constraint.eq0(expr)] + box("i", -10, 10) + box("j", -10, 10)
        assert is_feasible(cons) is Feasibility.YES

    def test_no_unit_coefficient_equality(self):
        # 3i + 5j == 1 solvable over Z (i=2, j=-1)
        expr = V("i", 3) + V("j", 5) - C(1)
        cons = [Constraint.eq0(expr)] + box("i", -10, 10) + box("j", -10, 10)
        assert is_feasible(cons) is Feasibility.YES

    def test_no_unit_coefficient_infeasible_in_box(self):
        # 3i + 5j == 1 with i,j in [0, 0] -> no
        expr = V("i", 3) + V("j", 5) - C(1)
        cons = [Constraint.eq0(expr)] + box("i", 0, 0) + box("j", 0, 0)
        assert is_feasible(cons) is Feasibility.NO


class TestDependenceShapes:
    def test_same_iteration_conflict_impossible(self):
        # i == i' and i < i'
        cons = (
            box("i", 1, 100)
            + box("ip", 1, 100)
            + [
                Constraint.equals(V("i"), V("ip")),
                Constraint.lt(V("i"), V("ip")),
            ]
        )
        assert is_feasible(cons) is Feasibility.NO

    def test_overwrite_mod_pattern(self):
        # a(i) and a(i+8): i + 8 == i' feasible in [1, 16]
        cons = (
            box("i", 1, 16)
            + box("ip", 1, 16)
            + [
                Constraint.equals(V("i") + C(8), V("ip")),
                Constraint.lt(V("i"), V("ip")),
            ]
        )
        assert is_feasible(cons) is Feasibility.YES

    def test_stride_2_disjoint(self):
        # 2i == 2i' + 1 never
        cons = (
            box("i", 1, 50)
            + box("ip", 1, 50)
            + [Constraint.equals(V("i", 2), V("ip", 2) + C(1))]
        )
        assert is_feasible(cons) is Feasibility.NO

    def test_dark_shadow_exact_for_unit_coeffs(self):
        # classic: i' == i + 1 within bounds
        cons = (
            box("i", 1, 9)
            + box("ip", 1, 9)
            + [Constraint.equals(V("ip"), V("i") + C(1))]
        )
        assert is_feasible(cons) is Feasibility.YES

    def test_symbolic_bounds_still_decidable(self):
        # i in [1, n], i' in [1, n], i == i', i < i'  -> NO without knowing n
        n = V("n")
        cons = [
            Constraint.ge(V("i"), C(1)),
            Constraint.le(V("i"), n),
            Constraint.ge(V("ip"), C(1)),
            Constraint.le(V("ip"), n),
            Constraint.equals(V("i"), V("ip")),
            Constraint.lt(V("i"), V("ip")),
        ]
        assert is_feasible(cons) is Feasibility.NO


class TestNightmareRegion:
    def test_coarse_coefficients(self):
        # 2x <= 2y - 1 <= 2x + 1 has no integer solution (parity), the
        # classic real-shadow-feasible / integer-infeasible example.
        cons = (
            box("x", 0, 10)
            + box("y", 0, 10)
            + [
                Constraint.geq0(V("y", 2) - C(1) - V("x", 2)),
                Constraint.geq0(V("x", 2) + C(1) - (V("y", 2) - C(1))),
                # force exact: y*2 - 1 must equal some even number -> never
                Constraint.eq0(V("y", 2) - C(1) - V("x", 2)),
            ]
        )
        assert is_feasible(cons) is Feasibility.NO

    def test_bounded_enumeration_fallback(self):
        # 3x + 5y == 11, x,y in [0,3]: x=2,y=1 works
        cons = (
            box("x", 0, 3)
            + box("y", 0, 3)
            + [Constraint.eq0(V("x", 3) + V("y", 5) - C(11))]
        )
        assert is_feasible(cons) is Feasibility.YES


class TestSolveSample:
    def test_returns_witness(self):
        cons = box("i", 3, 7) + [Constraint.equals(V("i"), C(5))]
        w = solve_sample(cons)
        assert w == {"i": 5}

    def test_none_for_infeasible(self):
        cons = box("i", 3, 7) + [Constraint.equals(V("i"), C(50))]
        assert solve_sample(cons) is None

    def test_witness_satisfies_all(self):
        cons = (
            box("i", 1, 10)
            + box("j", 1, 10)
            + [Constraint.ge(V("i") + V("j"), C(15))]
        )
        w = solve_sample(cons)
        assert w is not None
        assert w["i"] + w["j"] >= 15


# ---------------------------------------------------------------------------
# Property: solver agrees with brute force on random small systems
# ---------------------------------------------------------------------------

_coeff = st.integers(-4, 4)


@st.composite
def small_system(draw):
    nvars = draw(st.integers(1, 3))
    names = ["x", "y", "z"][:nvars]
    cons = []
    boxes = {}
    for n in names:
        lo = draw(st.integers(-4, 2))
        hi = lo + draw(st.integers(0, 6))
        boxes[n] = (lo, hi)
        cons += box(n, lo, hi)
    ncons = draw(st.integers(1, 3))
    for _ in range(ncons):
        coeffs = {n: draw(_coeff) for n in names}
        const = draw(st.integers(-8, 8))
        expr = Affine.from_dict(coeffs, const)
        if draw(st.booleans()):
            cons.append(Constraint.eq0(expr))
        else:
            cons.append(Constraint.geq0(expr))
    return cons, boxes, names


@given(small_system())
@settings(max_examples=120, deadline=None)
def test_matches_brute_force(system):
    cons, boxes, names = system
    result = is_feasible(cons)

    ranges = [range(boxes[n][0], boxes[n][1] + 1) for n in names]
    brute = False
    for point in itertools.product(*ranges):
        env = dict(zip(names, point))
        ok = True
        for c in cons:
            val = c.expr.evaluate(env)
            if c.is_equality and val != 0:
                ok = False
                break
            if not c.is_equality and val < 0:
                ok = False
                break
        if ok:
            brute = True
            break

    if result is Feasibility.YES:
        assert brute
    elif result is Feasibility.NO:
        assert not brute
    # MAYBE is always acceptable (sound); but flag it so we notice if the
    # exact fallback stops covering bounded systems.
    assert result is not Feasibility.MAYBE, "bounded system should be decided"
