"""Array region (partial triplet) analysis tests."""

import pytest

from repro.analysis.affine import Affine, to_affine
from repro.analysis.deps import LoopSpec
from repro.analysis.regions import (
    BlockStructure,
    Region,
    Triplet,
    VarRange,
    access_region,
    block_structure,
    covers_dimension,
    dim_extent,
    subscript_triplet,
)
from repro.errors import AnalysisError, NotAffineError
from repro.lang import parse, parse_expr
from repro.lang.ast_nodes import ArrayRef, DimSpec, IntLit


def A(src, params=None):
    return to_affine(parse_expr(src), params)


def rng(lo, hi, params=None):
    return VarRange(A(str(lo) if isinstance(lo, int) else lo, params),
                    A(str(hi) if isinstance(hi, int) else hi, params))


class TestSubscriptTriplet:
    def test_increasing(self):
        t = subscript_triplet(A("i"), {"i": rng(1, 10)})
        assert t.lo == Affine.constant(1)
        assert t.hi == Affine.constant(10)

    def test_negative_coefficient_swaps(self):
        t = subscript_triplet(A("10 - i"), {"i": rng(1, 4)})
        assert t.lo == Affine.constant(6)
        assert t.hi == Affine.constant(9)

    def test_symbolic_constant_kept(self):
        t = subscript_triplet(A("i + base"), {"i": rng(1, "k")})
        assert t.lo == A("1 + base")
        assert t.hi == A("k + base")

    def test_point_when_var_not_ranged(self):
        t = subscript_triplet(A("j"), {"i": rng(1, 10)})
        assert t.is_point()

    def test_extent(self):
        t = subscript_triplet(A("i"), {"i": rng(2, 7)})
        assert t.extent() == Affine.constant(6)

    def test_dependent_range_bounds_rejected(self):
        with pytest.raises(AnalysisError):
            subscript_triplet(
                A("i + j"),
                {"i": rng(1, 4), "j": VarRange(A("i"), A("i"))},
            )


class TestAccessRegion:
    def _ref(self, src):
        e = parse_expr(src)
        assert isinstance(e, ArrayRef)
        return e

    def test_2d(self):
        r = access_region(
            self._ref("a(i, j)"), {"i": rng(1, 4), "j": rng(1, 8)}
        )
        assert r.rank == 2
        assert r.size() == Affine.constant(32)

    def test_tile_range(self):
        r = access_region(self._ref("a(i)"), {"i": rng("t", "t + 3")})
        assert r.triplets[0].lo == A("t")
        assert r.triplets[0].hi == A("t + 3")
        assert r.size() == Affine.constant(4)

    def test_params_folded(self):
        r = access_region(
            self._ref("a(i + nx)"), {"i": rng(1, 2)}, {"nx": 10}
        )
        assert r.triplets[0].lo == Affine.constant(11)


def dim(lo, hi):
    return DimSpec(lo=IntLit(value=lo), hi=IntLit(value=hi))


class TestBlockStructure:
    def test_full_coverage_contiguous(self):
        region = Region(
            "a",
            (
                Triplet(Affine.constant(1), Affine.constant(4)),
                Triplet(Affine.constant(1), Affine.constant(8)),
            ),
        )
        bs = block_structure(region, [dim(1, 4), dim(1, 8)])
        assert bs.contiguous
        assert bs.block_size == Affine.constant(32)

    def test_partial_outer_dim_still_contiguous(self):
        # full first dim, prefix of second: one contiguous run col-major
        region = Region(
            "a",
            (
                Triplet(Affine.constant(1), Affine.constant(4)),
                Triplet(Affine.constant(1), Affine.constant(3)),
            ),
        )
        bs = block_structure(region, [dim(1, 4), dim(1, 8)])
        assert bs.contiguous
        assert bs.block_size == Affine.constant(12)

    def test_partial_inner_dim_blocks(self):
        # half the first dim, all 8 of second: 8 blocks of 2
        region = Region(
            "a",
            (
                Triplet(Affine.constant(1), Affine.constant(2)),
                Triplet(Affine.constant(1), Affine.constant(8)),
            ),
        )
        bs = block_structure(region, [dim(1, 4), dim(1, 8)])
        assert not bs.contiguous
        assert bs.block_size == Affine.constant(2)
        assert bs.num_blocks == Affine.constant(8)

    def test_point_rows_per_column(self):
        region = Region(
            "a",
            (
                Triplet(A("r"), A("r")),
                Triplet(Affine.constant(1), Affine.constant(8)),
            ),
        )
        bs = block_structure(region, [dim(1, 4), dim(1, 8)])
        assert bs.block_size == Affine.constant(1)
        assert bs.num_blocks == Affine.constant(8)

    def test_rank_mismatch_rejected(self):
        region = Region("a", (Triplet(Affine.constant(1), Affine.constant(2)),))
        with pytest.raises(AnalysisError):
            block_structure(region, [dim(1, 4), dim(1, 8)])


class TestDimHelpers:
    def test_dim_extent(self):
        assert dim_extent(dim(0, 9)) == Affine.constant(10)

    def test_covers_dimension(self):
        t = Triplet(Affine.constant(1), Affine.constant(8))
        assert covers_dimension(t, dim(1, 8))
        assert not covers_dimension(t, dim(1, 9))
        assert not covers_dimension(t, dim(0, 8))

    def test_covers_symbolic(self):
        d = DimSpec(lo=IntLit(value=1), hi=parse_expr("n"))
        t = Triplet(Affine.constant(1), A("n"))
        assert covers_dimension(t, d)
