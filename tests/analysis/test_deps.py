"""Dependence-analysis tests: write collection, output dependences, safe
references, and a brute-force cross-check property."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affine import Affine
from repro.analysis.deps import (
    LoopSpec,
    WriteRef,
    banerjee_test,
    boxes_from_loops,
    collect_write_refs,
    dependence_at_level,
    find_output_dependences,
    gcd_test,
    safe_write_refs,
)
from repro.analysis.omega import Feasibility
from repro.lang import parse, parse_stmt


def nest_of(src):
    """Parse a do-loop statement and return ([root], specs, params={})."""
    loop = parse_stmt(src)
    from repro.analysis.loops import loop_chain

    nest = loop_chain(loop)
    return loop, nest.specs({})


class TestCollectWrites:
    def test_simple(self):
        loop, specs = nest_of("do i = 1, 10\n  a(i) = i\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        assert len(writes) == 1
        assert writes[0].affine

    def test_ignores_other_arrays(self):
        loop, specs = nest_of("do i = 1, 10\n  a(i) = b(i)\nenddo")
        assert len(collect_write_refs([loop], "b", specs)) == 0

    def test_nested_and_multiple(self):
        loop, specs = nest_of(
            "do i = 1, 4\n  do j = 1, 4\n    a(i, j) = 0\n    a(i, j) = 1\n  enddo\nenddo"
        )
        writes = collect_write_refs([loop], "a", specs)
        assert len(writes) == 2
        assert writes[0].position < writes[1].position

    def test_non_affine_marked(self):
        loop, specs = nest_of("do i = 1, 10\n  a(i * i) = 1\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        assert not writes[0].affine


class TestFilters:
    def test_gcd_refutes(self):
        # 2i - 2i' + 1 == 0 impossible
        diff = Affine.from_dict({"i": 2, "i$p": -2}, 1)
        assert gcd_test(diff) is Feasibility.NO

    def test_gcd_maybe(self):
        diff = Affine.from_dict({"i": 2, "i$p": -2}, 4)
        assert gcd_test(diff) is Feasibility.MAYBE

    def test_banerjee_refutes_offset(self):
        # i - i' + 100 over i,i' in [1,10]: min value 91 > 0
        diff = Affine.from_dict({"i": 1, "i$p": -1}, 100)
        boxes = {"i": (1, 10), "i$p": (1, 10)}
        assert banerjee_test(diff, boxes) is Feasibility.NO

    def test_banerjee_maybe_in_range(self):
        diff = Affine.from_dict({"i": 1, "i$p": -1}, 2)
        boxes = {"i": (1, 10), "i$p": (1, 10)}
        assert banerjee_test(diff, boxes) is Feasibility.MAYBE

    def test_banerjee_unknown_bounds(self):
        diff = Affine.from_dict({"i": 1, "n": -1}, 0)
        assert banerjee_test(diff, {"i": (1, 10)}) is Feasibility.MAYBE


class TestOutputDependences:
    def test_injective_write_has_none(self):
        loop, specs = nest_of("do i = 1, 10\n  a(i) = i\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        deps = find_output_dependences(writes, specs, boxes_from_loops(specs))
        assert deps == []

    def test_overwrite_detected(self):
        loop, specs = nest_of("do i = 1, 10\n  a(1) = i\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        deps = find_output_dependences(writes, specs, boxes_from_loops(specs))
        assert len(deps) >= 1

    def test_shifted_overwrite(self):
        # a(i) and a(i-1): iteration i writes what i+1... a(i-1) at i'=i+1
        loop, specs = nest_of(
            "do i = 2, 10\n  a(i) = 0\n  a(i - 1) = 1\nenddo"
        )
        writes = collect_write_refs([loop], "a", specs)
        deps = find_output_dependences(writes, specs, boxes_from_loops(specs))
        assert deps
        # direction of the carried dep must be '<'
        assert any(d.direction and d.direction[0] == "<" for d in deps)

    def test_loop_independent_dep(self):
        loop, specs = nest_of("do i = 1, 10\n  a(i) = 0\n  a(i) = 1\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        deps = find_output_dependences(writes, specs, boxes_from_loops(specs))
        assert any(all(x == "=" for x in d.direction) for d in deps)

    def test_disjoint_halves_independent(self):
        loop, specs = nest_of(
            "do i = 1, 10\n  a(i) = 0\n  a(i + 10) = 1\nenddo"
        )
        writes = collect_write_refs([loop], "a", specs)
        deps = find_output_dependences(writes, specs, boxes_from_loops(specs))
        assert deps == []

    def test_2d_independent(self):
        loop, specs = nest_of(
            "do i = 1, 8\n  do j = 1, 8\n    a(i, j) = i + j\n  enddo\nenddo"
        )
        writes = collect_write_refs([loop], "a", specs)
        assert (
            find_output_dependences(writes, specs, boxes_from_loops(specs)) == []
        )

    def test_2d_row_reuse(self):
        loop, specs = nest_of(
            "do i = 1, 8\n  do j = 1, 8\n    a(j) = i + j\n  enddo\nenddo"
        )
        writes = collect_write_refs([loop], "a", specs)
        deps = find_output_dependences(writes, specs, boxes_from_loops(specs))
        assert deps  # outer loop rewrites whole row

    def test_non_affine_conservative(self):
        loop, specs = nest_of("do i = 1, 10\n  a(i * i) = 1\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        deps = find_output_dependences(writes, specs, boxes_from_loops(specs))
        assert deps and not deps[0].exact


class TestSafeRefs:
    def test_safe_when_injective(self):
        loop, specs = nest_of("do i = 1, 10\n  a(2 * i) = i\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        assert len(safe_write_refs(writes, specs, boxes_from_loops(specs))) == 1

    def test_unsafe_when_overwritten(self):
        loop, specs = nest_of("do i = 1, 10\n  a(mod(i, 2)) = i\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        assert safe_write_refs(writes, specs, boxes_from_loops(specs)) == []

    def test_last_write_is_safe_first_not(self):
        loop, specs = nest_of("do i = 1, 10\n  a(i) = 0\n  a(i) = 1\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        safe = safe_write_refs(writes, specs, boxes_from_loops(specs))
        assert len(safe) == 1
        assert safe[0].position == writes[1].position


class TestDependenceAtLevel:
    def test_level0_needs_lexical_order(self):
        loop, specs = nest_of("do i = 1, 10\n  a(i) = 0\n  a(i) = 1\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        w1, w2 = writes
        assert dependence_at_level(w1, w2, specs, 0) is Feasibility.YES
        assert dependence_at_level(w2, w1, specs, 0) is Feasibility.NO

    def test_carried_level(self):
        loop, specs = nest_of("do i = 1, 10\n  a(i + 1) = 0\n  a(i) = 1\nenddo")
        writes = collect_write_refs([loop], "a", specs)
        w_hi, w_lo = writes
        # a(i+1) at i is rewritten by a(i') at i' = i+1 > i: carried at level 1
        assert dependence_at_level(w_hi, w_lo, specs, 1) is Feasibility.YES


# ---------------------------------------------------------------------------
# Property: analysis agrees with direct simulation of the writes
# ---------------------------------------------------------------------------


@st.composite
def write_patterns(draw):
    """Random 1-D write subscripts c*i + k over a small loop."""
    n = draw(st.integers(3, 8))
    nwrites = draw(st.integers(1, 2))
    subs = []
    for _ in range(nwrites):
        c = draw(st.integers(0, 3))
        k = draw(st.integers(-2, 4))
        subs.append((c, k))
    return n, subs


@given(write_patterns())
@settings(max_examples=150, deadline=None)
def test_output_dependence_matches_execution(pattern):
    n, subs = pattern
    body = "\n".join(
        f"  a({c} * i + {k}) = {idx}" for idx, (c, k) in enumerate(subs)
    )
    loop = parse_stmt(f"do i = 1, {n}\n{body}\nenddo")
    specs = [LoopSpec.from_doloop(loop, {})]
    writes = collect_write_refs([loop], "a", specs)
    deps = find_output_dependences(writes, specs, boxes_from_loops(specs))

    # simulate: does any location get written twice?
    seen = {}
    overwrote = False
    for i in range(1, n + 1):
        for c, k in subs:
            loc = c * i + k
            if loc in seen:
                overwrote = True
            seen[loc] = True

    if overwrote:
        assert deps, f"missed dependence for {subs} over [1,{n}]"
    else:
        assert not deps, f"false dependence for {subs} over [1,{n}]"
