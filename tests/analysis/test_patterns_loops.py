"""Tests for loop-nest facts, interprocedural mutation, parameter
evaluation, quasi-affine collapsing, and opportunity detection."""

import pytest

from repro.analysis import (
    DictOracle,
    PatternKind,
    RecordingOracle,
    find_opportunities,
    loop_chain,
    mutated_arg_positions,
    parameter_values,
)
from repro.analysis.affine import Affine
from repro.analysis.loops import (
    contains_branch,
    find_last_mutating_nest,
    is_perfect_nest,
    loop_indexing_dimension,
    mutates_array,
)
from repro.analysis.quasi import collapse_divmod, to_quasi_affine
from repro.errors import AnalysisError, NotAffineError
from repro.lang import parse, parse_expr, parse_stmt


class TestLoopChain:
    def test_single(self):
        nest = loop_chain(parse_stmt("do i = 1, 4\n  x = i\nenddo"))
        assert nest.depth == 1
        assert nest.loop_vars == ["i"]

    def test_triple(self):
        nest = loop_chain(
            parse_stmt(
                "do i = 1, 2\n  do j = 1, 3\n    do k = 1, 4\n      x = 0\n"
                "    enddo\n  enddo\nenddo"
            )
        )
        assert nest.loop_vars == ["i", "j", "k"]
        assert is_perfect_nest(nest)

    def test_imperfect_stops_chain_correctly(self):
        nest = loop_chain(
            parse_stmt(
                "do i = 1, 2\n  x = 0\n  do j = 1, 3\n    y = 1\n  enddo\nenddo"
            )
        )
        assert nest.loop_vars == ["i", "j"]
        assert not is_perfect_nest(nest)

    def test_two_sibling_loops_stop_chain(self):
        nest = loop_chain(
            parse_stmt(
                "do i = 1, 2\n  do j = 1, 3\n    x = 0\n  enddo\n"
                "  do k = 1, 3\n    y = 0\n  enddo\nenddo"
            )
        )
        assert nest.loop_vars == ["i"]


class TestMutationFacts:
    def test_direct_assignment(self):
        s = parse_stmt("do i = 1, 4\n  a(i) = 0\nenddo")
        assert mutates_array(s, "a")
        assert not mutates_array(s, "b")

    def test_byref_known(self):
        s = parse_stmt("do i = 1, 4\n  call p(i, a)\nenddo")
        assert mutates_array(s, "a", {"p": [1]})
        assert not mutates_array(s, "a", {"p": [0]})

    def test_unknown_call_not_mutator_here(self):
        s = parse_stmt("do i = 1, 4\n  call p(i, a)\nenddo")
        assert not mutates_array(s, "a", {})

    def test_find_last_mutating_nest(self):
        tree = parse(
            "program p\ninteger :: a(4), b(4)\ninteger :: i\n"
            "do i = 1, 4\n  a(i) = 0\nenddo\n"
            "do i = 1, 4\n  b(i) = 0\nenddo\n"
            "call c(a)\nend"
        )
        body = tree.main.body
        found = find_last_mutating_nest(body, 2, "a")
        assert found is not None and found[0] == 0
        found_b = find_last_mutating_nest(body, 2, "b")
        assert found_b is not None and found_b[0] == 1

    def test_branch_detection(self):
        s = parse_stmt("do i = 1, 2\n  if (i > 1) then\n    x = 1\n  endif\nenddo")
        assert contains_branch([s])
        assert not contains_branch([parse_stmt("x = 1")])

    def test_loop_indexing_dimension(self):
        nest = loop_chain(
            parse_stmt("do i = 1, 4\n  do j = 1, 4\n    a(j, i) = 0\n  enddo\nenddo")
        )
        ref = nest.innermost.body[0].lhs
        assert loop_indexing_dimension(nest, ref, 0).var == "j"
        assert loop_indexing_dimension(nest, ref, 1).var == "i"

    def test_loop_indexing_mixed_dim_none(self):
        nest = loop_chain(
            parse_stmt("do i = 1, 4\n  do j = 1, 4\n    a(i + j) = 0\n  enddo\nenddo")
        )
        ref = nest.innermost.body[0].lhs
        assert loop_indexing_dimension(nest, ref, 0) is None


class TestInterprocedural:
    def test_direct_param_write(self):
        tree = parse("subroutine s(a, b)\ninteger :: a(4), b\na(1) = 0\nend")
        m = mutated_arg_positions(tree)
        assert m["s"] == {0}

    def test_transitive(self):
        tree = parse(
            "subroutine outer(x)\ninteger :: x(4)\ncall inner(x)\nend\n"
            "subroutine inner(y)\ninteger :: y(4)\ny(2) = 1\nend"
        )
        m = mutated_arg_positions(tree)
        assert m["outer"] == {0}

    def test_unknown_callee_conservative(self):
        tree = parse("subroutine s(a)\ninteger :: a(4)\ncall mystery(a)\nend")
        m = mutated_arg_positions(tree)
        assert m["s"] == {0}

    def test_unknown_callee_with_oracle(self):
        tree = parse("subroutine s(a)\ninteger :: a(4)\ncall mystery(a)\nend")
        m = mutated_arg_positions(tree, DictOracle({"mystery": set()}))
        assert m["s"] == set()

    def test_recording_oracle(self):
        tree = parse("subroutine s(a)\ninteger :: a(4)\ncall mystery(a)\nend")
        rec = RecordingOracle()
        mutated_arg_positions(tree, rec)
        assert any(q.procedure == "mystery" for q in rec.queries)


class TestParameters:
    def test_chain(self):
        tree = parse(
            "program p\ninteger, parameter :: nx = 8, np = 2, szp = nx / np\nend"
        )
        assert parameter_values(tree.main) == {"nx": 8, "np": 2, "szp": 4}

    def test_missing_init_rejected(self):
        tree = parse("program p\ninteger, parameter :: n\nend")
        with pytest.raises(AnalysisError):
            parameter_values(tree.main)

    def test_real_parameters_skipped(self):
        tree = parse("program p\nreal, parameter :: t = 0.5\nend")
        assert parameter_values(tree.main) == {}


class TestQuasiAffine:
    def test_mod_div_collapse(self):
        # mod(ix-1, 4) + 4*((ix-1)/4) == ix - 1 for ix >= 1
        e1, t1 = to_quasi_affine(parse_expr("mod(ix - 1, 4)"))
        e2, t2 = to_quasi_affine(parse_expr("(ix - 1) / 4"))
        combined = e1 + e2.scale(4)
        t1.update(t2)
        out = collapse_divmod(combined, t1, {"ix": (1, 16)})
        assert out == Affine.from_dict({"ix": 1}, -1)

    def test_no_collapse_without_nonneg_proof(self):
        e1, t1 = to_quasi_affine(parse_expr("mod(ix - 1, 4)"))
        e2, t2 = to_quasi_affine(parse_expr("(ix - 1) / 4"))
        combined = e1 + e2.scale(4)
        t1.update(t2)
        with pytest.raises(NotAffineError):
            collapse_divmod(combined, t1, {"ix": (-5, 16)})

    def test_mismatched_scale_no_collapse(self):
        e1, t1 = to_quasi_affine(parse_expr("mod(ix - 1, 4)"))
        e2, t2 = to_quasi_affine(parse_expr("(ix - 1) / 4"))
        combined = e1 + e2.scale(5)  # wrong multiplier
        t1.update(t2)
        with pytest.raises(NotAffineError):
            collapse_divmod(combined, t1, {"ix": (1, 16)})

    def test_plain_affine_passthrough(self):
        e, t = to_quasi_affine(parse_expr("2 * i + 3"))
        assert t == {}
        assert collapse_divmod(e, t) == Affine.from_dict({"i": 2}, 3)


DIRECT_SRC = """
program main
  integer, parameter :: nx = 16, np = 4
  integer :: as(nx), ar(nx)
  integer :: ix, iy, ierr
  do iy = 1, nx
    do ix = 1, nx
      as(ix) = ix * iy
    enddo
    call mpi_alltoall(as, nx / np, 1, ar, nx / np, 1, 0, ierr)
  enddo
end program
"""

INDIRECT_SRC = """
program main
  integer, parameter :: n1 = 4, n2 = 4, n3 = 8, np = 4
  integer :: as(n1, n2, n3), ar(n1, n2, n3)
  integer :: at(n1 * n2)
  integer :: ix, iy, tx, ty, ierr
  external p
  do iy = 1, n3
    call p(iy, at)
    do ix = 1, n1 * n2
      tx = mod(ix - 1, n1) + 1
      ty = (ix - 1) / n1 + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, n1 * n2 * n3 / np, 1, ar, n1 * n2 * n3 / np, 1, 0, ierr)
end program
"""


class TestOpportunityDetection:
    def test_direct_found(self):
        res = find_opportunities(parse(DIRECT_SRC))
        assert len(res.opportunities) == 1
        opp = res.opportunities[0]
        assert opp.kind is PatternKind.DIRECT
        assert opp.send_array == "as"
        assert opp.recv_array == "ar"
        assert opp.nest.loop_vars == ["ix"]

    def test_indirect_found_and_verified(self):
        res = find_opportunities(parse(INDIRECT_SRC))
        assert len(res.opportunities) == 1
        opp = res.opportunities[0]
        assert opp.kind is PatternKind.INDIRECT
        assert opp.temp_array == "at"
        assert opp.copy_map.slab_size == 16
        # slab base = 16 * (iy - 1)
        assert opp.copy_map.as_flat_base == Affine.from_dict({"iy": 16}, -16)

    def test_unsafe_overwrite_rejected(self):
        src = DIRECT_SRC.replace("as(ix) = ix * iy", "as(mod(ix, 4) + 1) = ix")
        res = find_opportunities(parse(src))
        assert not res.opportunities
        assert any("non-affine" in r.reason or "output dep" in r.reason
                   for r in res.rejections)

    def test_branch_in_nest_rejected(self):
        src = DIRECT_SRC.replace(
            "as(ix) = ix * iy",
            "if (ix > 1) then\n  as(ix) = ix\nendif",
        )
        res = find_opportunities(parse(src))
        assert not res.opportunities
        assert any("conditional" in r.reason for r in res.rejections)

    def test_intervening_use_rejected(self):
        src = DIRECT_SRC.replace(
            "    call mpi_alltoall",
            "    as(1) = 0\n    call mpi_alltoall",
        )
        res = find_opportunities(parse(src))
        assert not res.opportunities

    def test_recv_array_used_in_nest_rejected(self):
        src = DIRECT_SRC.replace("as(ix) = ix * iy", "as(ix) = ar(ix) + iy")
        res = find_opportunities(parse(src))
        assert not res.opportunities
        assert any("earliest safe receive" in r.reason for r in res.rejections)

    def test_non_flat_copy_rejected(self):
        # transpose copy: at lands out of flat order
        src = INDIRECT_SRC.replace(
            "tx = mod(ix - 1, n1) + 1",
            "tx = (ix - 1) / n1 + 1",
        ).replace(
            "ty = (ix - 1) / n1 + 1",
            "ty = mod(ix - 1, n1) + 1",
        )
        res = find_opportunities(parse(src))
        assert not res.opportunities

    def test_oracle_declines_producer(self):
        oracle = DictOracle({"p": set()})
        res = find_opportunities(parse(INDIRECT_SRC), oracle=oracle)
        # producer "does not mutate at" -> no mutating nest at all
        assert not res.opportunities

    def test_partial_copy_rejected(self):
        src = INDIRECT_SRC.replace("do ix = 1, n1 * n2", "do ix = 1, n1")
        res = find_opportunities(parse(src))
        assert not res.opportunities
        assert any("trip count" in r.reason for r in res.rejections)
