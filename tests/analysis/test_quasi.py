"""Quasi-affine forms: mod/div opaque terms and the collapse identity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.affine import Affine
from repro.analysis.quasi import collapse_divmod, to_quasi_affine
from repro.errors import NotAffineError
from repro.lang import parse


def _expr(text: str):
    """Parse an expression by wrapping it in an assignment."""
    src = f"program t\n  integer :: x, ix, n\n\n  x = {text}\nend program t\n"
    return parse(src).main.body[0].rhs


class TestToQuasiAffine:
    def test_plain_affine_passthrough(self):
        a, table = to_quasi_affine(_expr("2 * ix + 3"))
        assert not table
        assert a.coeff("ix") == 2 and a.const == 3

    def test_mod_becomes_opaque(self):
        a, table = to_quasi_affine(_expr("mod(ix - 1, 8)"))
        assert len(table) == 1
        (term,) = table.values()
        assert term.kind == "mod"
        assert term.modulus == 8
        assert term.base.coeff("ix") == 1 and term.base.const == -1

    def test_div_becomes_opaque(self):
        a, table = to_quasi_affine(_expr("(ix - 1) / 8"))
        (term,) = table.values()
        assert term.kind == "div"

    def test_exact_division_stays_affine(self):
        a, table = to_quasi_affine(_expr("(8 * ix + 16) / 8"))
        assert not table
        assert a.coeff("ix") == 1 and a.const == 2

    def test_constant_folding(self):
        a, table = to_quasi_affine(_expr("mod(13, 8) + 7 / 2"))
        assert not table
        assert a.is_constant and a.const == 5 + 3

    def test_params_substituted(self):
        a, table = to_quasi_affine(_expr("mod(ix - 1, n)"), {"n": 4})
        (term,) = table.values()
        assert term.modulus == 4

    def test_mod_by_variable_rejected(self):
        with pytest.raises(NotAffineError):
            to_quasi_affine(_expr("mod(ix, n)"))

    def test_nonpositive_modulus_rejected(self):
        with pytest.raises(NotAffineError):
            to_quasi_affine(_expr("mod(ix, 0 - 2)"))

    def test_product_of_variables_rejected(self):
        with pytest.raises(NotAffineError):
            to_quasi_affine(_expr("ix * ix"))


class TestCollapse:
    def _fig3_flat(self, n=10):
        """Column-major flat offset of as(tx, ty, .) from Figure 3:
        mod(ix-1, n) + n*div(ix-1, n)."""
        a, table = to_quasi_affine(_expr(f"mod(ix - 1, {n}) + ((ix - 1) / {n}) * {n}"))
        return a, table

    def test_figure3_collapse(self):
        a, table = self._fig3_flat()
        out = collapse_divmod(a, table, {"ix": (1, 100)})
        assert out == Affine.from_dict({"ix": 1}, -1)

    def test_collapse_requires_nonnegativity_proof(self):
        a, table = self._fig3_flat()
        with pytest.raises(NotAffineError, match="could not be collapsed"):
            collapse_divmod(a, table, {"ix": (-5, 100)})

    def test_collapse_requires_matching_coefficients(self):
        # mod + 2*n*div does not satisfy the identity
        a, table = to_quasi_affine(
            _expr("mod(ix - 1, 10) + ((ix - 1) / 10) * 20")
        )
        with pytest.raises(NotAffineError):
            collapse_divmod(a, table, {"ix": (1, 100)})

    def test_scaled_pair_collapses(self):
        # 3*mod + 30*div == 3*(ix-1)
        a, table = to_quasi_affine(
            _expr("3 * mod(ix - 1, 10) + ((ix - 1) / 10) * 30")
        )
        out = collapse_divmod(a, table, {"ix": (1, 100)})
        assert out.coeff("ix") == 3 and out.const == -3

    @given(ix=st.integers(1, 500), n=st.sampled_from([2, 5, 8, 16]))
    def test_identity_semantics(self, ix, n):
        """The collapse is the true Fortran semantics for ix >= 1."""
        assert (ix - 1) % n + n * ((ix - 1) // n) == ix - 1
