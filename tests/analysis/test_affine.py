"""Affine algebra tests (unit + property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affine import Affine, to_affine, try_affine
from repro.errors import NotAffineError
from repro.lang import parse_expr
from repro.lang.unparser import unparse_expr


class TestConstruction:
    def test_constant(self):
        a = Affine.constant(5)
        assert a.is_constant and a.const == 5

    def test_variable(self):
        a = Affine.variable("i", 3)
        assert a.coeff("i") == 3 and a.const == 0

    def test_zero_coeff_normalized(self):
        a = Affine.from_dict({"i": 0, "j": 2})
        assert a.variables == ("j",)

    def test_equality_is_structural(self):
        assert Affine.from_dict({"i": 1}, 2) == Affine.variable("i").shift(2)


class TestArithmetic:
    def test_add(self):
        a = to_affine(parse_expr("2*i + 1"))
        b = to_affine(parse_expr("3*i - 4"))
        assert a + b == to_affine(parse_expr("5*i - 3"))

    def test_sub_cancels(self):
        a = to_affine(parse_expr("i + j"))
        assert (a - a) == Affine.constant(0)

    def test_scale(self):
        a = to_affine(parse_expr("i - 2"))
        assert a.scale(3) == to_affine(parse_expr("3*i - 6"))

    def test_neg(self):
        a = to_affine(parse_expr("i - 2"))
        assert -a == to_affine(parse_expr("2 - i"))

    def test_exact_div(self):
        a = to_affine(parse_expr("4*i + 8"))
        assert a.exact_div(4) == to_affine(parse_expr("i + 2"))
        assert a.exact_div(3) is None

    def test_substitute(self):
        a = to_affine(parse_expr("2*i + j"))
        out = a.substitute("i", to_affine(parse_expr("k - 1")))
        assert out == to_affine(parse_expr("2*k + j - 2"))

    def test_partial_evaluate(self):
        a = to_affine(parse_expr("2*i + 3*j + 1"))
        out = a.partial_evaluate({"i": 5})
        assert out == to_affine(parse_expr("3*j + 11"))

    def test_evaluate(self):
        a = to_affine(parse_expr("2*i - j"))
        assert a.evaluate({"i": 4, "j": 3}) == 5

    def test_evaluate_unbound_raises(self):
        with pytest.raises(NotAffineError):
            Affine.variable("i").evaluate({})


class TestConversion:
    @pytest.mark.parametrize(
        "src,coeffs,const",
        [
            ("7", {}, 7),
            ("i", {"i": 1}, 0),
            ("-i", {"i": -1}, 0),
            ("i + 2*j - 3", {"i": 1, "j": 2}, -3),
            ("2*(i + 1)", {"i": 2}, 2),
            ("(i + j) - (i - j)", {"j": 2}, 0),
            ("4*i/2", {"i": 2}, 0),
            ("2**3", {}, 8),
        ],
    )
    def test_affine_exprs(self, src, coeffs, const):
        a = to_affine(parse_expr(src))
        assert a == Affine.from_dict(coeffs, const)

    def test_params_fold(self):
        a = to_affine(parse_expr("nx / np"), {"nx": 16, "np": 4})
        assert a == Affine.constant(4)

    def test_mod_of_constants_folds(self):
        assert to_affine(parse_expr("mod(7, 4)")) == Affine.constant(3)

    def test_min_max_constants_fold(self):
        assert to_affine(parse_expr("min(3, 5)")) == Affine.constant(3)
        assert to_affine(parse_expr("max(3, 5)")) == Affine.constant(5)

    @pytest.mark.parametrize(
        "src",
        [
            "i * j",
            "i / 2",
            "mod(i, 4)",
            "i ** 2",
            "sqrt(x)",
            "a(i)",
            "2.5",
        ],
    )
    def test_non_affine_raises(self, src):
        with pytest.raises(NotAffineError):
            to_affine(parse_expr(src))

    def test_try_affine_returns_none(self):
        assert try_affine(parse_expr("i * j")) is None
        assert try_affine(parse_expr("i + j")) is not None


class TestToAst:
    @pytest.mark.parametrize(
        "src", ["i + 2*j - 3", "0", "-i", "5", "3*i", "-2*i + 1"]
    )
    def test_round_trip_through_ast(self, src):
        a = to_affine(parse_expr(src))
        rebuilt = to_affine(a.to_ast())
        assert rebuilt == a

    def test_to_ast_is_parseable(self):
        a = Affine.from_dict({"i": -2, "j": 1}, 7)
        text = unparse_expr(a.to_ast())
        assert to_affine(parse_expr(text)) == a


@given(
    st.dictionaries(st.sampled_from("ijkmn"), st.integers(-5, 5), max_size=4),
    st.integers(-10, 10),
    st.dictionaries(st.sampled_from("ijkmn"), st.integers(-5, 5), max_size=4),
    st.integers(-10, 10),
    st.dictionaries(st.sampled_from("ijkmn"), st.integers(-9, 9), min_size=5, max_size=5),
)
@settings(max_examples=200, deadline=None)
def test_arithmetic_matches_pointwise_semantics(c1, k1, c2, k2, env):
    """(a op b).evaluate(env) == a.evaluate(env) op b.evaluate(env)."""
    env = {v: env.get(v, 0) for v in "ijkmn"}
    a = Affine.from_dict(c1, k1)
    b = Affine.from_dict(c2, k2)
    assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)
    assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)
    assert a.scale(3).evaluate(env) == 3 * a.evaluate(env)
    assert (-a).evaluate(env) == -a.evaluate(env)


@given(
    st.dictionaries(st.sampled_from("ijk"), st.integers(-5, 5), max_size=3),
    st.integers(-10, 10),
    st.dictionaries(st.sampled_from("mn"), st.integers(-5, 5), max_size=2),
    st.integers(-10, 10),
    st.dictionaries(st.sampled_from("ijkmn"), st.integers(-9, 9), min_size=5, max_size=5),
)
@settings(max_examples=200, deadline=None)
def test_substitution_matches_evaluation(c1, k1, c2, k2, env):
    """Substituting then evaluating == evaluating with the bound value."""
    env = {v: env.get(v, 0) for v in "ijkmn"}
    a = Affine.from_dict(c1, k1)
    rep = Affine.from_dict(c2, k2)
    substituted = a.substitute("i", rep)
    env2 = dict(env)
    env2["i"] = rep.evaluate(env)
    assert substituted.evaluate(env) == a.evaluate(env2)
