"""The Session façade: construction-time resolution, typed requests,
golden parity with the legacy engine paths, and resource amortization
(one cache + one pool reused across calls)."""

from __future__ import annotations

import pytest

from repro import (
    CompareRequest,
    ExecutionContext,
    Job,
    Session,
    UNSET,
    VerifyRequest,
)
from repro.apps import build_app
from repro.errors import ReproError, SimulationError, VerificationError
from repro.harness.figures import figure1
from repro.harness.sweep import SweepSpec, _execute_sweep
from repro.runtime import network as network_registry
from repro.runtime.costmodel import DEFAULT_COST_MODEL
from tests.programs import direct_2d

NRANKS = 4


def small_spec(name: str = "api-spec") -> SweepSpec:
    return SweepSpec(
        name=name,
        app="fft",
        app_kwargs={"n": 32, "steps": 1, "stages": 2},
        nranks=(NRANKS,),
        networks=("gmnet",),
    )


class TestConstruction:
    def test_defaults(self):
        s = Session()
        assert s.network.name == "mpich-gm"  # "gmnet" alias resolves
        assert s.cache is None
        assert s.jobs is None
        assert s.pool() is None

    def test_context_object_and_overrides(self):
        ctx = ExecutionContext(network="hostnet", jobs=3)
        s = Session(ctx, network="ideal")
        assert s.network.name == "ideal"  # keyword override wins
        assert s.jobs == 3  # the rest comes from the context

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            Session(fault_model="chaos")

    def test_unknown_network_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            Session(network="carrier-pigeon")

    def test_unknown_collective_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            Session(collective="carrier-pigeon")

    def test_collective_suite_resolved_once(self):
        s = Session(collective="bruck")
        assert s.collective_suite["alltoall"] == "bruck"
        # unlisted collectives keep their defaults in the resolved map
        assert set(s.collective_suite) == {
            "alltoall",
            "allreduce",
            "allgather",
            "bcast",
        }

    def test_registry_mutation_cannot_reach_a_live_session(self):
        """Names resolve at construction: deleting the registry entry
        afterwards must not affect the session (a daemon's registry may
        churn under it)."""
        model = network_registry.MPICH_GM.with_(name="api-ephemeral")
        network_registry.register_model(model)
        try:
            s = Session(network="api-ephemeral")
        finally:
            del network_registry._REGISTRY["api-ephemeral"]
        m = s.measure(Job(program=direct_2d(), nranks=NRANKS))
        assert m.network == "api-ephemeral"


class TestRequests:
    def test_measure_matches_legacy_measure(self):
        src = direct_2d()
        s = Session(network="gmnet")
        got = s.measure(Job(program=src, nranks=NRANKS))
        with pytest.warns(DeprecationWarning):
            from repro.harness.runner import measure

            legacy = measure(src, NRANKS, "gmnet")
        assert got.to_dict() == legacy.to_dict()

    def test_job_overrides_beat_session_defaults(self):
        src = direct_2d()
        s = Session(network="hostnet")
        inherited = s.measure(Job(program=src, nranks=NRANKS))
        overridden = s.measure(
            Job(program=src, nranks=NRANKS, network="gmnet")
        )
        assert inherited.network == "mpich"
        assert overridden.network == "mpich-gm"

    def test_collective_override_and_unset_sentinel(self):
        src = direct_2d()
        s = Session(collective="bruck")
        inherited = s.measure(Job(program=src, nranks=NRANKS))
        assert "alltoall=bruck" in inherited.collective
        # explicit None forces the registry defaults despite the session
        defaults = s.measure(
            Job(program=src, nranks=NRANKS, collective=None)
        )
        assert "alltoall=pairwise" in defaults.collective
        assert Job(program=src, nranks=NRANKS).collective is UNSET

    def test_compare_matches_legacy_run_pair(self):
        app = build_app("fft", nranks=NRANKS, n=32, steps=1, stages=2)
        s = Session(network="gmnet")
        got = s.compare(CompareRequest(app=app, tile_size=4))
        with pytest.warns(DeprecationWarning):
            from repro.harness.runner import run_pair

            legacy = run_pair(app, "gmnet", tile_size=4)
        assert got.original.to_dict() == legacy.original.to_dict()
        assert got.prepush.to_dict() == legacy.prepush.to_dict()
        assert got.equivalent and legacy.equivalent

    def test_compare_accepts_bare_appspec(self):
        app = build_app("fft", nranks=NRANKS, n=32, steps=1, stages=2)
        pair = Session(network="gmnet", verify=False).compare(app)
        assert pair.app == app.name

    def test_verify_returns_both_reports(self):
        src = direct_2d()
        result = Session(network="gmnet").verify(
            VerifyRequest(program=src, nranks=NRANKS)
        )
        assert result.equivalent
        assert result.transform.transformed
        assert result.speedup == result.equivalence.speedup

    def test_verify_bare_program_shorthand(self):
        # direct_2d defaults to np=4; VerifyRequest defaults to 8 ranks,
        # so the shorthand needs a program sized for the default
        src = direct_2d(n=16, nprocs=8)
        result = Session(network="gmnet").verify(src)
        assert result.equivalent

    def test_verify_untransformable_raises(self):
        with pytest.raises(VerificationError):
            Session().verify(
                VerifyRequest(
                    program="program p\ninteger :: i\ni = 1\n"
                    "end program p",
                    nranks=2,
                )
            )

    def test_run_many_serial_without_jobs(self):
        src = direct_2d()
        s = Session()
        batch = s.run_many(
            [Job(program=src, nranks=NRANKS) for _ in range(2)]
        )
        assert batch.mode == "serial"
        assert batch[0].time == batch[1].time


class TestSweepAmortization:
    def test_sweep_uses_session_cache_and_pool(self, tmp_path):
        with Session(cache_dir=tmp_path, jobs=2) as s:
            cold = s.sweep(small_spec())
            pool_after_first = s._executor
            warm = s.sweep(small_spec())
            pool_after_second = s._executor
        # warm cache: zero simulations, bit-identical measurements
        assert cold.stats.total_simulated > 0
        assert warm.stats.total_simulated == 0
        assert [r.measurement.to_dict() for r in warm.runs] == [
            r.measurement.to_dict() for r in cold.runs
        ]
        # the pool object is created once and reused across sweeps
        # (when multiprocessing is unavailable both are None — equally shared)
        assert pool_after_first is pool_after_second

    def test_sweep_matches_legacy_engine(self, tmp_path):
        legacy = _execute_sweep(small_spec(), cache=None, jobs=None)
        with Session() as s:
            via_session = s.sweep(small_spec())
        assert [r.measurement.to_dict() for r in via_session.runs] == [
            r.measurement.to_dict() for r in legacy.runs
        ]

    def test_figure1_golden_parity_and_warm_cache(self, tmp_path):
        """The acceptance bar: figure1 through the Session façade is
        cell-for-cell identical to the engine-direct path, and a warm
        session regenerates it with zero simulations."""
        kwargs = dict(n=16, nranks=NRANKS, stages=2, verify=False)
        direct = figure1(**kwargs)
        with Session(cache_dir=tmp_path) as s:
            cold = figure1(session=s, **kwargs)
            warm = figure1(session=s, **kwargs)
        assert cold.rows == direct.rows
        assert warm.rows == direct.rows
        assert cold.columns == direct.columns
        # second pass was served entirely from the session's cache
        assert s.cache.stats.hits > 0
        assert s.cache.stats.misses == s.cache.stats.stores

    def test_session_kwarg_excludes_legacy_cache_jobs(self, tmp_path):
        with Session() as s:
            with pytest.raises(ReproError):
                figure1(
                    n=16,
                    nranks=NRANKS,
                    stages=2,
                    verify=False,
                    session=s,
                    cache=tmp_path,
                )

    def test_broken_pool_is_retired_not_resubmitted(self):
        """A pool whose workers die mid-session must be retired: later
        calls may not keep submitting to the dead executor."""
        s = Session(jobs=2)
        pool = s.pool()
        if pool is None:
            pytest.skip("multiprocessing unavailable in this environment")
        pool._broken = "simulated worker death"
        assert s.pool() is None
        assert s._executor_failed
        # the session stays usable (serial or ephemeral-pool fallback)
        batch = s.run_many(
            [Job(program=direct_2d(), nranks=NRANKS) for _ in range(2)]
        )
        assert len(batch) == 2
        s.close()

    def test_close_is_idempotent_and_pool_recreates(self):
        s = Session(jobs=2)
        s.close()
        s.close()
        batch = s.run_many(
            [Job(program=direct_2d(), nranks=NRANKS) for _ in range(2)]
        )
        assert len(batch) == 2
