"""The variant axis of the Session façade.

Covers construction-time resolution of ``ExecutionContext.variant``,
the new :meth:`Session.transform`, Job-level transformation with
fingerprint provenance, and the ``options``/legacy-kwargs folding
rules of prepare/compare/verify.
"""

import pytest

from repro.api import CompareRequest, ExecutionContext, Job, Session
from repro.apps import build_app
from repro.errors import ReproError, TransformError
from repro.interp.runner import job_fingerprint
from repro.transform.options import TransformOptions
from repro.transform.pipeline import get_variant
from repro.transform.prepush import Compuniformer


@pytest.fixture(scope="module")
def app():
    return build_app("fft", n=8, nranks=4, steps=1, stages=2)


@pytest.fixture(scope="module")
def indirect_app():
    return build_app("indirect", n=8, nranks=4, stages=2)


class TestConstruction:
    def test_variant_resolved_once_at_construction(self):
        session = Session(variant="no-interchange")
        assert session.variant_pipeline is get_variant("no-interchange")
        assert "no-interchange" in repr(session)

    def test_unknown_variant_rejected_at_construction(self):
        with pytest.raises(TransformError, match="unknown variant"):
            Session(variant="transmogrified")

    def test_context_object_carries_variant(self):
        ctx = ExecutionContext(variant="tile-only")
        assert Session(ctx).variant_pipeline is get_variant("tile-only")


class TestTransform:
    def test_default_variant_is_context_default(self, app):
        rep = Session().transform(app.source)
        assert rep.pipeline == "prepush"
        assert rep.transformed
        assert [p.name for p in rep.passes] == [
            "interchange",
            "tile",
            "commgen",
            "indirect-elim",
        ]

    def test_explicit_variant_and_options(self, app):
        rep = Session().transform(
            app.source,
            variant="tile-only",
            options=TransformOptions(tile_size=2),
        )
        assert rep.pipeline == "tile-only"
        assert rep.sites[0].tile_size == 2

    def test_matches_legacy_compuniformer(self, app):
        rep = Session().transform(app.source)
        legacy = Compuniformer().transform(app.source)
        assert rep.unparse() == legacy.unparse()


class TestJobVariant:
    def test_job_variant_transforms_before_simulating(self, app):
        session = Session()
        transformed = session.transform(app.source)
        via_job = session.measure(
            Job(program=app.source, nranks=app.nranks, variant="prepush")
        )
        direct = session.measure(
            Job(program=transformed.source, nranks=app.nranks)
        )
        assert via_job.time == direct.time
        assert via_job.messages == direct.messages

    def test_job_without_variant_runs_as_given(self, app):
        session = Session()
        plain = session.measure(Job(program=app.source, nranks=app.nranks))
        treated = session.measure(
            Job(program=app.source, nranks=app.nranks, variant="prepush")
        )
        # the prepush rewrite replaces the alltoall with point-to-point
        # traffic: message counts must differ if the transform ran
        assert plain.messages != treated.messages

    def test_job_variant_identity_reaches_fingerprint(self, app):
        session = Session()
        plain = session.cluster_job(
            Job(program=app.source, nranks=app.nranks)
        )
        treated = session.cluster_job(
            Job(program=app.source, nranks=app.nranks, variant="original")
        )
        assert plain.variant is None
        assert treated.variant is not None
        # identical program text, different provenance, different key
        assert job_fingerprint(plain) != job_fingerprint(treated)

    def test_job_options_without_variant_rejected(self, app):
        with pytest.raises(ReproError, match="Job.variant"):
            Session().cluster_job(
                Job(
                    program=app.source,
                    nranks=app.nranks,
                    options=TransformOptions(tile_size=2),
                )
            )


class TestPrepareAndCompare:
    def test_prepare_surfaces_pass_chain(self, app):
        prepared = Session().prepare(app)
        assert [p.name for p in prepared.transform.passes] == [
            "interchange",
            "tile",
            "commgen",
            "indirect-elim",
        ]
        assert prepared.transform.snapshots  # intermediates retained
        assert "pipeline prepush" in prepared.transform.describe_passes()

    def test_prepare_inherits_context_variant(self, indirect_app):
        session = Session(variant="tile-only")
        prepared = session.prepare(indirect_app)
        # tile-only cannot transform the indirect kernel; prepare must
        # surface that as an unchanged program, not raise
        assert not prepared.transform.transformed

    def test_request_variant_overrides_context(self, app):
        session = Session(variant="tile-only")
        prepared = session.prepare(
            CompareRequest(app=app, variant="prepush")
        )
        assert prepared.transform.pipeline == "prepush"

    def test_options_and_legacy_kwargs_conflict(self, app):
        with pytest.raises(ReproError, match="drop the legacy"):
            Session().prepare(
                CompareRequest(
                    app=app,
                    tile_size=4,
                    options=TransformOptions(tile_size=2),
                )
            )

    def test_compare_with_options_object(self, app):
        pair = Session().compare(
            CompareRequest(app=app, options=TransformOptions(tile_size=2))
        )
        assert pair.equivalent
        assert pair.transform.sites[0].tile_size == 2


class TestUnchangedPolicy:
    """Full-rewrite pipelines must transform; partial ones may not."""

    SITELESS = """
program plain
  integer :: x

  x = 1
end program plain
"""

    def test_full_custom_pipeline_raises_on_siteless_program(self):
        from repro.harness.runner import PreparedApp
        from repro.transform.pipeline import (
            CommGenPass,
            IndirectElimPass,
            Pipeline,
            TilePass,
        )
        from repro.apps.base import AppSpec

        app = AppSpec(
            name="plain",
            description="no sites",
            source=self.SITELESS,
            nranks=2,
            kind="direct",
            scheme="A",
            check_arrays=(),
        )
        full = Pipeline(
            (TilePass(), CommGenPass(), IndirectElimPass()),
            name="full-custom",
        )
        with pytest.raises(ReproError, match="not transformed"):
            PreparedApp(app, variant=full, verify=False)
        # the same pipeline marked partial measures the program as-is
        partial = Pipeline(
            (TilePass(), CommGenPass(), IndirectElimPass()),
            name="partial-custom",
            partial=True,
        )
        prepared = PreparedApp(app, variant=partial, verify=False)
        assert not prepared.transform.transformed

    def test_job_variant_raises_when_nothing_transforms(self):
        with pytest.raises(ReproError, match="transformed nothing"):
            Session().measure(
                Job(program=self.SITELESS, nranks=2, variant="prepush")
            )

    def test_job_partial_variant_with_rejection_raises(self, app):
        with pytest.raises(ReproError, match="transformed nothing"):
            Session().measure(
                Job(
                    program=app.source,
                    nranks=app.nranks,
                    variant="tile-only",
                    options=TransformOptions(tile_size=1000),
                )
            )

    def test_job_partial_variant_unchanged_is_ok(self, indirect_app):
        m = Session().measure(
            Job(
                program=indirect_app.source,
                nranks=indirect_app.nranks,
                variant="tile-only",
            )
        )
        assert m.time > 0


class TestVerifyVariant:
    def test_verify_with_explicit_variant(self, app):
        from repro.api import VerifyRequest

        result = Session().verify(
            VerifyRequest(
                program=app.source,
                nranks=app.nranks,
                variant="no-interchange",
            )
        )
        assert result.equivalent
        assert result.transform.pipeline == "no-interchange"

    def test_verify_untransforming_variant_raises(self, indirect_app):
        from repro.api import VerifyRequest
        from repro.errors import VerificationError

        with pytest.raises(VerificationError, match="no transformable"):
            Session().verify(
                VerifyRequest(
                    program=indirect_app.source,
                    nranks=indirect_app.nranks,
                    variant="tile-only",
                )
            )
