"""The legacy kwargs entry points must warn and agree with the Session
path — they are shims, not parallel implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Job, Session
from repro.apps import build_app
from repro.harness.runner import measure, run_pair
from repro.harness.sweep import SweepSpec, run_sweep
from repro.interp.runner import run_cluster
from tests.programs import direct_2d

NRANKS = 4


@pytest.fixture(scope="module")
def session() -> Session:
    return Session(network="gmnet")


def test_run_cluster_warns_and_matches_session(session):
    src = direct_2d()
    with pytest.warns(DeprecationWarning, match="run_cluster"):
        legacy = run_cluster(src, NRANKS, "gmnet")
    new = session.run(Job(program=src, nranks=NRANKS))
    assert legacy.time == new.time
    assert legacy.outputs == new.outputs
    for rank in range(NRANKS):
        for name in legacy.arrays[rank]:
            np.testing.assert_array_equal(
                legacy.arrays[rank][name], new.arrays[rank][name]
            )


def test_measure_warns_and_matches_session(session):
    src = direct_2d()
    with pytest.warns(DeprecationWarning, match="measure"):
        legacy = measure(src, NRANKS, "gmnet", label="x")
    new = session.measure(Job(program=src, nranks=NRANKS, label="x"))
    assert legacy.to_dict() == new.to_dict()


def test_run_pair_warns_and_matches_session(session):
    from repro import CompareRequest

    app = build_app("fft", nranks=NRANKS, n=32, steps=1, stages=2)
    with pytest.warns(DeprecationWarning, match="run_pair"):
        legacy = run_pair(app, "gmnet", tile_size=4, verify=False)
    new = session.compare(
        CompareRequest(app=app, tile_size=4, verify=False)
    )
    assert legacy.original.to_dict() == new.original.to_dict()
    assert legacy.prepush.to_dict() == new.prepush.to_dict()
    assert legacy.speedup == new.speedup


def test_run_sweep_warns_and_matches_session(tmp_path):
    spec = SweepSpec(
        name="shim-sweep",
        app="fft",
        app_kwargs={"n": 32, "steps": 1, "stages": 2},
        nranks=(NRANKS,),
        networks=("gmnet",),
    )
    with pytest.warns(DeprecationWarning, match="run_sweep"):
        legacy = run_sweep(spec, cache=tmp_path / "a")
    new = Session(cache_dir=tmp_path / "b").sweep(spec)
    assert [r.measurement.to_dict() for r in legacy.runs] == [
        r.measurement.to_dict() for r in new.runs
    ]
    assert [r.fingerprint for r in legacy.runs] == [
        r.fingerprint for r in new.runs
    ]
