"""End-to-end tests of the sweep service (DESIGN.md §11).

Each test hosts a real :class:`~repro.serve.server.SweepServer` on a
background event loop (:class:`~repro.serve.server.ThreadedServer`) and
talks to it over real sockets — the protocol, coalescing, backpressure,
and drain semantics are exercised exactly as ``compuniformer serve``
ships them.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
import time

import pytest

from repro.api import Session
from repro.errors import OverloadError, RequestError, ServeError
from repro.harness.runner import measurement_from_run
from repro.harness.sweep import SweepCache, SweepSpec, expand_spec
from repro.interp.runner import execute_job, job_fingerprint
from repro.serve import ServeClient, ThreadedServer
from repro.serve.protocol import PROTOCOL_VERSION, encode_message


def tiny_spec(name: str = "serve-tiny", *, verify: bool = False, **over):
    axes = dict(
        app="fft",
        app_kwargs={"n": 8, "steps": 1, "stages": 2},
        nranks=(4,),
        tile_sizes=(4,),
        networks=("gmnet",),
        verify=verify,
    )
    axes.update(over)
    return SweepSpec(name=name, **axes)


@pytest.fixture
def served(tmp_path):
    """A live server sharing ``tmp_path/cache`` with the test."""
    cache_dir = tmp_path / "cache"
    with ThreadedServer(cache_dir=cache_dir) as ts:
        yield ts, cache_dir


def _raw_exchange(port: int, payload: bytes) -> dict:
    """Ship raw bytes, read one event line (protocol-level tests)."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(payload)
        return json.loads(sock.makefile("rb").readline())


class TestProtocol:
    def test_malformed_json_keeps_connection_usable(self, served):
        ts, _ = served
        with socket.create_connection(
            ("127.0.0.1", ts.port), timeout=30
        ) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"definitely not json\n")
            ev = json.loads(reader.readline())
            assert ev["event"] == "error"
            assert ev["error"] == "RequestError"
            # the same connection still serves valid requests
            sock.sendall(
                encode_message(
                    {"type": "status", "id": "s1", "protocol": PROTOCOL_VERSION}
                )
            )
            ev = json.loads(reader.readline())
            assert ev["event"] == "result" and ev["id"] == "s1"
            assert ev["result"]["protocol"] == PROTOCOL_VERSION

    def test_unknown_request_type(self, served):
        ts, _ = served
        ev = _raw_exchange(
            ts.port,
            encode_message(
                {"type": "frobnicate", "id": "x", "protocol": PROTOCOL_VERSION}
            ),
        )
        assert ev["event"] == "error" and ev["error"] == "RequestError"
        assert "frobnicate" in ev["message"]

    def test_protocol_version_mismatch(self, served):
        ts, _ = served
        ev = _raw_exchange(
            ts.port,
            encode_message({"type": "status", "id": "x", "protocol": 99}),
        )
        assert ev["event"] == "error" and ev["error"] == "RequestError"

    def test_invalid_spec_is_a_request_error(self, served):
        ts, _ = served
        with ServeClient(port=ts.port) as client:
            with pytest.raises(RequestError, match="name"):
                client.sweep({"app": "fft"})  # missing 'name'

    def test_unknown_app_is_a_request_error(self, served):
        ts, _ = served
        with ServeClient(port=ts.port) as client:
            with pytest.raises(ServeError):
                client.sweep(
                    tiny_spec().to_dict() | {"app": "no-such-workload"}
                )


class TestSweep:
    def test_cold_then_warm(self, served):
        ts, _ = served
        spec = tiny_spec()
        with ServeClient(port=ts.port) as client:
            cold = client.sweep(spec)
            warm = client.sweep(spec)
        assert cold["stats"]["simulated"] == 2
        assert cold["stats"]["points"] == 2
        assert warm["stats"]["simulated"] == 0
        assert warm["stats"]["cache_hits"] == 2
        # warm results are bit-identical (floats round-trip json)
        assert [r["measurement"] for r in warm["runs"]] == [
            r["measurement"] for r in cold["runs"]
        ]
        assert all(not r["cached"] for r in cold["runs"])
        assert all(r["cached"] for r in warm["runs"])

    def test_matches_direct_session_sweep(self, served, tmp_path):
        """The service is a transport, not a different engine: its runs
        equal a direct Session.sweep of the same spec bit-for-bit."""
        ts, cache_dir = served
        spec = tiny_spec(verify=True)
        with ServeClient(port=ts.port) as client:
            client.sweep(spec)  # cold: fills the shared cache
            warm = client.sweep(spec)
        with Session(cache_dir=cache_dir) as session:
            direct = session.sweep(spec)
        assert direct.stats.simulated == 0  # shared cache: all warm
        direct_json = json.loads(json.dumps(direct.to_json()))
        assert direct_json["runs"] == warm["runs"]

    def test_point_events_stream_in_order(self, served):
        ts, _ = served
        events = []
        with ServeClient(port=ts.port) as client:
            client.sweep(tiny_spec(), on_event=events.append)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted"
        points = [e for e in events if e["event"] == "point"]
        assert len(points) == 2
        assert [p["seq"] for p in points] == [1, 2]
        assert all(p["total"] == 2 for p in points)
        assert {p["source"] for p in points} == {"simulated"}

    def test_multi_spec_request(self, served):
        ts, _ = served
        specs = [tiny_spec("a"), tiny_spec("b", networks=("hostnet",))]
        with ServeClient(port=ts.port) as client:
            result = client.sweep(specs)
        assert [s["name"] for s in result["specs"]] == ["a", "b"]
        assert result["stats"]["points"] == 4
        assert {r["axes"]["spec"] for r in result["runs"]} == {"a", "b"}


class TestDedup:
    def test_concurrent_identical_submissions_simulate_once(self, served):
        """The acceptance criterion: N clients submitting the same sweep
        concurrently trigger exactly one simulation per unique point."""
        ts, _ = served
        spec = tiny_spec()
        results = [None] * 4

        def worker(i):
            with ServeClient(port=ts.port) as client:
                results[i] = client.sweep(spec)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        with ServeClient(port=ts.port) as client:
            stats = client.status()["stats"]
        assert stats["points_requested"] == 8
        assert stats["simulations"] == 2  # one per unique fingerprint
        assert stats["dedup_ratio"] == pytest.approx(0.25)
        assert (
            stats["coalesced"] + stats["cache_hits"] + stats["peer_served"]
            == 6
        )
        # every client saw the same measurements
        tables = [
            [r["measurement"] for r in res["runs"]] for res in results
        ]
        assert all(t == tables[0] for t in tables)

    def test_coalescing_subscribes_to_inflight_simulation(
        self, served, monkeypatch
    ):
        """With simulations forcibly slowed, a second identical request
        arrives mid-flight and must subscribe, not re-simulate."""
        ts, _ = served
        import repro.serve.server as server_mod

        def slow_execute(job):
            time.sleep(0.4)
            return execute_job(job)

        monkeypatch.setattr(server_mod, "execute_job", slow_execute)
        spec = tiny_spec()
        first = {}

        def leader():
            with ServeClient(port=ts.port) as client:
                first["result"] = client.sweep(spec)

        t = threading.Thread(target=leader)
        t.start()
        time.sleep(0.1)  # leader is now simulating both points
        with ServeClient(port=ts.port) as client:
            second = client.sweep(spec)
        t.join()

        with ServeClient(port=ts.port) as client:
            stats = client.status()["stats"]
        assert stats["simulations"] == 2
        assert stats["coalesced"] >= 1
        assert [r["measurement"] for r in second["runs"]] == [
            r["measurement"] for r in first["result"]["runs"]
        ]

    def test_peer_claim_is_awaited_not_duplicated(self, served):
        """A fingerprint claimed by another *process* (here: the test,
        via the shared cache) must be waited for, not re-simulated."""
        ts, cache_dir = served
        spec = tiny_spec()
        points, _ = expand_spec(spec)
        cache = SweepCache(cache_dir)
        fingerprints = [job_fingerprint(p.job()) for p in points]
        for fp in fingerprints:
            assert cache.claim(fp)

        result_box = {}

        def submitter():
            with ServeClient(port=ts.port) as client:
                result_box["result"] = client.sweep(spec)

        t = threading.Thread(target=submitter)
        t.start()
        time.sleep(0.3)
        assert "result" not in result_box  # blocked on our claims
        # the "peer" (this test) finishes its simulations and publishes
        for point, fp in zip(points, fingerprints):
            run = execute_job(dataclasses.replace(point.job(), label=""))
            m = measurement_from_run(
                run, network=point.network, collective=point.collective
            )
            cache.put(
                fp,
                {
                    "kind": "measurement",
                    "inputs": dict(point.axes),
                    "measurement": m.to_dict(),
                },
            )
        t.join(timeout=30)
        assert not t.is_alive()

        stats = result_box["result"]["stats"]
        assert stats["simulated"] == 0
        assert stats["peer_served"] == 2
        assert all(r["cached"] for r in result_box["result"]["runs"])


class TestBackpressureAndLifecycle:
    def test_overload_rejects_before_simulating(self, served):
        ts, _ = served
        ts.server.max_pending_points = 1
        try:
            with ServeClient(port=ts.port) as client:
                with pytest.raises(OverloadError, match="budget"):
                    client.sweep(tiny_spec())  # 2 points > budget of 1
                status = client.status()
            assert status["stats"]["simulations"] == 0
            assert status["stats"]["rejected"] == 1
        finally:
            ts.server.max_pending_points = 4096

    def test_verify_verb(self, served, fig2_source):
        ts, _ = served
        with ServeClient(port=ts.port) as client:
            out = client.verify(fig2_source, nranks=8)
        assert out["equivalent"] is True
        assert out["compared_arrays"]
        assert "do" in out["transformed"]

    def test_compare_verb(self, served):
        ts, _ = served
        with ServeClient(port=ts.port) as client:
            out = client.compare("fft", app_kwargs={"n": 8}, nranks=4)
        assert out["app"] == "fft"
        assert out["equivalent"] is True
        assert out["original"]["time"] > 0
        assert out["transformed"]["time"] > 0

    def test_status_verb(self, served):
        ts, _ = served
        with ServeClient(port=ts.port) as client:
            status = client.status()
        assert status["protocol"] == PROTOCOL_VERSION
        assert status["port"] == ts.port
        assert status["draining"] is False
        assert status["pending_points"] == 0
        assert "dedup_ratio" in status["stats"]
        assert status["cache"] is not None

    def test_shutdown_drains_and_stops(self, tmp_path):
        ts = ThreadedServer(cache_dir=tmp_path / "cache").start()
        port = ts.port
        with ServeClient(port=port) as client:
            client.sweep(tiny_spec())
            assert client.shutdown(drain=True) == {"stopping": True}
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", port), 1).close()
                time.sleep(0.05)
            except OSError:
                break
        else:
            pytest.fail("server still accepting after shutdown")
        ts.stop()  # idempotent

    def test_draining_server_rejects_new_requests(self, served, monkeypatch):
        ts, _ = served
        import repro.serve.server as server_mod

        release = threading.Event()

        def gated_execute(job):
            release.wait(timeout=30)
            return execute_job(job)

        monkeypatch.setattr(server_mod, "execute_job", gated_execute)
        done = {}

        def submitter():
            with ServeClient(port=ts.port) as client:
                done["result"] = client.sweep(tiny_spec())

        t = threading.Thread(target=submitter)
        t.start()
        time.sleep(0.15)
        with ServeClient(port=ts.port) as client:
            client.shutdown(drain=True)
        time.sleep(0.1)
        # new connections are refused or new requests rejected mid-drain
        try:
            with ServeClient(port=ts.port) as client:
                with pytest.raises(ServeError):
                    client.sweep(tiny_spec("other"))
        except (ServeError, OSError):
            pass  # listener already closed: equally correct
        release.set()
        t.join(timeout=30)
        # the in-flight request completed despite the drain
        assert done["result"]["stats"]["points"] == 2
