"""CLI coverage for the service verbs: ``submit`` and ``cache``.

``compuniformer serve`` itself is signal-driven and runs forever, so
these tests host the server in-process (:class:`ThreadedServer` — the
same :class:`SweepServer` the verb starts) and drive the *client* verbs
through ``main()`` exactly as a shell would.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.harness.sweep import SweepCache, SweepSpec
from repro.serve import ThreadedServer


@pytest.fixture
def served(tmp_path):
    with ThreadedServer(cache_dir=tmp_path / "cache") as ts:
        yield ts


def _submit_args(ts, *extra):
    return [
        "submit",
        "--port",
        str(ts.port),
        "--app",
        "fft",
        "--n",
        "8",
        "--steps",
        "1",
        "--stages",
        "2",
        "--nranks",
        "4",
        "-K",
        "4",
        "--no-verify",
        *extra,
    ]


class TestSubmit:
    def test_submit_cold_then_warm(self, served, tmp_path, capsys):
        out = tmp_path / "result.json"
        assert main(_submit_args(served, "-o", str(out))) == 0
        cold = capsys.readouterr()
        assert "cli-fft" in cold.out
        assert "2 simulated" in cold.err
        artifact = json.loads(out.read_text())
        assert artifact["stats"]["simulated"] == 2
        assert len(artifact["runs"]) == 2

        assert main(_submit_args(served, "-q")) == 0
        warm = capsys.readouterr()
        assert "0 simulated, 2 cache hits" in warm.err
        assert "[1/2]" not in warm.err  # -q silences progress
        # the table rows (times, counters) reproduce bit-identically
        assert [
            row for row in warm.out.splitlines() if "| yes" in row
        ] and warm.out.replace("| yes", "| no ") == cold.out.replace(
            "| yes", "| no "
        )

    def test_submit_streams_progress(self, served, capsys):
        assert main(_submit_args(served)) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err and "[2/2]" in err
        assert "simulated" in err

    def test_submit_spec_file(self, served, tmp_path, capsys):
        spec = SweepSpec(
            name="filed",
            app="fft",
            app_kwargs={"n": 8, "steps": 1, "stages": 2},
            nranks=(4,),
            tile_sizes=(4,),
            networks=("gmnet",),
            verify=False,
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        rc = main(
            ["submit", "--port", str(served.port), "--spec", str(path), "-q"]
        )
        assert rc == 0
        assert "filed" in capsys.readouterr().out

    def test_submit_status(self, served, capsys):
        rc = main(["submit", "--port", str(served.port), "--status"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["port"] == served.port
        assert status["draining"] is False

    def test_submit_requires_a_sweep_source(self, served, capsys):
        rc = main(["submit", "--port", str(served.port)])
        assert rc == 1
        assert "--spec FILE or --app NAME" in capsys.readouterr().err

    def test_submit_no_server(self, capsys):
        rc = main(["submit", "--port", "1", "--status"])
        assert rc == 1
        assert "cannot connect" in capsys.readouterr().err

    def test_submit_shutdown(self, tmp_path, capsys):
        ts = ThreadedServer(cache_dir=tmp_path / "cache").start()
        rc = main(["submit", "--port", str(ts.port), "--shutdown"])
        assert rc == 0
        assert "draining" in capsys.readouterr().err
        ts.stop()
        assert main(["submit", "--port", str(ts.port), "--status"]) == 1


class TestCacheVerb:
    def test_info_empty(self, tmp_path, capsys):
        rc = main(
            ["cache", "info", "--cache-dir", str(tmp_path / "fresh")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "entries:          0" in out
        assert "current version:" in out

    def test_info_and_prune_after_sweep(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert (
            main(
                [
                    "sweep",
                    "--app",
                    "fft",
                    "--n",
                    "8",
                    "--nranks",
                    "4",
                    "--no-verify",
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()

        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries:          2" in out
        assert "kind measurement" in out
        assert "stale entries:    0" in out

        # age one entry onto a dead engine version, then prune
        cache = SweepCache(cache_dir)
        path, payload = next(iter(cache.entries()))
        payload["engine"] = "0.0-dead"
        path.write_text(json.dumps(payload))

        rc = main(
            ["cache", "prune", "--cache-dir", str(cache_dir), "--dry-run"]
        )
        assert rc == 0
        assert "would remove 1 stale entries" in capsys.readouterr().out
        assert path.exists()

        assert main(["cache", "prune", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1 stale entries" in capsys.readouterr().out
        assert not path.exists()
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        assert "entries:          1" in capsys.readouterr().out
