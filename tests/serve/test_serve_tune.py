"""The serve ``tune`` verb end-to-end (DESIGN.md §11/§12).

A real :class:`ThreadedServer` runs the search server-side: every
candidate evaluation flows through the same three-layer dedup as sweep
points, per-evaluation ``step`` events stream to the client, and a
warm re-run of the same seeded search answers entirely from cache.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.errors import OverloadError, RequestError
from repro.serve import ServeClient, ThreadedServer
from repro.serve.protocol import PROTOCOL_VERSION, encode_message
from repro.tune import Axis, SearchSpace


def _raw_tune_event(port: int, body: dict) -> dict:
    """Ship one raw tune request, return the first server event."""
    payload = encode_message(
        {"type": "tune", "id": "x", "protocol": PROTOCOL_VERSION, **body}
    )
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(payload)
        return json.loads(sock.makefile("rb").readline())

NRANKS = 4


def tiny_space(**over) -> SearchSpace:
    kwargs = dict(
        app="fft",
        app_kwargs={"n": 8, "steps": 1, "stages": 2},
        axes=(
            Axis("variant", ("original", "prepush")),
            Axis("tile_size", ("auto", 4)),
            Axis("nranks", (NRANKS,), kind="integer"),
        ),
    )
    kwargs.update(over)
    return SearchSpace(**kwargs)


@pytest.fixture
def served(tmp_path):
    with ThreadedServer(cache_dir=tmp_path / "cache") as ts:
        yield ts


class TestTuneVerb:
    def test_cold_run_streams_steps_then_result(self, served):
        events = []
        with ServeClient(port=served.port) as client:
            result = client.tune(
                tiny_space(),
                strategy="grid",
                budget=8,
                seed=7,
                on_event=events.append,
            )
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted"
        assert events[0]["space_fingerprint"] == tiny_space().fingerprint()
        steps = [e for e in events if e["event"] == "step"]
        assert len(steps) == result["evaluations"]
        assert [s["step"] for s in steps] == list(range(len(steps)))
        assert result["simulations"] > 0
        assert result["strategy"] == "grid"
        assert result["seed"] == 7
        # the full trajectory rides along with the result payload
        traj = result["trajectory"]
        assert traj["header"]["kind"] == "tune-trajectory"
        assert len(traj["steps"]) == result["evaluations"]

    def test_warm_rerun_is_simulation_free_and_search_identical(self, served):
        space = tiny_space()
        with ServeClient(port=served.port) as client:
            cold = client.tune(space, strategy="hill-climb", budget=6, seed=3)
            warm = client.tune(space, strategy="hill-climb", budget=6, seed=3)
        assert cold["simulations"] > 0
        assert warm["simulations"] == 0
        assert warm["cache_hits"] == warm["evaluations"]
        assert warm["search_fingerprint"] == cold["search_fingerprint"]
        assert warm["best_candidate"] == cold["best_candidate"]
        assert warm["best_objective"] == cold["best_objective"]

    def test_accepts_raw_space_dict(self, served):
        with ServeClient(port=served.port) as client:
            result = client.tune(
                tiny_space().to_dict(), strategy="grid", budget=2
            )
        assert result["evaluations"] == 2

    def test_stats_count_tunes(self, served):
        with ServeClient(port=served.port) as client:
            client.tune(tiny_space(), strategy="grid", budget=2)
            status = client.status()
        assert status["stats"]["tunes"] == 1


class TestTuneValidation:
    def test_malformed_space_is_a_request_error(self, served):
        with ServeClient(port=served.port) as client:
            with pytest.raises(RequestError, match="search space"):
                client.tune({"app": "fft"})  # missing 'axes'

    def test_space_must_be_an_object(self, served):
        # the client refuses locally; the server enforces it for raw
        # protocol speakers too (exercised in
        # test_unknown_body_key_is_a_request_error's idiom below)
        with ServeClient(port=served.port) as client:
            with pytest.raises(TypeError, match="SearchSpace"):
                client.tune("fft")
        ev = _raw_tune_event(
            served.port, {"space": "fft", "budget": 2}
        )
        assert ev["event"] == "error" and ev["error"] == "RequestError"
        assert "space" in ev["message"]

    def test_unknown_strategy_is_a_request_error(self, served):
        with ServeClient(port=served.port) as client:
            with pytest.raises(RequestError, match="hill-climb"):
                client.tune(tiny_space(), strategy="simulated-annealing")

    def test_bad_budget_is_a_request_error(self, served):
        with ServeClient(port=served.port) as client:
            with pytest.raises(RequestError, match="budget"):
                client.tune(tiny_space(), budget=0)
            with pytest.raises(RequestError, match="budget"):
                client.tune(tiny_space(), budget=True)

    def test_bad_objective_is_a_request_error(self, served):
        with ServeClient(port=served.port) as client:
            with pytest.raises(RequestError, match="objective"):
                client.tune(tiny_space(), objective="throughput")

    def test_bad_seed_is_a_request_error(self, served):
        with ServeClient(port=served.port) as client:
            with pytest.raises(RequestError, match="seed"):
                client.tune(tiny_space(), seed="lucky")

    def test_unknown_body_key_is_a_request_error(self, served):
        ev = _raw_tune_event(
            served.port,
            {"space": tiny_space().to_dict(), "iterations": 5},
        )
        assert ev["event"] == "error" and ev["error"] == "RequestError"
        assert "iterations" in ev["message"]


class TestTuneAdmission:
    def test_budget_beyond_pending_points_is_overload(self, tmp_path):
        with ThreadedServer(
            cache_dir=tmp_path / "cache", max_pending_points=4
        ) as ts:
            with ServeClient(port=ts.port) as client:
                with pytest.raises(OverloadError, match="admission"):
                    client.tune(tiny_space(), budget=100)
                # rejection is accounted and the server stays usable
                status = client.status()
                assert status["stats"]["rejected"] >= 1
                result = client.tune(tiny_space(), strategy="grid", budget=2)
                assert result["evaluations"] == 2
