"""Unparser tests, including the parse∘unparse round-trip invariant
(property-based over randomly generated expressions and statements)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse, parse_expr, parse_stmt, unparse
from repro.lang.unparser import unparse_expr


class TestExpressionPrinting:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("a + b * c", "a + b * c"),
            ("(a + b) * c", "(a + b) * c"),
            ("a - (b - c)", "a - (b - c)"),
            ("a - b - c", "a - b - c"),
            ("-a ** 2", "-a**2"),
            ("(-a) ** 2", "(-a)**2"),
            ("a ** b ** c", "a**b**c"),
            ("(a ** b) ** c", "(a**b)**c"),
            (".not. (a .and. b)", ".not. (a .and. b)"),
            ("mod(i + 1, 4)", "mod(i + 1, 4)"),
            ("a(1:k, :)", "a(1:k, :)"),
            ("x / y / z", "x / y / z"),
            ("x / (y / z)", "x / (y / z)"),
        ],
    )
    def test_canonical_forms(self, src, expected):
        assert unparse_expr(parse_expr(src)) == expected

    def test_string_quotes_escaped(self):
        e = parse_expr("'it''s'")
        assert unparse_expr(e) == "'it''s'"

    def test_real_literal(self):
        assert unparse_expr(parse_expr("2.5")) == "2.5"

    def test_bool_literals(self):
        assert unparse_expr(parse_expr(".true.")) == ".true."


class TestStatementPrinting:
    def test_do_loop_layout(self):
        s = parse_stmt("do i = 1, n\na(i) = 0\nenddo")
        assert unparse(s) == "do i = 1, n\n  a(i) = 0\nenddo\n"

    def test_if_chain_layout(self):
        s = parse_stmt("if (a > 1) then\nx = 1\nelse\nx = 2\nendif")
        out = unparse(s)
        assert "if (a > 1) then" in out
        assert "else" in out
        assert out.endswith("endif\n")

    def test_decl_layout(self):
        t = parse("program p\ninteger, parameter :: n = 8\nend")
        assert "integer, parameter :: n = 8" in unparse(t)

    def test_array_decl_omits_unit_lower_bound(self):
        t = parse("program p\ninteger :: a(1:10), b(0:9)\nend")
        out = unparse(t)
        assert "a(10)" in out
        assert "b(0:9)" in out


# ---------------------------------------------------------------------------
# Round-trip property: parse(unparse(tree)) == tree
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "ix", "iy", "n"])


@st.composite
def exprs(draw, depth=3):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(0, 99)))
        return draw(_names)
    choice = draw(st.integers(0, 6))
    if choice == 0:
        return str(draw(st.integers(0, 99)))
    if choice == 1:
        return draw(_names)
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "/", "**"]))
        left = draw(exprs(depth=depth - 1))
        right = draw(exprs(depth=depth - 1))
        return f"({left} {op} {right})"
    if choice == 3:
        inner = draw(exprs(depth=depth - 1))
        return f"(-({inner}))"
    if choice == 4:
        name = draw(_names)
        sub = draw(exprs(depth=depth - 1))
        return f"{name}({sub})"
    if choice == 5:
        a = draw(exprs(depth=depth - 1))
        b = draw(exprs(depth=depth - 1))
        return f"mod({a}, {b})"
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "/="]))
    left = draw(exprs(depth=depth - 1))
    right = draw(exprs(depth=depth - 1))
    return f"({left} {op} {right})"


class TestRoundTrip:
    @given(exprs())
    @settings(max_examples=200, deadline=None)
    def test_expression_round_trip(self, src):
        tree = parse_expr(src)
        assert parse_expr(unparse_expr(tree)) == tree

    @given(exprs())
    @settings(max_examples=100, deadline=None)
    def test_unparse_is_fixed_point(self, src):
        once = unparse_expr(parse_expr(src))
        twice = unparse_expr(parse_expr(once))
        assert once == twice

    def test_program_round_trip(self):
        src = """
program main
  implicit none
  integer, parameter :: nx = 16, np = 4
  integer :: as(nx), ar(0:nx - 1), b(nx, 2 * np)
  real :: t
  integer :: ix, iy, ierr
  external helper

  t = 0.5
  do iy = 1, nx
    do ix = 1, nx, 1
      as(ix) = ix * iy + mod(ix, 3)
    enddo
    if (iy > 2 .and. as(1) /= 0) then
      call helper(as, t)
    elseif (iy == 1) then
      as(1) = -1
    else
      continue
    endif
    call mpi_alltoall(as, nx / np, 1, ar, nx / np, 1, 0, ierr)
  enddo
  do while (t < 1.0)
    t = t + 0.25
  enddo
  print *, as(1), 'done'
end program main

subroutine helper(v, s)
  integer :: v(16)
  real :: s
  v(1) = int(s)
  return
end subroutine helper
"""
        tree = parse(src)
        assert parse(unparse(tree)) == tree

    def test_round_trip_idempotent_on_program(self):
        src = "program p\ninteger :: a(4)\na(1) = 2\nend"
        once = unparse(parse(src))
        assert unparse(parse(once)) == once
