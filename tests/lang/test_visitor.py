"""Traversal/rewriting utility tests."""

from repro.lang import (
    Assign,
    CallStmt,
    DoLoop,
    IntLit,
    VarRef,
    clone,
    contains_name,
    find_all,
    parse,
    parse_expr,
    parse_stmt,
    substitute,
)
from repro.lang.ast_nodes import ArrayRef, BinOp
from repro.lang.visitor import (
    ExprTransformer,
    find_enclosing_body,
    index_of,
    replace_var,
    rewrite_body,
    statements,
)


class TestWalk:
    def test_find_all_array_refs(self):
        s = parse_stmt("a(i) = b(j) + c(k)")
        refs = find_all(s, ArrayRef)
        assert sorted(r.name for r in refs) == ["a", "b", "c"]

    def test_walk_enters_if_branches(self):
        s = parse_stmt("if (x > 0) then\na(1) = 1\nelse\nb(2) = 2\nendif")
        refs = find_all(s, ArrayRef)
        assert sorted(r.name for r in refs) == ["a", "b"]

    def test_contains_name(self):
        s = parse_stmt("do i = 1, n\n  a(i) = b + 1\nenddo")
        assert contains_name(s, "b")
        assert contains_name(s, "a")
        assert not contains_name(s, "zz")


class TestCloneAndSubstitute:
    def test_clone_is_deep(self):
        s = parse_stmt("a(i) = 1")
        c = clone(s)
        c.lhs.name = "zz"
        assert s.lhs.name == "a"

    def test_substitute_var(self):
        e = parse_expr("i + j * i")
        out = substitute(e, {"i": parse_expr("k + 1")})
        assert not contains_name(out, "i")
        assert contains_name(out, "k")

    def test_substitute_does_not_mutate_original(self):
        e = parse_expr("i + 1")
        substitute(e, {"i": IntLit(value=5)})
        assert contains_name(e, "i")

    def test_substitute_replacement_not_shared(self):
        rep = parse_expr("k + 1")
        e = parse_expr("i + i")
        out = substitute(e, {"i": rep})
        occurrences = [
            n for n in out.walk() if isinstance(n, BinOp) and n.op == "+"
        ]
        # top + two copies
        assert len(occurrences) == 3
        assert occurrences[1] is not occurrences[2]

    def test_replace_var(self):
        e = parse_expr("a(i) + i")
        out = replace_var(e, "i", "t")
        assert contains_name(out, "t")
        assert not contains_name(out, "i")


class TestExprTransformer:
    def test_bottom_up_rewrite(self):
        class Inc(ExprTransformer):
            def visit_IntLit(self, node):
                return IntLit(value=node.value + 1)

        e = clone(parse_expr("1 + 2 * 3"))
        out = Inc().visit(e)
        vals = sorted(n.value for n in out.walk() if isinstance(n, IntLit))
        assert vals == [2, 3, 4]


class TestRewriteBody:
    def test_splice_expands(self):
        body = [parse_stmt("x = 1"), parse_stmt("call c()")]

        def fn(s):
            if isinstance(s, CallStmt):
                return [parse_stmt("y = 2"), parse_stmt("z = 3")]
            return None

        out = rewrite_body(body, fn)
        assert len(out) == 3

    def test_rewrite_recurses_into_loops(self):
        loop = parse_stmt("do i = 1, 3\n  call c()\nenddo")

        def fn(s):
            if isinstance(s, CallStmt):
                return parse_stmt("x = 9")
            return None

        out = rewrite_body([loop], fn)
        assert isinstance(out[0].body[0], Assign)

    def test_remove_via_empty_list(self):
        body = [parse_stmt("x = 1"), parse_stmt("y = 2")]
        out = rewrite_body(body, lambda s: [] if isinstance(s, Assign) and s.lhs.name == "x" else None)
        assert len(out) == 1


class TestBodySearch:
    def test_statements_preorder(self):
        loop = parse_stmt("do i = 1, 2\n  a(i) = 0\n  do j = 1, 2\n    b(j) = 1\n  enddo\nenddo")
        kinds = [type(s).__name__ for s in statements([loop])]
        assert kinds == ["DoLoop", "Assign", "DoLoop", "Assign"]

    def test_find_enclosing_body(self):
        tree = parse(
            "program p\ninteger :: a(4)\ninteger :: i\n"
            "do i = 1, 4\n  a(i) = i\nenddo\nend"
        )
        loop = tree.main.body[0]
        inner = loop.body[0]
        assert find_enclosing_body(tree.main.body, inner) is loop.body
        assert find_enclosing_body(tree.main.body, loop) is tree.main.body

    def test_index_of_identity(self):
        a = parse_stmt("x = 1")
        b = clone(a)
        body = [a]
        assert index_of(body, a) == 0
        assert index_of(body, b) == -1  # structural equal, different identity
