"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(src):
    return [t.kind for t in tokenize(src) if t.kind is not TokenKind.NEWLINE][:-1]


def texts(src):
    return [t.text for t in tokenize(src) if t.kind is not TokenKind.NEWLINE][:-1]


class TestBasicTokens:
    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.INT
        assert toks[0].text == "42"

    def test_real_literal(self):
        toks = tokenize("3.5")
        assert toks[0].kind is TokenKind.REAL

    def test_real_with_exponent(self):
        assert tokenize("1e-3")[0].kind is TokenKind.REAL
        assert tokenize("2.5e10")[0].kind is TokenKind.REAL

    def test_d_exponent_normalized(self):
        tok = tokenize("2.5d0")[0]
        assert tok.kind is TokenKind.REAL
        assert "e" in tok.text

    def test_identifier_case_folded(self):
        tok = tokenize("MyVar")[0]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "myvar"

    def test_keyword_case_insensitive(self):
        tok = tokenize("PROGRAM")[0]
        assert tok.kind is TokenKind.KEYWORD
        assert tok.text == "program"

    def test_string_single_quote(self):
        tok = tokenize("'hello'")[0]
        assert tok.kind is TokenKind.STRING
        assert tok.text == "hello"

    def test_string_doubled_quote_escape(self):
        tok = tokenize("'it''s'")[0]
        assert tok.text == "it's"

    def test_string_double_quotes(self):
        tok = tokenize('"abc"')[0]
        assert tok.text == "abc"


class TestOperators:
    @pytest.mark.parametrize(
        "src,kind",
        [
            ("**", TokenKind.POWER),
            ("==", TokenKind.EQ),
            ("/=", TokenKind.NE),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("<", TokenKind.LT),
            (">", TokenKind.GT),
            ("::", TokenKind.DCOLON),
            (":", TokenKind.COLON),
        ],
    )
    def test_operator(self, src, kind):
        assert tokenize(src)[0].kind is kind

    @pytest.mark.parametrize(
        "src,kind",
        [
            (".and.", TokenKind.AND),
            (".or.", TokenKind.OR),
            (".not.", TokenKind.NOT),
            (".true.", TokenKind.TRUE),
            (".false.", TokenKind.FALSE),
            (".AND.", TokenKind.AND),
        ],
    )
    def test_dotted(self, src, kind):
        assert tokenize(src)[0].kind is kind

    def test_dotted_relational_aliases(self):
        assert tokenize(".eq.")[0].kind is TokenKind.EQ
        assert tokenize(".le.")[0].kind is TokenKind.LE

    def test_unknown_dotted_raises(self):
        with pytest.raises(LexError):
            tokenize(".xyz.")

    def test_star_vs_power(self):
        toks = tokenize("a * b ** c")
        ops = [t.kind for t in toks if t.kind in (TokenKind.STAR, TokenKind.POWER)]
        assert ops == [TokenKind.STAR, TokenKind.POWER]


class TestStructure:
    def test_comment_stripped(self):
        assert texts("a ! comment here") == ["a"]

    def test_continuation(self):
        toks = texts("a + &\n b")
        assert toks == ["a", "+", "b"]

    def test_semicolon_is_newline(self):
        toks = tokenize("a = 1; b = 2")
        assert any(t.kind is TokenKind.NEWLINE and t.text == ";" for t in toks)

    def test_newline_collapse(self):
        toks = tokenize("a\n\n\n\nb")
        newlines = [t for t in toks if t.kind is TokenKind.NEWLINE]
        assert len(newlines) == 2  # one between, one trailing

    def test_leading_newlines_dropped(self):
        assert tokenize("\n\n\na")[0].kind is TokenKind.IDENT

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        idents = [t for t in toks if t.kind is TokenKind.IDENT]
        assert [t.line for t in idents] == [1, 2, 3]

    def test_eof_terminated(self):
        assert tokenize("x")[-1].kind is TokenKind.EOF


class TestFusedKeywords:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("end do", "enddo"),
            ("end if", "endif"),
            ("else if", "elseif"),
            ("end program", "endprogram"),
            ("end subroutine", "endsubroutine"),
            ("enddo", "enddo"),
        ],
    )
    def test_fusion(self, src, expected):
        tok = tokenize(src)[0]
        assert tok.kind is TokenKind.KEYWORD
        assert tok.text == expected

    def test_end_alone_not_fused(self):
        assert tokenize("end")[0].text == "end"


class TestErrors:
    def test_unexpected_char(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_error_has_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("x\n  @")
        assert exc.value.line == 2


class TestNumericEdgeCases:
    def test_real_trailing_dot(self):
        assert tokenize("1.")[0].kind is TokenKind.REAL

    def test_int_then_dotted_op(self):
        # `1.and.` must lex as INT, AND — the dot belongs to the operator
        toks = tokenize("1 .and. 2")
        assert [t.kind for t in toks[:3]] == [
            TokenKind.INT,
            TokenKind.AND,
            TokenKind.INT,
        ]
