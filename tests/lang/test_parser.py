"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.lang import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    DoLoop,
    FuncCall,
    If,
    IntLit,
    Print,
    Program,
    Slice,
    Subroutine,
    TypeDecl,
    UnaryOp,
    VarRef,
    WhileLoop,
    parse,
    parse_expr,
    parse_stmt,
)


class TestExpressions:
    def test_precedence_add_mul(self):
        e = parse_expr("a + b * c")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_parens_override(self):
        e = parse_expr("(a + b) * c")
        assert e.op == "*"
        assert isinstance(e.left, BinOp) and e.left.op == "+"

    def test_left_associativity(self):
        e = parse_expr("a - b - c")
        assert e.op == "-"
        assert isinstance(e.left, BinOp) and e.left.op == "-"
        assert isinstance(e.right, VarRef) and e.right.name == "c"

    def test_power_right_associative(self):
        e = parse_expr("a ** b ** c")
        assert e.op == "**"
        assert isinstance(e.right, BinOp) and e.right.op == "**"

    def test_unary_minus(self):
        e = parse_expr("-a + b")
        assert e.op == "+"
        assert isinstance(e.left, UnaryOp)

    def test_unary_minus_power_binds_tighter(self):
        # Fortran: -a**2 == -(a**2)
        e = parse_expr("-a ** 2")
        assert isinstance(e, UnaryOp)
        assert isinstance(e.operand, BinOp) and e.operand.op == "**"

    def test_unary_plus_dropped(self):
        e = parse_expr("+a")
        assert isinstance(e, VarRef)

    def test_logical_precedence(self):
        e = parse_expr("a < b .and. c > d .or. e == f")
        assert e.op == ".or."
        assert e.left.op == ".and."

    def test_not(self):
        e = parse_expr(".not. a == b")
        assert isinstance(e, UnaryOp) and e.op == ".not."
        assert isinstance(e.operand, BinOp)

    def test_intrinsic_call(self):
        e = parse_expr("mod(i, 4)")
        assert isinstance(e, FuncCall) and e.name == "mod"
        assert len(e.args) == 2

    def test_unknown_name_paren_is_arrayref(self):
        e = parse_expr("foo(i, j)")
        assert isinstance(e, ArrayRef)

    def test_slice_subscript(self):
        e = parse_expr("a(1:k, j)")
        assert isinstance(e.subs[0], Slice)
        assert isinstance(e.subs[1], VarRef)

    def test_open_slice(self):
        e = parse_expr("a(:, 2:)")
        s0, s1 = e.subs
        assert s0.lo is None and s0.hi is None
        assert s1.lo is not None and s1.hi is None

    def test_nested_call(self):
        e = parse_expr("max(a(i), min(b, c))")
        assert isinstance(e, FuncCall)
        assert isinstance(e.args[0], ArrayRef)
        assert isinstance(e.args[1], FuncCall)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("a + b c")


class TestStatements:
    def test_assign_scalar(self):
        s = parse_stmt("x = 1")
        assert isinstance(s, Assign) and isinstance(s.lhs, VarRef)

    def test_assign_array(self):
        s = parse_stmt("a(i) = b + 1")
        assert isinstance(s.lhs, ArrayRef)

    def test_call_no_args(self):
        s = parse_stmt("call foo()")
        assert isinstance(s, CallStmt) and s.args == []

    def test_call_bare(self):
        s = parse_stmt("call foo")
        assert isinstance(s, CallStmt) and s.args == []

    def test_call_with_section_arg(self):
        s = parse_stmt("call mpi_isend(a(1:k), k, to, tag, ierr)")
        assert isinstance(s.args[0], ArrayRef)
        assert isinstance(s.args[0].subs[0], Slice)

    def test_do_loop(self):
        s = parse_stmt("do i = 1, n\n  a(i) = i\nenddo")
        assert isinstance(s, DoLoop)
        assert s.var == "i" and s.step is None
        assert len(s.body) == 1

    def test_do_loop_with_step(self):
        s = parse_stmt("do i = 1, n, 2\nenddo")
        assert isinstance(s.step, IntLit)

    def test_do_while(self):
        s = parse_stmt("do while (x < 10)\n  x = x + 1\nenddo")
        assert isinstance(s, WhileLoop)

    def test_if_then_else(self):
        s = parse_stmt("if (a > b) then\n  x = 1\nelse\n  x = 2\nendif")
        assert isinstance(s, If)
        assert len(s.branches) == 1
        assert len(s.else_body) == 1

    def test_if_elseif_chain(self):
        s = parse_stmt(
            "if (a > 1) then\nx = 1\nelseif (a > 2) then\nx = 2\n"
            "elseif (a > 3) then\nx = 3\nendif"
        )
        assert len(s.branches) == 3
        assert s.else_body == []

    def test_one_line_if(self):
        s = parse_stmt("if (a > b) x = 1")
        assert isinstance(s, If)
        assert len(s.branches[0][1]) == 1

    def test_print(self):
        s = parse_stmt("print *, a, b + 1")
        assert isinstance(s, Print) and len(s.items) == 2

    def test_nested_loops(self):
        s = parse_stmt("do i = 1, n\n  do j = 1, m\n    a(i, j) = 0\n  enddo\nenddo")
        assert isinstance(s.body[0], DoLoop)


class TestUnits:
    def test_program(self):
        t = parse("program p\ninteger :: x\nx = 1\nend program p")
        assert isinstance(t.main, Program)
        assert t.main.name == "p"
        assert len(t.main.decls) == 1
        assert len(t.main.body) == 1

    def test_end_without_kind(self):
        t = parse("program p\nend")
        assert t.main.name == "p"

    def test_subroutine_params(self):
        t = parse("subroutine s(a, b)\ninteger :: a, b\na = b\nend subroutine")
        sub = t.subroutine("s")
        assert sub.params == ["a", "b"]

    def test_multiple_units(self):
        t = parse(
            "program p\ncall s(1)\nend program\n\n"
            "subroutine s(x)\ninteger :: x\nend subroutine"
        )
        assert len(t.units) == 2

    def test_subroutine_lookup_missing(self):
        t = parse("program p\nend")
        with pytest.raises(KeyError):
            t.subroutine("nope")

    def test_empty_file_rejected(self):
        with pytest.raises(ParseError):
            parse("")


class TestDeclarations:
    def test_scalar_list(self):
        t = parse("program p\ninteger :: a, b, c\nend")
        decl = t.main.decls[0]
        assert isinstance(decl, TypeDecl)
        assert [e.name for e in decl.entities] == ["a", "b", "c"]

    def test_array_bounds(self):
        t = parse("program p\ninteger :: a(10), b(0:9), c(3, 4)\nend")
        ents = t.main.decls[0].entities
        assert len(ents[0].dims) == 1
        assert ents[1].dims[0].lo.value == 0
        assert len(ents[2].dims) == 2

    def test_parameter_with_init(self):
        t = parse("program p\ninteger, parameter :: n = 8\nend")
        decl = t.main.decls[0]
        assert decl.is_parameter
        assert decl.entities[0].init.value == 8

    def test_old_style_decl(self):
        t = parse("program p\ninteger a(10)\nend")
        assert t.main.decls[0].entities[0].is_array

    def test_dimension_attr(self):
        t = parse("program p\ninteger, dimension(5) :: a, b\nend")
        ents = t.main.decls[0].entities
        assert all(len(e.dims) == 1 for e in ents)

    def test_intent(self):
        t = parse("subroutine s(x)\ninteger, intent(in) :: x\nend")
        assert t.units[0].decls[0].intent == "in"

    def test_external(self):
        t = parse("program p\nexternal foo, bar\nend")
        assert t.main.decls[0].names == ["foo", "bar"]

    def test_implicit_none(self):
        t = parse("program p\nimplicit none\ninteger :: x\nend")
        assert len(t.main.decls) == 2

    def test_symbolic_bounds(self):
        t = parse("program p\ninteger, parameter :: n = 4\ninteger :: a(n, 2*n)\nend")
        dims = t.main.decls[1].entities[0].dims
        assert isinstance(dims[1].hi, BinOp)


class TestErrors:
    def test_missing_enddo(self):
        with pytest.raises(ParseError):
            parse("program p\ndo i = 1, 2\nx = 1\nend program")

    def test_missing_then(self):
        # `if (c)` with a statement is the one-line form; a block needs then
        with pytest.raises(ParseError):
            parse("program p\nif (a > b)\nx = 1\nendif\nend")

    def test_bad_statement(self):
        with pytest.raises(ParseError):
            parse("program p\n123 = x\nend")

    def test_error_location(self):
        with pytest.raises(ParseError) as exc:
            parse("program p\nx = \nend")
        assert exc.value.line >= 2
