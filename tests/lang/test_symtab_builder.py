"""Symbol table and AST builder tests."""

import pytest

from repro.errors import AnalysisError
from repro.lang import build_symtab, parse, unparse
from repro.lang import builder as b
from repro.lang.ast_nodes import BinOp, IntLit, UnaryOp, VarRef
from repro.lang.unparser import unparse_expr


class TestSymbolTable:
    def _table(self, src):
        return build_symtab(parse(src).units[0])

    def test_scalar_and_array(self):
        t = self._table("program p\ninteger :: x, a(5)\nend")
        assert not t.require("x").is_array
        assert t.require("a").is_array
        assert t.require("a").rank == 1

    def test_parameter(self):
        t = self._table("program p\ninteger, parameter :: n = 4\nend")
        sym = t.require("n")
        assert sym.is_parameter
        assert sym.init.value == 4

    def test_dummy_args_marked(self):
        t = self._table("subroutine s(a, n)\ninteger :: a(n), n\nend")
        assert t.require("a").is_dummy
        assert t.require("n").is_dummy

    def test_undeclared_dummy_gets_default(self):
        t = self._table("subroutine s(k)\nend")
        assert t.require("k").base_type == "integer"

    def test_externals(self):
        t = self._table("program p\nexternal foo\nend")
        assert "foo" in t.externals

    def test_duplicate_decl_rejected(self):
        with pytest.raises(AnalysisError):
            self._table("program p\ninteger :: x\ninteger :: x\nend")

    def test_require_missing(self):
        t = self._table("program p\nend")
        with pytest.raises(AnalysisError):
            t.require("ghost")

    def test_arrays_listing(self):
        t = self._table("program p\ninteger :: a(2), b, c(3)\nend")
        assert sorted(s.name for s in t.arrays()) == ["a", "c"]


class TestBuilder:
    def test_lift_int(self):
        assert isinstance(b.lift(3), IntLit)

    def test_lift_negative_int(self):
        e = b.lift(-2)
        assert isinstance(e, UnaryOp) and e.op == "-"

    def test_lift_name(self):
        assert isinstance(b.lift("x"), VarRef)

    def test_add_folds_zero(self):
        assert b.add("x", 0) == VarRef(name="x")
        assert b.add(2, 3) == IntLit(value=5)

    def test_mul_folds(self):
        assert b.mul(1, "x") == VarRef(name="x")
        assert b.mul(0, "x") == IntLit(value=0)
        assert b.mul(2, 3) == IntLit(value=6)

    def test_sub_folds(self):
        assert b.sub("x", 0) == VarRef(name="x")
        assert b.sub(5, 2) == IntLit(value=3)

    def test_div_exact_folds(self):
        assert b.div(6, 3) == IntLit(value=2)
        assert isinstance(b.div("x", 2), BinOp)

    def test_builder_output_parses(self):
        loop = b.do(
            "j",
            1,
            b.sub("np", 1),
            [
                b.assign(b.var("to"), b.mod(b.add("me", "j"), "np")),
                b.call("mpi_isend", b.aref("as", b.slice_(1, "k")), "k", "to", 0, "ierr"),
            ],
        )
        text = unparse(loop)
        assert "do j = 1, np - 1" in text
        assert "mpi_isend(as(1:k), k, to, 0, ierr)" in text

    def test_array_decl(self):
        d = b.array_decl("integer", "buf", 10, (0, 9))
        text = unparse(d)
        assert "buf(10, 0:9)" in text

    def test_comparison_builders(self):
        assert unparse_expr(b.le("i", "n")) == "i <= n"
        assert unparse_expr(b.ne("i", 0)) == "i /= 0"
