"""AST builder helpers: folding rules the code generators rely on."""

import pytest

from repro.lang import builder as b
from repro.lang.ast_nodes import BinOp, IntLit, UnaryOp, VarRef
from repro.lang.unparser import unparse


class TestLift:
    def test_int(self):
        assert b.lift(3) == IntLit(value=3)

    def test_negative_int_is_unary(self):
        e = b.lift(-3)
        assert isinstance(e, UnaryOp) and e.op == "-"

    def test_name(self):
        assert b.lift("x") == VarRef(name="x")

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            b.lift(True)

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            b.lift(object())


class TestFolding:
    def test_add_zero(self):
        assert unparse(b.add("x", 0)) == "x"
        assert unparse(b.add(0, "x")) == "x"

    def test_add_constants(self):
        assert unparse(b.add(2, 3)) == "5"

    def test_add_negative_becomes_sub(self):
        """Generated code reads `ix - 3`, never `ix + -3`."""
        assert unparse(b.add("ix", -3)) == "ix - 3"

    def test_sub_zero(self):
        assert unparse(b.sub("x", 0)) == "x"

    def test_sub_constants_can_go_negative(self):
        e = b.sub(2, 5)
        assert unparse(e) == "-3"

    def test_mul_identities(self):
        assert unparse(b.mul("x", 1)) == "x"
        assert unparse(b.mul(1, "x")) == "x"
        assert unparse(b.mul("x", 0)) == "0"
        assert unparse(b.mul(3, 4)) == "12"

    def test_div_identities(self):
        assert unparse(b.div("x", 1)) == "x"
        assert unparse(b.div(12, 4)) == "3"
        # non-exact constant division is NOT folded (Fortran truncation is
        # the interpreter's job, not the builder's)
        assert unparse(b.div(7, 2)) == "7 / 2"


class TestStatements:
    def test_do_loop(self):
        loop = b.do("i", 1, 10, [b.assign(b.var("x"), "i")])
        assert unparse(loop) == "do i = 1, 10\n  x = i\nenddo\n"

    def test_if(self):
        stmt = b.if_(b.eq("x", 1), [b.call("f", 2)], [b.call("g")])
        text = unparse(stmt)
        assert "if (x == 1) then" in text
        assert "else" in text

    def test_array_decl(self):
        d = b.array_decl("integer", "a", 4, (0, 7))
        assert unparse(d) == "integer :: a(4, 0:7)\n"

    def test_comparisons(self):
        for fn, op in [
            (b.eq, "=="),
            (b.ne, "/="),
            (b.lt, "<"),
            (b.le, "<="),
            (b.gt, ">"),
            (b.ge, ">="),
        ]:
            assert unparse(fn("a", "b")) == f"a {op} b"

    def test_mod_is_funcall(self):
        assert unparse(b.mod("x", 4)) == "mod(x, 4)"
