"""Unparse/parse round-trip over every real source in the repository:
the apps, their transformed versions, and the conftest programs."""

import pytest

from repro.apps import APP_BUILDERS, build_app
from repro.lang import parse, unparse
from repro.transform import Compuniformer

SMALL = {
    "figure2": dict(n=32, nranks=4, steps=1, stages=2),
    "indirect": dict(n=8, nranks=4, stages=2),
    "indirect-external": dict(n=8, nranks=4, stages=2),
    "fft": dict(n=8, nranks=4, steps=1, stages=2),
    "sort": dict(keys_per_dest=8, nranks=4, steps=1, stages=2),
    "stencil": dict(n=8, nranks=4, steps=1),
    "lu": dict(n=8, nranks=4, steps=1),
    "nodeloop": dict(n=8, nranks=4, steps=1, stages=2),
    "cg": dict(n=16, nranks=4, steps=2, ndots=4, stages=2),
    "halo": dict(n=8, nranks=4, steps=2, stages=2),
}

#: the collective-bound apps have no alltoall site to transform
UNTRANSFORMABLE = {"cg", "halo"}


@pytest.mark.parametrize("name", sorted(APP_BUILDERS))
def test_app_roundtrip(name):
    """parse(unparse(parse(s))) == parse(s) — the DESIGN.md §5 invariant."""
    app = build_app(name, **SMALL[name])
    ast1 = parse(app.source)
    text = unparse(ast1)
    ast2 = parse(text)
    assert ast1 == ast2
    # and unparse is a fixed point after one normalization
    assert unparse(ast2) == text


def _strip_comments(text: str) -> str:
    return "\n".join(
        l for l in text.splitlines() if not l.lstrip().startswith("!")
    )


@pytest.mark.parametrize("name", sorted(set(APP_BUILDERS) - UNTRANSFORMABLE))
def test_transformed_app_roundtrip(name):
    """Generated code must round-trip too (it is fed back to the
    interpreter as text in the CLI workflow).  The lexer discards
    comments, so the comparison is modulo the annotation comments the
    code generator emits."""
    app = build_app(name, **SMALL[name])
    report = Compuniformer(tile_size=2, oracle=app.oracle).transform(
        app.source
    )
    assert report.transformed
    text = report.unparse()
    ast = parse(text)
    assert _strip_comments(unparse(ast)) == _strip_comments(text)
    # and the reparse is stable
    assert parse(unparse(ast)) == ast
