"""Public-API snapshot: ``repro.__all__`` plus the Session surface.

The declared surface is dumped to ``tests/api_surface.txt`` and compared
verbatim; an undeclared change (a renamed export, a new Session method,
a changed signature) fails here — and in the CI hygiene job — until the
snapshot is regenerated on purpose with::

    PYTHONPATH=src python tests/test_api_surface.py --update

Run with ``--check`` for a non-pytest CI gate (exit 1 + diff on drift).
"""

from __future__ import annotations

import difflib
import inspect
import sys
from pathlib import Path

SNAPSHOT = Path(__file__).resolve().parent / "api_surface.txt"


def format_surface() -> str:
    """Render the public surface deterministically.

    Sections: the package ``__all__``, the :class:`repro.Session` method
    signatures, and the fields of every frozen request dataclass — the
    parts a caller's code is coupled to.  Annotations are source strings
    (``from __future__ import annotations``), so the rendering is stable
    across Python versions.
    """
    import dataclasses

    import repro

    lines = [
        "# Public-API surface snapshot.",
        "# Regenerate: PYTHONPATH=src python tests/test_api_surface.py --update",
        "",
        "[repro.__all__]",
    ]
    lines.extend(sorted(repro.__all__))

    lines += ["", "[repro.Session]"]
    for name in sorted(vars(repro.Session)):
        if name.startswith("_"):
            continue
        member = inspect.getattr_static(repro.Session, name)
        if isinstance(member, staticmethod):
            continue
        if isinstance(member, property):
            lines.append(f"Session.{name} <property>")
        elif callable(member):
            lines.append(f"Session.{name}{inspect.signature(member)}")

    for cls in (
        repro.ExecutionContext,
        repro.Job,
        repro.CompareRequest,
        repro.VerifyRequest,
        repro.VerifyResult,
    ):
        lines += ["", f"[repro.{cls.__name__}]"]
        for f in dataclasses.fields(cls):
            lines.append(f"{f.name}: {f.type}")
    return "\n".join(lines) + "\n"


def test_api_surface_matches_snapshot():
    expected = SNAPSHOT.read_text(encoding="utf-8")
    actual = format_surface()
    assert actual == expected, (
        "the public API surface drifted from tests/api_surface.txt.\n"
        "If the change is intentional, regenerate the snapshot:\n"
        "  PYTHONPATH=src python tests/test_api_surface.py --update\n"
        + "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                "api_surface.txt",
                "current",
                lineterm="",
            )
        )
    )


if __name__ == "__main__":
    surface = format_surface()
    if "--update" in sys.argv:
        SNAPSHOT.write_text(surface, encoding="utf-8")
        print(f"wrote {SNAPSHOT}")
    elif "--check" in sys.argv:
        expected = SNAPSHOT.read_text(encoding="utf-8")
        if surface != expected:
            sys.stdout.writelines(
                difflib.unified_diff(
                    expected.splitlines(keepends=True),
                    surface.splitlines(keepends=True),
                    "api_surface.txt",
                    "current",
                )
            )
            print("API surface drifted; see diff above", file=sys.stderr)
            sys.exit(1)
        print("API surface matches the snapshot")
    else:
        print(surface, end="")
