"""The equivalence checker itself: it must catch what it claims to catch."""

import pytest

from repro.errors import VerificationError
from repro.interp import run_cluster
from repro.verify import compare_runs, verify_equivalence, verify_transform
from tests.programs import direct_1d

GOOD = direct_1d(n=16, nprocs=4, steps=1)

#: Same program but with a wrong value in one element.
BAD = GOOD.replace("as(ix) = ix * 3", "as(ix) = ix * 4")

#: Same data, different prints.
PRINTS = GOOD.replace(
    "  enddo\nend program",
    "  enddo\n  print *, mynode()\nend program",
)


def test_identical_programs_equivalent():
    report = verify_equivalence(GOOD, GOOD, 4)
    assert report.equivalent
    assert "ar" in report.compared_arrays
    assert report.mismatches == []


def test_data_difference_detected():
    report = verify_equivalence(GOOD, BAD, 4)
    assert not report.equivalent
    assert any("'as'" in m or "'ar'" in m for m in report.mismatches)


def test_print_difference_detected():
    report = verify_equivalence(GOOD, PRINTS, 4)
    assert not report.equivalent
    assert any("printed output differs" in m for m in report.mismatches)


def test_skip_list_respected():
    report = verify_equivalence(GOOD, BAD, 4, skip=("as", "ar"))
    assert report.equivalent
    assert set(report.skipped_arrays) == {"as", "ar"}


def test_explicit_array_selection():
    report = verify_equivalence(GOOD, BAD, 4, arrays=["ar"])
    assert not report.equivalent  # ar is derived from as, so it differs too


def test_missing_requested_array_reported():
    report = verify_equivalence(GOOD, GOOD, 4, arrays=["zz"])
    assert not report.equivalent
    assert any("missing" in m for m in report.mismatches)


def test_shape_mismatch_skipped_not_failed():
    other = GOOD.replace("integer :: ar(1:nx)", "integer :: ar(1:nx, 1:2)")
    # not a valid alltoall partner; just compare runs structurally
    a = run_cluster(GOOD, 4)
    b = run_cluster(GOOD.replace("integer :: iy, ix", "integer :: iy, ix, zq"), 4)
    report = compare_runs(a, b)
    assert report.equivalent  # scalars don't participate; arrays match


def test_check_raises():
    with pytest.raises(VerificationError, match="not equivalent"):
        verify_equivalence(GOOD, BAD, 4, check=True)


def test_speedup_property():
    report = verify_equivalence(GOOD, GOOD, 4)
    assert report.speedup == pytest.approx(1.0)


def test_verify_transform_rejects_untransformable():
    src = """
program plain
  integer :: x

  x = 1
end program plain
"""
    with pytest.raises(VerificationError, match="no transformable"):
        verify_transform(src, 2)


def test_verify_transform_roundtrip():
    eq, report = verify_transform(GOOD, 4, tile_size=4)
    assert eq.equivalent
    assert report.sites[0].tile_size == 4


def test_verify_transform_options_conflict_raises():
    from repro.transform.options import TransformOptions

    with pytest.raises(VerificationError, match="drop the legacy"):
        verify_transform(
            GOOD, 4, tile_size=4, options=TransformOptions(tile_size=2)
        )
