"""Canonical mini-Fortran test programs shared across test modules."""

from __future__ import annotations


def direct_1d(n: int = 64, nprocs: int = 8, steps: int = 2) -> str:
    """The paper's Figure 2(a) shape: 1-D direct pattern, alltoall inside
    the outer time-step loop."""
    return f"""
program figure2
  integer, parameter :: nx = {n}, np = {nprocs}, nt = {steps}
  integer :: as(1:nx)
  integer :: ar(1:nx)
  integer :: iy, ix, ierr

  do iy = 1, nt
    do ix = 1, nx
      as(ix) = ix * 3 + iy * 100 + mynode() * 7
    enddo
    call mpi_alltoall(as, nx / np, 0, ar, nx / np, 0, 0, ierr)
  enddo
end program figure2
"""


def direct_2d(n: int = 16, nprocs: int = 4) -> str:
    """2-D direct pattern, node loop innermost (scheme A), C at top level."""
    return f"""
program twod
  integer, parameter :: n = {n}, np = {nprocs}
  integer :: as(1:n, 1:n)
  integer :: ar(1:n, 1:n)
  integer :: ix, iy, ierr

  do ix = 1, n
    do iy = 1, n
      as(ix, iy) = ix * 1000 + iy + mynode()
    enddo
  enddo
  call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
end program twod
"""


def nodeloop_outer(n: int = 16, nprocs: int = 4) -> str:
    """Node loop outermost: interchange candidate (§3.5)."""
    return f"""
program nodeouter
  integer, parameter :: n = {n}, np = {nprocs}
  integer :: as(1:n, 1:n)
  integer :: ar(1:n, 1:n)
  integer :: ix, iy, ierr

  do iy = 1, n
    do ix = 1, n
      as(ix, iy) = ix * 1000 + iy + mynode()
    enddo
  enddo
  call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
end program nodeouter
"""


def indirect_3d(n: int = 8, nprocs: int = 4) -> str:
    """Figure 3(a) shape: producer + coordinate-decomposed copy loop."""
    return f"""
program indirectk
  integer, parameter :: n = {n}, np = {nprocs}
  integer :: as(1:n, 1:n, 1:n)
  integer :: ar(1:n, 1:n, 1:n)
  integer :: at(1:n * n)
  integer :: iy, ix, tx, ty, ierr

  do iy = 1, n
    call producer(iy, at)
    do ix = 1, n * n
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1) / n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, n * n * n / np, 0, ar, n * n * n / np, 0, 0, ierr)
end program indirectk

subroutine producer(step, buf)
  integer :: step
  integer :: buf(1:{n * n})
  integer :: i

  do i = 1, {n * n}
    buf(i) = mod(i * 13 + step * 7 + mynode() * 31, 1024)
  enddo
end subroutine producer
"""


