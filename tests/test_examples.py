"""Smoke coverage for ``examples/*.py``.

The examples are the package's de-facto documentation; before this test
they were executed by nobody and would silently rot whenever the API
moved.  Each script must run to completion (``paper_figures.py`` in its
``--fast`` mode) against the in-tree ``src/`` package.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))

#: extra argv per script (keep the smoke run fast where supported)
_ARGS = {"paper_figures.py": ["--fast"]}


def test_every_example_is_covered():
    """A new example must appear in the parametrized run below."""
    assert EXAMPLES, "examples/ directory is missing or empty"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(script), *_ARGS.get(script.name, [])],
        env=env,
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
