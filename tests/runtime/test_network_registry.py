"""The network scenario registry: round trips, errors, and golden parity."""

import pytest

from repro.errors import SimulationError
from repro.interp.runner import run_cluster
from repro.runtime.network import (
    _REGISTRY,
    GM_2RAIL,
    GM_RENDEZVOUS,
    IDEAL,
    MPICH_GM,
    MPICH_P4,
    NetworkModel,
    get_model,
    list_models,
    register_model,
    resolve_model,
)

from tests.programs import direct_1d


@pytest.fixture
def clean_registry():
    """Snapshot/restore the registry around tests that mutate it."""
    snapshot = dict(_REGISTRY)
    yield
    _REGISTRY.clear()
    _REGISTRY.update(snapshot)


class TestRegistryRoundTrip:
    def test_register_get_list(self, clean_registry):
        model = MPICH_GM.with_(name="test-net", latency=1e-3)
        returned = register_model(model)
        assert returned is model
        assert get_model("test-net") is model
        assert "test-net" in list_models()

    def test_register_with_aliases(self, clean_registry):
        model = MPICH_GM.with_(name="test-net")
        register_model(model, "test-alias", "test-alias-2")
        assert get_model("test-alias") is model
        assert get_model("test-alias-2") is model
        assert {"test-net", "test-alias", "test-alias-2"} <= set(list_models())

    def test_list_is_sorted(self):
        assert list_models() == sorted(list_models())

    def test_resolve_passthrough_and_name(self):
        assert resolve_model(MPICH_GM) is MPICH_GM
        assert resolve_model("mpich-gm") is MPICH_GM

    def test_builtin_scenarios_present(self):
        names = set(list_models())
        assert {
            "hostnet",
            "gmnet",
            "ideal",
            "gm-rendezvous",
            "gm-2rail",
            "gm-congested",
            "rdma-100g",
            "tcp-10g",
        } <= names


class TestRegistryErrors:
    def test_unknown_name_raises(self):
        with pytest.raises(SimulationError, match="unknown network model"):
            get_model("no-such-network")

    def test_unknown_name_lists_known(self):
        with pytest.raises(SimulationError, match="gmnet"):
            get_model("no-such-network")

    def test_resolve_unknown_raises(self):
        with pytest.raises(SimulationError, match="unknown network model"):
            resolve_model("no-such-network")

    def test_duplicate_registration_raises(self, clean_registry):
        with pytest.raises(SimulationError, match="already registered"):
            register_model(MPICH_GM.with_(name="mpich-gm", latency=1.0))

    def test_duplicate_overwrite_allowed(self, clean_registry):
        replacement = MPICH_GM.with_(latency=1.0)
        register_model(replacement, overwrite=True)
        assert get_model("mpich-gm") is replacement

    def test_reregistering_same_model_is_idempotent(self, clean_registry):
        register_model(MPICH_GM)
        assert get_model("mpich-gm") is MPICH_GM

    def test_bad_rails_rejected(self):
        with pytest.raises(SimulationError, match="rails"):
            MPICH_GM.with_(rails=0)

    def test_bad_congestion_rejected(self):
        with pytest.raises(SimulationError, match="congestion_factor"):
            MPICH_GM.with_(congestion_factor=0.0)


#: the pre-refactor constants, reconstructed field-for-field: the classic
#: eight parameters with every scenario-extension knob left at its default
LEGACY_HOSTNET = NetworkModel(
    name="mpich",
    latency=55e-6,
    byte_time=20e-9,
    send_overhead=12e-6,
    recv_overhead=6e-6,
    offload=False,
    host_byte_time=18e-9,
    copy_byte_time=6e-9,
)
LEGACY_GMNET = NetworkModel(
    name="mpich-gm",
    latency=8e-6,
    byte_time=4e-9,
    send_overhead=1.5e-6,
    recv_overhead=1.0e-6,
    offload=True,
    host_byte_time=0.0,
    copy_byte_time=5e-9,
)


class TestGoldenParity:
    """Registry presets reproduce the pre-refactor constants exactly."""

    def test_aliases_are_the_classic_models(self):
        assert get_model("hostnet") is MPICH_P4
        assert get_model("gmnet") is MPICH_GM
        assert MPICH_P4 == LEGACY_HOSTNET
        assert MPICH_GM == LEGACY_GMNET

    @pytest.mark.parametrize(
        "preset, legacy",
        [("hostnet", LEGACY_HOSTNET), ("gmnet", LEGACY_GMNET)],
    )
    def test_simresult_byte_identical(self, preset, legacy):
        """A real program times identically under the named preset and a
        model carrying only the classic fields (defaults for the rest)."""
        src = direct_1d()
        a = run_cluster(src, nranks=8, network=preset)
        b = run_cluster(src, nranks=8, network=legacy)
        assert a.result.time == b.result.time
        assert a.result.rank_times == b.result.rank_times
        assert a.result.stats == b.result.stats
        assert a.result.warnings == b.result.warnings

    def test_extension_defaults_do_not_change_the_math(self):
        # the formulas the engine calls, compared term by term
        for nbytes in (8, 512, 1 << 20):
            assert MPICH_GM.wire_time(nbytes) == nbytes * MPICH_GM.byte_time
            assert MPICH_GM.msg_latency(nbytes) == MPICH_GM.latency
            assert MPICH_GM.unexpected_copy_cost(nbytes) == (
                nbytes * MPICH_GM.copy_byte_time
            )
            assert not MPICH_GM.is_rendezvous(nbytes)


class TestScenarioSemantics:
    def test_rendezvous_switches_on_size(self):
        threshold = GM_RENDEZVOUS.eager_threshold
        assert not GM_RENDEZVOUS.is_rendezvous(threshold)
        assert GM_RENDEZVOUS.is_rendezvous(threshold + 1)
        assert GM_RENDEZVOUS.msg_latency(threshold + 1) == pytest.approx(
            GM_RENDEZVOUS.latency + GM_RENDEZVOUS.rendezvous_latency
        )
        # rendezvous messages never pay the bounce-buffer copy
        assert GM_RENDEZVOUS.unexpected_copy_cost(threshold + 1) == 0.0
        assert GM_RENDEZVOUS.unexpected_copy_cost(threshold) > 0.0

    def test_rails_divide_wire_time(self):
        assert GM_2RAIL.wire_time(4096) == pytest.approx(
            MPICH_GM.wire_time(4096) / 2
        )

    def test_ideal_stays_free(self):
        assert IDEAL.wire_time(1 << 20) == 0.0
        assert IDEAL.msg_latency(1 << 20) == 0.0

    def test_run_cluster_accepts_scenario_names(self):
        src = direct_1d()
        named = run_cluster(src, nranks=8, network="gm-2rail")
        direct = run_cluster(src, nranks=8, network=GM_2RAIL)
        assert named.result.time == direct.result.time
