"""Discrete-event engine semantics: timing, matching, overlap, failures."""

import numpy as np
import pytest

from repro.errors import DeadlockError, SimulationError
from repro.runtime.events import Barrier, Compute, Irecv, Isend, LocalCopy, Wait
from repro.runtime.network import IDEAL, MPICH_GM, MPICH_P4, NetworkModel
from repro.runtime.simulator import simulate

#: Deterministic offload network with round numbers for exact assertions.
NET = NetworkModel(
    name="test",
    latency=10.0,
    byte_time=1.0,  # 1 s per byte: an 8-byte message occupies NICs 8 s
    send_overhead=1.0,
    recv_overhead=1.0,
    offload=True,
    host_byte_time=0.0,
    copy_byte_time=0.0,
)


def _buf(n=1, value=0):
    return np.full(n, value, dtype=np.int64)


class TestCompute:
    def test_compute_advances_clock(self):
        def prog():
            yield Compute(seconds=5.0)
            yield Compute(seconds=2.5)

        res = simulate([prog()], IDEAL)
        assert res.time == pytest.approx(7.5)
        assert res.stats[0].compute_time == pytest.approx(7.5)

    def test_negative_compute_rejected(self):
        def prog():
            yield Compute(seconds=-1.0)

        with pytest.raises(SimulationError):
            simulate([prog()], IDEAL)

    def test_makespan_is_max_rank(self):
        def prog(t):
            def gen():
                yield Compute(seconds=t)

            return gen()

        res = simulate([prog(1.0), prog(9.0), prog(3.0)], IDEAL)
        assert res.time == pytest.approx(9.0)
        assert res.rank_times == pytest.approx([1.0, 9.0, 3.0])


class TestPointToPoint:
    def test_payload_delivered(self):
        data = np.arange(4, dtype=np.int64)
        out = np.zeros(4, dtype=np.int64)

        def sender():
            h = yield Isend(dest=1, tag=7, data=data)
            yield Wait(handles=[h])

        def receiver():
            h = yield Irecv(source=0, tag=7, buffer=out, nbytes=32)
            yield Wait(handles=[h])

        simulate([sender(), receiver()], NET)
        assert np.array_equal(out, data)

    def test_transfer_timing_exact(self):
        """recv completes at send_overhead + wire + latency."""
        data = _buf(1, 42)
        out = _buf(1)

        def sender():
            h = yield Isend(dest=1, tag=0, data=data)
            yield Wait(handles=[h])

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=out, nbytes=8)
            yield Wait(handles=[h])

        res = simulate([sender(), receiver()], NET)
        # send posted at t=1 (overhead), wire 8 s, latency 10 -> complete 19
        assert res.rank_times[1] == pytest.approx(19.0)

    def test_tag_matching(self):
        a = _buf(1, 1)
        b = _buf(1, 2)
        out1, out2 = _buf(1), _buf(1)

        def sender():
            h1 = yield Isend(dest=1, tag=5, data=a)
            h2 = yield Isend(dest=1, tag=6, data=b)
            yield Wait(handles=[h1, h2])

        def receiver():
            # posted in opposite tag order: matching is by tag, not arrival
            h2 = yield Irecv(source=0, tag=6, buffer=out2, nbytes=8)
            h1 = yield Irecv(source=0, tag=5, buffer=out1, nbytes=8)
            yield Wait(handles=[h1, h2])

        simulate([sender(), receiver()], NET)
        assert out1[0] == 1 and out2[0] == 2

    def test_fifo_within_same_tag(self):
        first = _buf(1, 10)
        second = _buf(1, 20)
        o1, o2 = _buf(1), _buf(1)

        def sender():
            h1 = yield Isend(dest=1, tag=0, data=first)
            h2 = yield Isend(dest=1, tag=0, data=second)
            yield Wait(handles=[h1, h2])

        def receiver():
            h1 = yield Irecv(source=0, tag=0, buffer=o1, nbytes=8)
            h2 = yield Irecv(source=0, tag=0, buffer=o2, nbytes=8)
            yield Wait(handles=[h1, h2])

        simulate([sender(), receiver()], NET)
        assert (o1[0], o2[0]) == (10, 20)

    def test_invalid_dest_raises(self):
        def prog():
            yield Isend(dest=5, tag=0, data=_buf())

        with pytest.raises(SimulationError):
            simulate([prog()], NET)

    def test_buffer_size_mismatch_raises(self):
        def sender():
            h = yield Isend(dest=1, tag=0, data=_buf(4))
            yield Wait(handles=[h])

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=_buf(2), nbytes=16)
            yield Wait(handles=[h])

        with pytest.raises(SimulationError, match="size mismatch"):
            simulate([sender(), receiver()], NET)

    def test_wait_unknown_handle_raises(self):
        def prog():
            yield Wait(handles=[99])

        with pytest.raises(SimulationError, match="unknown handle"):
            simulate([prog()], NET)


class TestOverlap:
    """The property the whole paper is about: offload lets compute hide wire
    time; a host-driven stack cannot."""

    def _programs(self, nbytes: int, compute: float):
        data = np.zeros(nbytes // 8, dtype=np.int64)
        out = np.zeros(nbytes // 8, dtype=np.int64)

        def sender():
            h = yield Isend(dest=1, tag=0, data=data)
            yield Compute(seconds=compute)
            yield Wait(handles=[h])

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=out, nbytes=nbytes)
            yield Compute(seconds=compute)
            yield Wait(handles=[h])

        return [sender(), receiver()]

    def test_offload_overlaps(self):
        # wire = 800 s, latency 10; compute 1000 covers it entirely
        res = simulate(self._programs(800 * 8 // 8, compute=1000.0), NET)
        # sender: 1 (overhead) + 1000 (compute) = 1001; transfer done at
        # 1 + 800*... nbytes=800 -> wire 800 -> complete 811 < 1001
        assert res.rank_times[0] == pytest.approx(1001.0)
        assert res.stats[0].wait_time == pytest.approx(0.0)

    def test_offload_exposes_remainder(self):
        # compute 100 << wire 800: wait pays the remainder
        res = simulate(self._programs(800, compute=100.0), NET)
        # transfer complete at 1 + 800 + 10 = 811; sender waits from 101
        assert res.rank_times[0] == pytest.approx(811.0)
        assert res.stats[0].wait_time == pytest.approx(710.0)

    def test_host_stack_cannot_overlap(self):
        host = NET.with_(name="host", offload=False, host_byte_time=2.0)
        data = np.zeros(100, dtype=np.int64)  # 800 B
        out = np.zeros(100, dtype=np.int64)

        def sender():
            h = yield Isend(dest=1, tag=0, data=data)
            yield Compute(seconds=50.0)
            yield Wait(handles=[h])

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=out, nbytes=800)
            yield Compute(seconds=50.0)
            yield Wait(handles=[h])

        res = simulate([sender(), receiver()], host)
        # the send itself cost 1 + 800*2 = 1601 s of CPU before compute
        assert res.stats[0].mpi_overhead_time >= 1600.0
        assert res.rank_times[0] >= 1651.0


class TestNicContention:
    def test_receiver_nic_serializes(self):
        """Two senders to one receiver: wire occupancy is serialized."""
        out1, out2 = _buf(100), _buf(100)  # 800 B each -> 800 s wire

        def sender(tag):
            def gen():
                h = yield Isend(dest=2, tag=tag, data=_buf(100, tag))
                yield Wait(handles=[h])

            return gen()

        def receiver():
            h1 = yield Irecv(source=0, tag=1, buffer=out1, nbytes=800)
            h2 = yield Irecv(source=1, tag=2, buffer=out2, nbytes=800)
            yield Wait(handles=[h1, h2])

        res = simulate([sender(1), sender(2), receiver()], NET)
        # both transfers queue on rank 2's NIC: 800 + 800 + latency
        assert res.rank_times[2] >= 1610.0

    def test_distinct_receivers_parallel(self):
        def sender(dest):
            def gen():
                h = yield Isend(dest=dest, tag=0, data=_buf(100))
                yield Wait(handles=[h])

            return gen()

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=_buf(100), nbytes=800)
            yield Wait(handles=[h])

        def receiver1():
            h = yield Irecv(source=1, tag=0, buffer=_buf(100), nbytes=800)
            yield Wait(handles=[h])

        res = simulate(
            [sender(2), sender(3), receiver(), receiver1()], NET
        )
        # sender NICs are distinct, receiver NICs are distinct: parallel
        assert res.time < 1000.0


class TestBarrier:
    def test_barrier_synchronizes(self):
        order = []

        def fast():
            yield Compute(seconds=1.0)
            yield Barrier()
            order.append("fast")

        def slow():
            yield Compute(seconds=50.0)
            yield Barrier()
            order.append("slow")

        res = simulate([fast(), slow()], NET)
        # both resume at the same post-barrier time
        assert res.rank_times[0] == res.rank_times[1]
        assert res.rank_times[0] >= 50.0
        assert res.stats[0].wait_time >= 49.0


class TestFailureModes:
    def test_deadlock_detected(self):
        def lonely():
            h = yield Irecv(source=1, tag=0, buffer=_buf(), nbytes=8)
            yield Wait(handles=[h])

        def silent():
            yield Compute(seconds=1.0)

        with pytest.raises(DeadlockError, match="rank 0 blocked"):
            simulate([lonely(), silent()], NET)

    def test_unwaited_request_warns(self):
        def sender():
            yield Isend(dest=1, tag=0, data=_buf())

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=_buf(), nbytes=8)
            yield Wait(handles=[h])

        res = simulate([sender(), receiver()], NET)
        assert any("never waited" in w for w in res.warnings)

    def test_inflight_modification_detected(self):
        """Overwriting a send buffer before the transfer completes is the
        bug an unsafe transformation would introduce; the engine reports it."""
        data = _buf(100, 1)

        def sender():
            h = yield Isend(dest=1, tag=0, data=data)
            data[0] = 999  # stomp the buffer while in flight
            yield Wait(handles=[h])

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=_buf(100), nbytes=800)
            yield Wait(handles=[h])

        res = simulate([sender(), receiver()], NET)
        assert any("in flight" in w for w in res.warnings)

    def test_race_detection_can_be_disabled(self):
        data = _buf(100, 1)

        def sender():
            h = yield Isend(dest=1, tag=0, data=data)
            data[0] = 999
            yield Wait(handles=[h])

        def receiver():
            h = yield Irecv(source=0, tag=0, buffer=_buf(100), nbytes=800)
            yield Wait(handles=[h])

        res = simulate([sender(), receiver()], NET, detect_races=False)
        assert not any("in flight" in w for w in res.warnings)


class TestUnexpectedMessages:
    def test_late_recv_counts_unexpected(self):
        def sender():
            h = yield Isend(dest=1, tag=0, data=_buf())
            yield Wait(handles=[h])

        def receiver():
            yield Compute(seconds=10000.0)  # message arrives long before
            h = yield Irecv(source=0, tag=0, buffer=_buf(), nbytes=8)
            yield Wait(handles=[h])

        res = simulate([sender(), receiver()], NET)
        assert res.stats[1].unexpected_messages == 1


class TestDeterminism:
    def test_repeated_runs_identical(self):
        def make():
            def sender():
                hs = []
                for i in range(5):
                    h = yield Isend(dest=1, tag=i, data=_buf(10, i))
                    hs.append(h)
                yield Compute(seconds=3.0)
                yield Wait(handles=hs)

            def receiver():
                hs = []
                for i in range(5):
                    h = yield Irecv(
                        source=0, tag=i, buffer=_buf(10), nbytes=80
                    )
                    hs.append(h)
                yield Compute(seconds=1.0)
                yield Wait(handles=hs)

            return [sender(), receiver()]

        a = simulate(make(), MPICH_GM)
        b = simulate(make(), MPICH_GM)
        assert a.time == b.time
        assert a.rank_times == b.rank_times


class TestLocalCopy:
    def test_local_copy_charges_cpu(self):
        net = NET.with_(copy_byte_time=2.0)

        def prog():
            yield LocalCopy(nbytes=100)

        res = simulate([prog()], net)
        assert res.time == pytest.approx(200.0)
