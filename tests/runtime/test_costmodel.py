"""Compute cost model scaling."""

import pytest

from repro.runtime.costmodel import DEFAULT_COST_MODEL, ELEMENT_BYTES, CostModel


def test_element_bytes():
    assert ELEMENT_BYTES == 8


def test_default_positive():
    m = DEFAULT_COST_MODEL
    for field in ("stmt_overhead", "int_op", "real_op", "mem_access",
                  "intrinsic", "call_overhead"):
        assert getattr(m, field) > 0


def test_scaled_multiplies_compute_costs():
    m = CostModel().scaled(3.0)
    base = CostModel()
    assert m.int_op == pytest.approx(base.int_op * 3)
    assert m.real_op == pytest.approx(base.real_op * 3)
    assert m.call_overhead == pytest.approx(base.call_overhead * 3)


def test_scaled_preserves_flush_threshold():
    assert CostModel().scaled(10.0).flush_threshold == CostModel().flush_threshold


def test_scaled_identity():
    assert CostModel().scaled(1.0) == CostModel()
