"""Collective-algorithm registry: data equivalence, goldens, registry API.

Every registered algorithm of a collective must produce bit-identical
result buffers (the payloads are integers, reductions are exact), pinned
here at 2, 4, and 7 ranks — the non-power-of-two exercises the Bruck and
binomial remainder handling.  Virtual times are pinned per algorithm x
scenario; the pairwise alltoall goldens equal the pre-registry
implementation's timings bit-for-bit (the default schedule must not
move).
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.runtime.collectives import (
    COLLECTIVES,
    default_algorithm,
    describe_suite,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    resolve_suite,
)
from repro.runtime.events import LocalCopy, Wait
from repro.runtime.mpi import SimComm
from repro.runtime.network import MPICH_GM, get_model
from repro.runtime.simulator import simulate

RANK_COUNTS = (2, 4, 7)


# ----------------------------------------------------------- registry API


def test_registry_reports_required_algorithms():
    algos = list_algorithms()
    assert set(algos) == set(COLLECTIVES)
    assert len(algos["alltoall"]) >= 4
    assert {"pairwise", "ring", "bruck", "scattered"} <= set(algos["alltoall"])
    # >= 3 collectives beyond alltoall, each with at least one algorithm
    others = [c for c in COLLECTIVES if c != "alltoall" and algos[c]]
    assert len(others) >= 3


def test_defaults():
    assert default_algorithm("alltoall") == "pairwise"
    assert default_algorithm("allreduce") == "recursive-doubling"
    assert default_algorithm("allgather") == "ring"
    assert default_algorithm("bcast") == "binomial"


def test_get_algorithm_unknown_names():
    with pytest.raises(SimulationError, match="unknown collective"):
        get_algorithm("reduce_scatter")
    with pytest.raises(SimulationError, match="unknown alltoall algorithm"):
        get_algorithm("alltoall", "hypercube")


def test_register_rejects_duplicate_without_overwrite():
    def fake(comm, send, recv, part):
        yield from ()

    with pytest.raises(SimulationError, match="already registered"):
        register_algorithm("alltoall", "pairwise", fake)
    # same function object re-registers silently (idempotent import)
    register_algorithm("alltoall", "pairwise", get_algorithm("alltoall"))


def test_register_decorator_and_overwrite():
    @register_algorithm("bcast", "test-noop")
    def noop(comm, buf, root):
        yield from ()

    try:
        assert get_algorithm("bcast", "test-noop") is noop
        register_algorithm("bcast", "test-noop", noop, overwrite=True)
    finally:
        # keep the registry clean for other tests
        from repro.runtime import collectives as mod

        del mod._REGISTRY["bcast"]["test-noop"]


def test_resolve_suite_forms():
    defaults = resolve_suite(None)
    assert defaults["alltoall"] == "pairwise"
    assert set(defaults) == set(COLLECTIVES)
    # bare name applies to every collective that registers it
    ring = resolve_suite("ring")
    assert ring["alltoall"] == "ring"
    assert ring["allreduce"] == "ring"
    assert ring["allgather"] == "ring"
    assert ring["bcast"] == "binomial"  # no ring bcast: keeps default
    # bruck only names an alltoall algorithm
    bruck = resolve_suite("bruck")
    assert bruck["alltoall"] == "bruck"
    assert bruck["allreduce"] == "recursive-doubling"
    # mapping and CLI pair syntax
    assert resolve_suite({"alltoall": "scattered"})["alltoall"] == "scattered"
    pairs = resolve_suite("alltoall=bruck,allreduce=ring")
    assert pairs["alltoall"] == "bruck" and pairs["allreduce"] == "ring"


def test_resolve_suite_rejects_unknown():
    with pytest.raises(SimulationError, match="no collective registers"):
        resolve_suite("quantum")
    with pytest.raises(SimulationError, match="unknown alltoall algorithm"):
        resolve_suite({"alltoall": "quantum"})
    with pytest.raises(SimulationError, match="unknown collective"):
        resolve_suite("reduce_scatter=ring")


def test_describe_suite_round_trip():
    text = describe_suite(resolve_suite("alltoall=bruck"))
    assert "alltoall=bruck" in text
    assert resolve_suite(text)["alltoall"] == "bruck"


def test_simcomm_exposes_resolved_suite():
    comm = SimComm(0, 4, collectives="bruck")
    assert comm.collectives["alltoall"] == "bruck"
    with pytest.raises(SimulationError, match="no collective registers"):
        SimComm(0, 4, collectives="quantum")


# ------------------------------------------------- running one collective


def run_alltoall(nranks, part, algorithm, network=MPICH_GM):
    sends = [
        np.arange(nranks * part, dtype=np.int64) + 1000 * r
        for r in range(nranks)
    ]
    recvs = [np.zeros(nranks * part, dtype=np.int64) for _ in range(nranks)]

    def program(rank):
        comm = SimComm(rank, nranks, collectives={"alltoall": algorithm})
        yield from comm.alltoall(sends[rank], recvs[rank])

    res = simulate([program(r) for r in range(nranks)], network)
    return res, recvs


def run_allreduce(nranks, count, algorithm, op="sum", network=MPICH_GM):
    sends = [
        np.arange(count, dtype=np.int64) * (r + 1) + r for r in range(nranks)
    ]
    recvs = [np.zeros(count, dtype=np.int64) for _ in range(nranks)]

    def program(rank):
        comm = SimComm(rank, nranks, collectives={"allreduce": algorithm})
        yield from comm.allreduce(sends[rank], recvs[rank], op=op)

    res = simulate([program(r) for r in range(nranks)], network)
    return res, sends, recvs


def run_allgather(nranks, block, algorithm, network=MPICH_GM):
    sends = [np.arange(block, dtype=np.int64) + 100 * r for r in range(nranks)]
    recvs = [np.zeros(nranks * block, dtype=np.int64) for _ in range(nranks)]

    def program(rank):
        comm = SimComm(rank, nranks, collectives={"allgather": algorithm})
        yield from comm.allgather(sends[rank], recvs[rank])

    res = simulate([program(r) for r in range(nranks)], network)
    return res, sends, recvs


def run_bcast(nranks, count, algorithm, root, network=MPICH_GM):
    bufs = [
        np.arange(count, dtype=np.int64) + 7
        if r == root
        else np.zeros(count, dtype=np.int64)
        for r in range(nranks)
    ]

    def program(rank):
        comm = SimComm(rank, nranks, collectives={"bcast": algorithm})
        yield from comm.bcast(bufs[rank], root=root)

    res = simulate([program(r) for r in range(nranks)], network)
    return res, bufs


# --------------------------------------- cross-algorithm data equivalence


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("algorithm", sorted(list_algorithms("alltoall")))
def test_alltoall_data_equivalence(algorithm, nranks):
    """Every algorithm satisfies the MPI_ALLTOALL permutation contract."""
    part = 5
    _, recvs = run_alltoall(nranks, part, algorithm)
    for r in range(nranks):
        for j in range(nranks):
            expected = np.arange(nranks * part, dtype=np.int64)[
                j * part : (j + 1) * part
            ] + 1000 * r
            assert np.array_equal(
                recvs[j][r * part : (r + 1) * part], expected
            ), (algorithm, r, j)


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("algorithm", sorted(list_algorithms("allreduce")))
@pytest.mark.parametrize("op,fold", [("sum", np.sum), ("max", np.max), ("min", np.min)])
def test_allreduce_data_equivalence(algorithm, nranks, op, fold):
    _, sends, recvs = run_allreduce(nranks, 9, algorithm, op=op)
    expected = fold(np.stack(sends), axis=0)
    for r in range(nranks):
        assert np.array_equal(recvs[r], expected), (algorithm, op, r)


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("algorithm", sorted(list_algorithms("allgather")))
def test_allgather_data_equivalence(algorithm, nranks):
    _, sends, recvs = run_allgather(nranks, 4, algorithm)
    expected = np.concatenate(sends)
    for r in range(nranks):
        assert np.array_equal(recvs[r], expected), (algorithm, r)


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("algorithm", sorted(list_algorithms("bcast")))
def test_bcast_data_equivalence(algorithm, nranks):
    for root in (0, nranks - 1):
        _, bufs = run_bcast(nranks, 6, algorithm, root)
        expected = np.arange(6, dtype=np.int64) + 7
        for r in range(nranks):
            assert np.array_equal(bufs[r], expected), (algorithm, root, r)


# --------------------------------------------------- golden virtual times
#
# Exact pins per algorithm x scenario (4 ranks; alltoall part=8,
# allreduce count=8, allgather block=4, bcast count=8 root=1).  The
# pairwise entries are byte-identical to the pre-registry hard-coded
# implementation — the default schedule's timing must never move.

GOLDEN_TIMES = {
    ("alltoall", "bruck", "hostnet"): 0.00016648000000000005,
    ("alltoall", "bruck", "gmnet"): 2.7144000000000003e-05,
    ("alltoall", "pairwise", "hostnet"): 0.000117192,
    ("alltoall", "pairwise", "gmnet"): 1.5756e-05,
    ("alltoall", "ring", "hostnet"): 0.000117192,
    ("alltoall", "ring", "gmnet"): 1.5756e-05,
    ("alltoall", "scattered", "hostnet"): 9.919200000000001e-05,
    ("alltoall", "scattered", "gmnet"): 1.2756e-05,
    ("allreduce", "recursive-doubling", "hostnet"): 0.00015393600000000003,
    ("allreduce", "recursive-doubling", "gmnet"): 2.2152e-05,
    ("allreduce", "ring", "hostnet"): 0.0004441439999999999,
    ("allreduce", "ring", "gmnet"): 6.402399999999998e-05,
    ("allgather", "linear", "hostnet"): 0.00011309599999999999,
    ("allgather", "linear", "gmnet"): 1.5628e-05,
    ("allgather", "ring", "hostnet"): 0.000224568,
    ("allgather", "ring", "gmnet"): 3.2044e-05,
    ("bcast", "binomial", "hostnet"): 0.000141168,
    ("bcast", "binomial", "gmnet"): 1.9512e-05,
    ("bcast", "linear", "hostnet"): 9.688800000000001e-05,
    ("bcast", "linear", "gmnet"): 1.2756e-05,
}

#: Pairwise alltoall at other rank counts — the PR 1 baseline values,
#: captured from the hard-coded implementation before the registry
#: existed (part=8 int64).
PAIRWISE_BASELINE = {
    ("hostnet", 2): 7.658400000000001e-05,
    ("hostnet", 4): 0.000117192,
    ("hostnet", 7): 0.000178104,
    ("gmnet", 2): 1.0756e-05,
    ("gmnet", 4): 1.5756e-05,
    ("gmnet", 7): 2.3256e-05,
}


@pytest.mark.parametrize(
    "collective,algorithm,scenario", sorted(GOLDEN_TIMES)
)
def test_golden_virtual_time(collective, algorithm, scenario):
    network = get_model(scenario)
    if collective == "alltoall":
        res, _ = run_alltoall(4, 8, algorithm, network)
    elif collective == "allreduce":
        res, _, _ = run_allreduce(4, 8, algorithm, network=network)
    elif collective == "allgather":
        res, _, _ = run_allgather(4, 4, algorithm, network)
    else:
        res, _ = run_bcast(4, 8, algorithm, 1, network)
    golden = GOLDEN_TIMES[(collective, algorithm, scenario)]
    assert res.time == pytest.approx(golden, rel=1e-12), (
        collective,
        algorithm,
        scenario,
    )


@pytest.mark.parametrize("scenario,nranks", sorted(PAIRWISE_BASELINE))
def test_pairwise_default_matches_pr1_baseline(scenario, nranks):
    """The default algorithm's timing is unchanged from before the
    registry refactor (same op sequence, bit-for-bit)."""
    res, _ = run_alltoall(nranks, 8, "pairwise", get_model(scenario))
    assert res.time == PAIRWISE_BASELINE[(scenario, nranks)]

    def default_program(rank):
        # no collectives argument at all: the default suite
        comm = SimComm(rank, nranks)
        sends = np.arange(nranks * 8, dtype=np.int64) + 1000 * rank
        yield from comm.alltoall(sends, np.zeros(nranks * 8, dtype=np.int64))

    res2 = simulate(
        [default_program(r) for r in range(nranks)], get_model(scenario)
    )
    assert res2.time == PAIRWISE_BASELINE[(scenario, nranks)]


# ----------------------------------------------- edge cases + error paths


def _yielded_ops(gen):
    """Drive a collective generator standalone, returning yielded op types."""
    ops = []
    handle = 0
    try:
        op = next(gen)
        while True:
            ops.append(type(op))
            handle += 1
            op = gen.send(handle)
    except StopIteration:
        return ops


def test_empty_alltoall_skips_local_copy():
    """A zero-length partition must not charge the self-partition memcpy."""
    comm = SimComm(0, 1)
    empty = np.zeros(0, dtype=np.int64)
    ops = _yielded_ops(comm.alltoall(empty, empty))
    assert LocalCopy not in ops
    # and with data, the memcpy is charged as before
    comm2 = SimComm(0, 1)
    buf = np.arange(3, dtype=np.int64)
    ops2 = _yielded_ops(comm2.alltoall(buf, np.zeros(3, dtype=np.int64)))
    assert LocalCopy in ops2 and Wait in ops2


@pytest.mark.parametrize("algorithm", sorted(list_algorithms("alltoall")))
def test_alltoall_rejects_indivisible_every_algorithm(algorithm):
    def program():
        comm = SimComm(0, 2, collectives={"alltoall": algorithm})
        yield from comm.alltoall(
            np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64)
        )

    with pytest.raises(SimulationError, match="not divisible"):
        simulate([program()], MPICH_GM)


@pytest.mark.parametrize("algorithm", sorted(list_algorithms("alltoall")))
def test_alltoall_rejects_mismatched_sizes_every_algorithm(algorithm):
    def program():
        comm = SimComm(0, 2, collectives={"alltoall": algorithm})
        yield from comm.alltoall(
            np.zeros(4, dtype=np.int64), np.zeros(8, dtype=np.int64)
        )

    with pytest.raises(SimulationError, match="differ"):
        simulate([program()], MPICH_GM)


def test_allreduce_rejects_mismatched_sizes():
    def program():
        comm = SimComm(0, 2)
        yield from comm.allreduce(
            np.zeros(4, dtype=np.int64), np.zeros(5, dtype=np.int64)
        )

    with pytest.raises(SimulationError, match="sizes differ"):
        simulate([program()], MPICH_GM)


def test_allreduce_rejects_unknown_op():
    def program():
        comm = SimComm(0, 2)
        yield from comm.allreduce(
            np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int64), op="xor"
        )

    with pytest.raises(SimulationError, match="unknown reduction op"):
        simulate([program()], MPICH_GM)


def test_allgather_rejects_bad_recv_length():
    def program():
        comm = SimComm(0, 2)
        yield from comm.allgather(
            np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int64)
        )

    with pytest.raises(SimulationError, match="allgather recv length"):
        simulate([program()], MPICH_GM)


def test_bcast_rejects_bad_root():
    def program():
        comm = SimComm(0, 2)
        yield from comm.bcast(np.zeros(4, dtype=np.int64), root=2)

    with pytest.raises(SimulationError, match="root"):
        simulate([program()], MPICH_GM)


def test_zero_length_allreduce_and_bcast():
    res, _, recvs = run_allreduce(4, 0, "recursive-doubling")
    assert recvs[0].size == 0 and res.time >= 0
    res, _, recvs = run_allreduce(4, 0, "ring")
    assert recvs[0].size == 0 and res.time >= 0
    for algorithm in list_algorithms("bcast"):
        res, bufs = run_bcast(4, 0, algorithm, root=1)
        assert all(b.size == 0 for b in bufs) and res.time >= 0


# ------------------------------------ the knob through the cluster runner


def test_run_cluster_collective_knob_equivalence():
    """Interpreter programs produce identical arrays under every
    algorithm choice (the knob changes timing, never data)."""
    from repro.apps import build_app
    from repro.interp import run_cluster

    app = build_app("cg", n=16, nranks=4, steps=2, ndots=4, stages=2)
    base = run_cluster(app.source, app.nranks, "gmnet")
    alt = run_cluster(
        app.source, app.nranks, "gmnet", collective={"allreduce": "ring"}
    )
    for r in range(app.nranks):
        for name in app.check_arrays:
            assert np.array_equal(base.arrays[r][name], alt.arrays[r][name])
    assert base.time != alt.time  # the schedule did change


def test_fft_original_timing_shifts_with_alltoall_algorithm():
    from repro.apps import build_app
    from repro.harness.runner import measure

    app = build_app("fft", n=8, nranks=4, steps=1, stages=2)
    times = {
        algo: measure(
            app.source, 4, MPICH_GM, collective={"alltoall": algo}
        ).time
        for algo in list_algorithms("alltoall")
    }
    assert len(set(times.values())) > 1  # algorithms are distinguishable
    m = measure(app.source, 4, MPICH_GM, collective="bruck")
    assert "alltoall=bruck" in m.collective
