"""Network model cost functions: host-based vs NIC-offload semantics."""

import pytest

from repro.runtime.network import IDEAL, MPICH_GM, MPICH_P4, PRESETS, NetworkModel


class TestPresets:
    def test_presets_registered(self):
        # the classic names survive the registry refactor, plus aliases
        assert {"mpich", "mpich-gm", "ideal", "hostnet", "gmnet"} <= set(
            PRESETS
        )
        assert PRESETS["mpich-gm"] is MPICH_GM
        assert PRESETS["gmnet"] is MPICH_GM
        assert PRESETS["hostnet"] is MPICH_P4

    def test_gm_offloads(self):
        assert MPICH_GM.offload
        assert not MPICH_P4.offload

    def test_gm_is_faster_wire(self):
        assert MPICH_GM.byte_time < MPICH_P4.byte_time
        assert MPICH_GM.latency < MPICH_P4.latency


class TestSendCpuCost:
    def test_offload_send_cost_size_independent(self):
        assert MPICH_GM.send_cpu_cost(8) == MPICH_GM.send_cpu_cost(1 << 20)

    def test_host_send_cost_grows_with_size(self):
        small = MPICH_P4.send_cpu_cost(8)
        big = MPICH_P4.send_cpu_cost(1 << 20)
        assert big > small
        assert big - small == pytest.approx(
            ((1 << 20) - 8) * MPICH_P4.host_byte_time
        )

    def test_ideal_is_free(self):
        assert IDEAL.send_cpu_cost(1 << 20) == 0.0
        assert IDEAL.wire_time(1 << 20) == 0.0
        assert IDEAL.recv_cpu_cost() == 0.0


class TestWireAndCopies:
    def test_wire_time_linear(self):
        assert MPICH_GM.wire_time(1000) == pytest.approx(
            1000 * MPICH_GM.byte_time
        )

    def test_unexpected_copy_cost(self):
        assert MPICH_GM.unexpected_copy_cost(100) == pytest.approx(
            100 * MPICH_GM.copy_byte_time
        )

    def test_local_copy_cost(self):
        assert MPICH_P4.local_copy_cost(64) == pytest.approx(
            64 * MPICH_P4.copy_byte_time
        )


class TestWith:
    def test_with_overrides_field(self):
        m = MPICH_GM.with_(latency=1e-3)
        assert m.latency == 1e-3
        assert m.byte_time == MPICH_GM.byte_time
        assert MPICH_GM.latency != 1e-3  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            MPICH_GM.latency = 0.0  # type: ignore[misc]
