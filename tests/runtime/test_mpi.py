"""SimComm: the simulated MPI layer (alltoall semantics, handle tracking)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.runtime.mpi import SimComm
from repro.runtime.network import IDEAL, MPICH_GM
from repro.runtime.simulator import simulate


def test_invalid_rank_rejected():
    with pytest.raises(SimulationError):
        SimComm(4, 4)
    with pytest.raises(SimulationError):
        SimComm(-1, 4)


def test_rank_size_properties():
    c = SimComm(2, 8)
    assert c.rank == 2
    assert c.size == 8


def _alltoall_once(nranks: int, part: int):
    """Run one alltoall; returns per-rank receive buffers."""
    sends = [
        np.arange(nranks * part, dtype=np.int64) + 1000 * r
        for r in range(nranks)
    ]
    recvs = [np.zeros(nranks * part, dtype=np.int64) for _ in range(nranks)]

    def program(rank):
        comm = SimComm(rank, nranks)
        yield from comm.alltoall(sends[rank], recvs[rank])

    simulate([program(r) for r in range(nranks)], MPICH_GM)
    return sends, recvs


@pytest.mark.parametrize("nranks,part", [(2, 3), (4, 2), (8, 5)])
def test_alltoall_permutation_semantics(nranks, part):
    """Partition j of rank r's sendbuf lands in partition r of rank j's
    recvbuf — the MPI_ALLTOALL contract."""
    sends, recvs = _alltoall_once(nranks, part)
    for r in range(nranks):
        for j in range(nranks):
            expected = sends[r][j * part : (j + 1) * part]
            got = recvs[j][r * part : (r + 1) * part]
            assert np.array_equal(got, expected), (r, j)


def test_alltoall_self_partition_copied():
    sends, recvs = _alltoall_once(4, 3)
    for r in range(4):
        assert np.array_equal(
            recvs[r][r * 3 : (r + 1) * 3], sends[r][r * 3 : (r + 1) * 3]
        )


def test_alltoall_rejects_indivisible():
    def program():
        comm = SimComm(0, 2)
        yield from comm.alltoall(
            np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64)
        )

    with pytest.raises(SimulationError, match="not divisible"):
        simulate([program()], IDEAL)


def test_alltoall_rejects_mismatched_sizes():
    def program():
        comm = SimComm(0, 2)
        yield from comm.alltoall(
            np.zeros(4, dtype=np.int64), np.zeros(8, dtype=np.int64)
        )

    with pytest.raises(SimulationError, match="differ"):
        simulate([program()], IDEAL)


def test_handle_bookkeeping():
    """waitall_sends / waitall_recvs wait only their own class of handles."""
    trace = {}

    def rank0():
        comm = SimComm(0, 2)
        yield from comm.isend(np.ones(1, dtype=np.int64), dest=1, tag=0)
        assert comm.outstanding_sends == 1
        yield from comm.waitall_sends()
        trace["sends_after"] = comm.outstanding_sends
        yield from comm.isend(np.ones(1, dtype=np.int64), dest=1, tag=1)
        yield from comm.waitall()
        trace["all_after"] = comm.outstanding_sends + comm.outstanding_recvs

    def rank1():
        comm = SimComm(1, 2)
        b0 = np.zeros(1, dtype=np.int64)
        b1 = np.zeros(1, dtype=np.int64)
        yield from comm.irecv(b0, source=0, tag=0)
        yield from comm.irecv(b1, source=0, tag=1)
        assert comm.outstanding_recvs == 2
        yield from comm.waitall_recvs()
        trace["recvs_after"] = comm.outstanding_recvs

    simulate([rank0(), rank1()], MPICH_GM)
    assert trace == {"sends_after": 0, "all_after": 0, "recvs_after": 0}


def test_irecv_callable_requires_nbytes():
    def program():
        comm = SimComm(0, 2)
        yield from comm.irecv(lambda payload: None, source=1, tag=0)

    with pytest.raises(SimulationError, match="nbytes"):
        simulate([program(), iter([])], IDEAL)


def test_compute_helper():
    def program():
        comm = SimComm(0, 1)
        yield from comm.compute(2.5)

    res = simulate([program()], IDEAL)
    assert res.time == pytest.approx(2.5)


def test_alltoall_message_count():
    """Pairwise implementation: NP-1 sends per rank, nothing to self."""
    nranks = 4
    sends = [np.zeros(8, dtype=np.int64) for _ in range(nranks)]
    recvs = [np.zeros(8, dtype=np.int64) for _ in range(nranks)]

    def program(rank):
        comm = SimComm(rank, nranks)
        yield from comm.alltoall(sends[rank], recvs[rank])

    res = simulate([program(r) for r in range(nranks)], MPICH_GM)
    for s in res.stats:
        assert s.messages_sent == nranks - 1
        assert s.messages_received == nranks - 1


def test_conservation_of_bytes():
    nranks = 4
    part = 16
    sends = [np.zeros(nranks * part, dtype=np.int64) for _ in range(nranks)]
    recvs = [np.zeros(nranks * part, dtype=np.int64) for _ in range(nranks)]

    def program(rank):
        comm = SimComm(rank, nranks)
        yield from comm.alltoall(sends[rank], recvs[rank])

    res = simulate([program(r) for r in range(nranks)], MPICH_GM)
    sent = sum(s.bytes_sent for s in res.stats)
    received = sum(s.bytes_received for s in res.stats)
    assert sent == received
    assert sent == nranks * (nranks - 1) * part * 8
