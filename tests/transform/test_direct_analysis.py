"""Direct-pattern site analysis: geometry, schemes, rejection diagnostics."""

import pytest
from tests.programs import direct_1d, direct_2d

from repro.analysis.patterns import find_opportunities
from repro.errors import TransformError
from repro.lang import parse
from repro.transform.direct import analyze_direct
from repro.transform.layout import resolve_layout


def _opportunity(src: str):
    source = parse(src)
    result = find_opportunities(source)
    assert result.opportunities, [r.reason for r in result.rejections]
    return result.opportunities[0]


def _plan(src: str, k: int):
    opp = _opportunity(src)
    return analyze_direct(opp, resolve_layout(opp), k)


class TestSchemeSelection:
    def test_1d_is_scheme_b(self):
        plan = _plan(direct_1d(n=64, nprocs=8), 8)
        assert plan.scheme == "B"
        assert plan.tiled_dim == 0
        assert plan.block_elems == 8 * 1  # K * lead

    def test_2d_node_inner_is_scheme_a(self):
        plan = _plan(direct_2d(n=16, nprocs=4), 4)
        assert plan.scheme == "A"
        assert plan.tiled_dim == 0
        # per peer per tile: K * other * planes = 4 * 1 * 4
        assert plan.elems_per_tile_per_partition == 16

    def test_tile_geometry(self):
        plan = _plan(direct_2d(n=16, nprocs=4), 5)
        assert plan.ntiles == 3
        assert plan.leftover == 1
        assert (plan.tile_lo, plan.tile_hi) == (1, 16)


class TestLayout:
    def test_layout_facts(self):
        opp = _opportunity(direct_2d(n=16, nprocs=4))
        layout = resolve_layout(opp)
        assert layout.dims == ((1, 16), (1, 16))
        assert layout.nprocs == 4
        assert layout.part == 64
        assert layout.planes_per_partition == 4
        assert layout.lead == 16
        assert layout.total == 256

    def test_zero_based_bounds(self):
        src = """
program zb
  integer, parameter :: n = 8, np = 4
  integer :: as(0:n - 1, 0:n - 1)
  integer :: ar(0:n - 1, 0:n - 1)
  integer :: i, j, ierr

  do i = 0, n - 1
    do j = 0, n - 1
      as(i, j) = i * 10 + j
    enddo
  enddo
  call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
end program zb
"""
        opp = _opportunity(src)
        layout = resolve_layout(opp)
        assert layout.dims == ((0, 7), (0, 7))
        assert layout.last_lo == 0
        plan = analyze_direct(opp, layout, 2)
        assert plan.scheme == "A"
        assert plan.tile_lo == 0

    def test_size_mismatch_rejected(self):
        src = """
program bad
  integer, parameter :: n = 16, np = 4
  integer :: as(1:n)
  integer :: ar(1:n * 2)
  integer :: i, ierr

  do i = 1, n
    as(i) = i
  enddo
  call mpi_alltoall(as, n / np, 0, ar, n / np, 0, 0, ierr)
end program bad
"""
        opp = _opportunity(src)
        with pytest.raises(TransformError, match="differ in size"):
            resolve_layout(opp)

    def test_count_not_dividing_rejected(self):
        src = """
program bad
  integer, parameter :: n = 16
  integer :: as(1:n)
  integer :: ar(1:n)
  integer :: i, ierr

  do i = 1, n
    as(i) = i
  enddo
  call mpi_alltoall(as, 5, 0, ar, 5, 0, 0, ierr)
end program bad
"""
        opp = _opportunity(src)
        with pytest.raises(TransformError, match="does not divide"):
            resolve_layout(opp)

    def test_single_rank_rejected(self):
        src = """
program solo
  integer, parameter :: n = 16
  integer :: as(1:n)
  integer :: ar(1:n)
  integer :: i, ierr

  do i = 1, n
    as(i) = i
  enddo
  call mpi_alltoall(as, n, 0, ar, n, 0, 0, ierr)
end program solo
"""
        opp = _opportunity(src)
        with pytest.raises(TransformError, match="nothing to transform"):
            resolve_layout(opp)


class TestRejectionDiagnostics:
    def _expect_error(self, src: str, match: str, k: int = 2):
        opp = _opportunity(src)
        layout = resolve_layout(opp)
        with pytest.raises(TransformError, match=match):
            analyze_direct(opp, layout, k)

    def test_partial_coverage(self):
        self._expect_error(
            """
program partial
  integer, parameter :: n = 16, np = 4
  integer :: as(1:n)
  integer :: ar(1:n)
  integer :: i, ierr

  do i = 1, n - 2
    as(i) = i
  enddo
  call mpi_alltoall(as, n / np, 0, ar, n / np, 0, 0, ierr)
end program partial
""",
            match="not.*fully written|spans",
        )

    def test_strided_write(self):
        self._expect_error(
            """
program strided
  integer, parameter :: n = 16, np = 4
  integer :: as(1:n)
  integer :: ar(1:n)
  integer :: i, ierr

  do i = 1, n / 2
    as(2 * i) = i
  enddo
  call mpi_alltoall(as, n / np, 0, ar, n / np, 0, 0, ierr)
end program strided
""",
            match="strides by 2",
        )

    def test_two_writes_rejected(self):
        self._expect_error(
            """
program multi
  integer, parameter :: n = 16, np = 2
  integer :: as(1:n, 1:2)
  integer :: ar(1:n, 1:2)
  integer :: i, ierr

  do i = 1, n
    as(i, 1) = i
    as(i, 2) = -i
  enddo
  call mpi_alltoall(as, n * 2 / np, 0, ar, n * 2 / np, 0, 0, ierr)
end program multi
""",
            match="2 write references",
        )

    def test_coupled_subscript(self):
        self._expect_error(
            """
program coupled
  integer, parameter :: n = 4, np = 2
  integer :: as(1:n * n)
  integer :: ar(1:n * n)
  integer :: i, j, ierr

  do i = 1, n
    do j = 1, n
      as((i - 1) * n + j) = i + j
    enddo
  enddo
  call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
end program coupled
""",
            match="couples loop variables",
        )

    def test_diagonal_access_rejected_at_pattern_level(self):
        """as(i, i) is rewritten every j iteration: the output-dependence
        analysis already refuses the site before code generation."""
        src = """
program diag
  integer, parameter :: n = 8, np = 2
  integer :: as(1:n, 1:n)
  integer :: ar(1:n, 1:n)
  integer :: i, j, ierr

  do i = 1, n
    do j = 1, n
      as(i, i) = i + j
    enddo
  enddo
  call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
end program diag
"""
        result = find_opportunities(parse(src))
        assert not result.opportunities
        assert any(
            "output dependences" in r.reason for r in result.rejections
        )

    def test_reversed_traversal(self):
        self._expect_error(
            """
program reversed
  integer, parameter :: n = 16, np = 4
  integer :: as(1:n)
  integer :: ar(1:n)
  integer :: i, ierr

  do i = 1, n
    as(n - i + 1) = i
  enddo
  call mpi_alltoall(as, n / np, 0, ar, n / np, 0, 0, ierr)
end program reversed
""",
            match="in reverse",
        )

    def test_scheme_b_tile_straddles_partition(self):
        self._expect_error(
            direct_1d(n=64, nprocs=8),
            match="does not divide the partition thickness",
            k=16,  # planes = 8, K=16 straddles
        )
