"""Golden test: the indirect-pattern transformation of the paper's Figure 3.

Checks the §3.4 rewrite: the copy loop ℓcp is gone, ``At`` gained the
double-buffer slot dimension, the producer call is redirected to
``at(1, slot)`` by sequence association, and each slab is sent directly
``At -> Ar`` (the transitivity argument), with the previous tile's sends
waited before the bank is reused.
"""

import textwrap

from tests.programs import indirect_3d
from repro.transform import Compuniformer

GOLDEN = textwrap.dedent(
    """\
    program indirectk
      integer, parameter :: n = 8, np = 4
      integer :: as(n, n, n)
      integer :: ar(n, n, n)
      integer :: at(n * n, 4)
      integer :: iy, ix, tx, ty, ierr
      integer :: pp_me, pp_j, pp_to, pp_from, pp_c1, pp_c2, pp_c3, pp_slot, pp_s, pp_g, pp_q

      pp_me = mynode()
      do iy = 1, n
        pp_slot = mod(iy - 1, 4) + 1
        call producer(iy, at(1, pp_slot))
        if (mod(iy, 2) == 0) then
          ! wait for the previous tile's sends (bank reuse)
          call mpi_waitall_sends(ierr)
          do pp_s = 1, 2
            pp_g = iy - 1 + (pp_s - 1)
            pp_to = (pp_g - 1) / 2
            if (pp_to /= pp_me) then
              call mpi_isend(at(1, mod(iy / 2 - 1, 2) * 2 + pp_s), 64, pp_to, pp_g, ierr)
            endif
            if (pp_to == pp_me) then
              do pp_j = 1, 3
                pp_from = mod(4 + pp_me - pp_j, 4)
                call mpi_irecv(ar(1, 1, 1 + (pp_from * 2 + (pp_g - 1 - pp_me * 2))), 64, pp_from, pp_g, ierr)
              enddo
              pp_q = 0
              do pp_c3 = 1 + (pp_g - 1), 1 + (pp_g - 1)
                do pp_c2 = 1, 8
                  do pp_c1 = 1, 8
                    pp_q = pp_q + 1
                    ar(pp_c1, pp_c2, pp_c3) = at(pp_q, mod(iy / 2 - 1, 2) * 2 + pp_s)
                  enddo
                enddo
              enddo
            endif
          enddo
        endif
      enddo
      ! wait for the last blocks of data
      call mpi_waitall(ierr)
    end program indirectk

    subroutine producer(step, buf)
      integer :: step
      integer :: buf(64)
      integer :: i

      do i = 1, 64
        buf(i) = mod(i * 13 + step * 7 + mynode() * 31, 1024)
      enddo
    end subroutine producer
    """
)


def test_figure3_transformation_golden(indirect_source):
    report = Compuniformer(tile_size=2).transform(indirect_source)
    assert report.transformed
    assert report.unparse() == GOLDEN


def test_figure3_report_metadata(indirect_source):
    report = Compuniformer(tile_size=2).transform(indirect_source)
    (site,) = report.sites
    assert site.kind.value == "indirect"
    assert site.scheme == "slab"
    assert site.tile_size == 2
    assert site.trip == 8
    assert site.ntiles == 4
    assert site.leftover == 0
    assert site.dead_arrays == ("as",)
    assert any("copy loop" in n for n in site.notes)


def test_figure3_structure(indirect_source):
    report = Compuniformer(tile_size=2).transform(indirect_source)
    text = report.unparse()
    # copy loop removed: As is never assigned anymore
    assert "as(tx, ty, iy)" not in text
    # At expanded with the double-buffer dimension (2K = 4)
    assert "at(n * n, 4)" in text
    # producer redirected by sequence association
    assert "call producer(iy, at(1, pp_slot))" in text
    # the collective is gone
    assert "mpi_alltoall" not in text
