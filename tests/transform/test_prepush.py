"""Compuniformer orchestration: schemes, options, errors, rejections."""

import pytest
from tests.programs import direct_1d, direct_2d, indirect_3d, nodeloop_outer

from repro.errors import TransformError
from repro.lang import parse
from repro.lang.ast_nodes import CallStmt, If
from repro.lang.visitor import statements
from repro.transform import Compuniformer, prepush
from repro.transform.prepush import _ordinal_expr
from repro.lang.unparser import unparse as unparse_node


class TestConstruction:
    def test_bad_tile_size_string(self):
        with pytest.raises(TransformError):
            Compuniformer(tile_size="biggish")

    def test_bad_tile_size_zero(self):
        with pytest.raises(TransformError):
            Compuniformer(tile_size=0)

    def test_bad_interchange(self):
        with pytest.raises(TransformError):
            Compuniformer(interchange="sometimes")


class TestDirectSchemeA:
    def test_scheme_a_detected(self, twod_source):
        report = Compuniformer(tile_size=4).transform(twod_source)
        (site,) = report.sites
        assert site.scheme == "A"
        assert site.kind.value == "direct"

    def test_pairwise_loop_present(self, twod_source):
        report = Compuniformer(tile_size=4).transform(twod_source)
        text = report.unparse()
        assert "do pp_j = 1, 3" in text  # NP - 1 rounds
        assert "mpi_isend" in text and "mpi_irecv" in text

    def test_sends_sections_of_both_dims(self, twod_source):
        text = Compuniformer(tile_size=4).transform(twod_source).unparse()
        # scheme A sends As(tile-rows, peer-partition) as a 2-D section
        assert "call mpi_isend(as(ix - 3:ix, " in text

    def test_leftover_block_generated(self):
        # trip 16, K 5 -> 3 full tiles + leftover 1
        report = Compuniformer(tile_size=5).transform(direct_2d(n=16, nprocs=4))
        (site,) = report.sites
        assert site.ntiles == 3
        assert site.leftover == 1
        text = report.unparse()
        assert "leftover" in text
        # leftover block sends sections ending at the loop's upper bound
        assert "as(16 - 0:16" in text or "as(16:16" in text

    def test_no_leftover_when_k_divides(self, twod_source):
        report = Compuniformer(tile_size=8).transform(twod_source)
        assert report.sites[0].leftover == 0
        assert "leftover" not in report.unparse()


class TestDirectSchemeB:
    def test_scheme_b_no_leftover_possible(self):
        # scheme B requires K | planes, and planes | trip, so leftover == 0
        for k in (2, 4, 8):
            report = Compuniformer(tile_size=k).transform(direct_1d())
            assert report.sites[0].leftover == 0

    def test_scheme_b_rejects_nondividing_k(self):
        report = Compuniformer(tile_size=3).transform(direct_1d())
        assert not report.transformed
        assert any(
            "does not divide the partition thickness" in r.reason
            for r in report.rejections
        )

    def test_k_larger_than_trip_rejected(self):
        report = Compuniformer(tile_size=1000).transform(direct_1d(n=64))
        assert not report.transformed


class TestInterchange:
    def test_auto_interchange_gives_scheme_a(self, nodeloop_source):
        report = Compuniformer(tile_size=4).transform(nodeloop_source)
        (site,) = report.sites
        assert site.interchanged
        assert site.scheme == "A"
        assert any("interchanged" in n for n in site.notes)

    def test_never_interchange_gives_scheme_b(self, nodeloop_source):
        report = Compuniformer(
            tile_size=4, interchange="never"
        ).transform(nodeloop_source)
        (site,) = report.sites
        assert not site.interchanged
        assert site.scheme == "B"

    def test_interchange_swaps_headers(self, nodeloop_source):
        text = Compuniformer(tile_size=4).transform(nodeloop_source).unparse()
        # originally "do iy" outer, "do ix" inner; after interchange ix is outer
        ix_pos = text.index("do ix")
        iy_pos = text.index("do iy")
        assert ix_pos < iy_pos


class TestAutoTileSize:
    def test_auto_direct(self, twod_source):
        report = Compuniformer(tile_size="auto").transform(twod_source)
        k = report.sites[0].tile_size
        assert 1 <= k <= 16

    def test_auto_respects_scheme_b_divisibility(self):
        report = Compuniformer(tile_size="auto").transform(
            direct_1d(n=64, nprocs=8)
        )
        site = report.sites[0]
        assert site.scheme == "B"
        assert (64 // 8) % site.tile_size == 0


class TestRejections:
    def test_program_without_alltoall(self):
        src = """
program nothing
  integer :: i
  integer :: a(1:4)

  do i = 1, 4
    a(i) = i
  enddo
end program nothing
"""
        report = Compuniformer().transform(src)
        assert not report.transformed
        assert report.rejections == []
        assert "no transformable" in report.describe()

    def test_branch_in_nest_rejected(self):
        src = """
program branchy
  integer, parameter :: n = 16, np = 4
  integer :: as(1:n)
  integer :: ar(1:n)
  integer :: i, ierr

  do i = 1, n
    if (i > 4) then
      as(i) = i
    else
      as(i) = -i
    endif
  enddo
  call mpi_alltoall(as, n / np, 0, ar, n / np, 0, 0, ierr)
end program branchy
"""
        report = Compuniformer(tile_size=2).transform(src)
        assert not report.transformed
        assert any("conditional" in r.reason for r in report.rejections)

    def test_rejections_deduplicated(self):
        src = """
program branchy
  integer, parameter :: n = 16, np = 4
  integer :: as(1:n)
  integer :: ar(1:n)
  integer :: i, ierr

  do i = 1, n
    if (i > 4) then
      as(i) = i
    endif
  enddo
  call mpi_alltoall(as, n / np, 0, ar, n / np, 0, 0, ierr)
end program branchy
"""
        report = Compuniformer().transform(src)
        reasons = [(id(r.call), r.reason) for r in report.rejections]
        assert len(reasons) == len(set(reasons))

    def test_max_sites_limits_work(self):
        src = direct_1d()
        report = Compuniformer(tile_size=8, max_sites=0).transform(src)
        assert not report.transformed


class TestMultiSite:
    def test_two_sites_both_transformed(self):
        src = """
program twosites
  integer, parameter :: n = 16, np = 4
  integer :: as(1:n)
  integer :: ar(1:n)
  integer :: bs(1:n)
  integer :: br(1:n)
  integer :: i, ierr

  do i = 1, n
    as(i) = i * 2
  enddo
  call mpi_alltoall(as, n / np, 0, ar, n / np, 0, 0, ierr)
  do i = 1, n
    bs(i) = i * 3
  enddo
  call mpi_alltoall(bs, n / np, 0, br, n / np, 0, 0, ierr)
end program twosites
"""
        report = Compuniformer(tile_size=2).transform(src)
        assert len(report.sites) == 2
        names = {(s.send_array, s.recv_array) for s in report.sites}
        assert names == {("as", "ar"), ("bs", "br")}
        # generated names must not collide between the two sites
        text = report.unparse()
        assert text.count("= mynode()") == 2
        assert "pp_me = mynode()" in text
        assert "pp_me2 = mynode()" in text


class TestProlog:
    def test_me_initialized_first(self, fig2_source):
        report = Compuniformer(tile_size=8).transform(fig2_source)
        first = report.source.main.body[0]
        assert unparse_node(first).strip() == "pp_me = mynode()"

    def test_generated_declarations_added(self, fig2_source):
        report = Compuniformer(tile_size=8).transform(fig2_source)
        text = report.unparse()
        for name in ("pp_me", "pp_j", "pp_to", "pp_from"):
            assert name in text

    def test_existing_ierr_reused(self, fig2_source):
        text = Compuniformer(tile_size=8).transform(fig2_source).unparse()
        assert "pp_ierr" not in text  # program already declares ierr


class TestOrdinalExpr:
    def test_lo_one_folds(self):
        assert unparse_node(_ordinal_expr("i", 1)) == "i"

    def test_general_lo(self):
        assert unparse_node(_ordinal_expr("i", 5)) == "i - 5 + 1"

    def test_zero_lo(self):
        # builder folds the subtraction of zero: (i - 0) + 1 == i + 1
        assert unparse_node(_ordinal_expr("i", 0)) == "i + 1"


class TestPrepushConvenience:
    def test_prepush_function(self, fig2_source):
        report = prepush(fig2_source, tile_size=8)
        assert report.transformed

    def test_transform_text(self, fig2_source):
        text = Compuniformer(tile_size=8).transform_text(fig2_source)
        parse(text)  # output reparses

    def test_transform_accepts_ast(self, fig2_source):
        ast = parse(fig2_source)
        report = Compuniformer(tile_size=8).transform(ast)
        assert report.transformed
        # caller's AST untouched: it still contains the collective
        assert any(
            isinstance(s, CallStmt) and s.name == "mpi_alltoall"
            for s in statements(ast.main.body)
        )


class TestOutputReparses:
    @pytest.mark.parametrize(
        "builder",
        [direct_1d, direct_2d, nodeloop_outer, indirect_3d],
        ids=["fig2", "2d", "nodeloop", "indirect"],
    )
    def test_roundtrip(self, builder):
        report = Compuniformer(tile_size=2).transform(builder())
        assert report.transformed
        reparsed = parse(report.unparse())
        assert len(reparsed.units) == len(report.source.units)
