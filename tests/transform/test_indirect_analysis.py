"""Indirect-pattern analysis: slab geometry and safety rejections."""

import pytest
from tests.programs import indirect_3d

from repro.analysis.patterns import PatternKind, find_opportunities
from repro.errors import TransformError
from repro.lang import parse
from repro.transform.indirect import analyze_indirect
from repro.transform.layout import resolve_layout


def _opportunity(src: str):
    source = parse(src)
    result = find_opportunities(source)
    assert result.opportunities, [r.reason for r in result.rejections]
    return result.opportunities[0]


class TestPlanGeometry:
    def test_basic_plan(self):
        opp = _opportunity(indirect_3d(n=8, nprocs=4))
        assert opp.kind is PatternKind.INDIRECT
        layout = resolve_layout(opp)
        plan = analyze_indirect(opp, layout, tile_size=2)
        assert plan.trip == 8
        assert plan.slab == 64  # n*n
        assert plan.slabs_per_partition == 2
        assert plan.planes_per_slab == 1
        assert plan.ntiles == 4
        assert plan.leftover == 0
        assert plan.at_rank == 1

    def test_leftover_tiles(self):
        opp = _opportunity(indirect_3d(n=8, nprocs=4))
        layout = resolve_layout(opp)
        plan = analyze_indirect(opp, layout, tile_size=3)
        assert plan.ntiles == 2
        assert plan.leftover == 2

    def test_tile_size_bounds(self):
        opp = _opportunity(indirect_3d(n=8, nprocs=4))
        layout = resolve_layout(opp)
        with pytest.raises(TransformError, match="outside"):
            analyze_indirect(opp, layout, tile_size=9)

    def test_copy_map_facts(self):
        opp = _opportunity(indirect_3d(n=8, nprocs=4))
        cm = opp.copy_map
        assert cm is not None
        assert cm.trip_count == 64
        assert cm.at_size == 64
        assert cm.slab_size == 64
        # slab base advances by exactly one slab per outer iteration
        assert cm.as_flat_base.coeff("iy") == 64


class TestPatternVerificationRejections:
    def test_copy_not_full_buffer(self):
        src = """
program short
  integer, parameter :: n = 8, np = 4
  integer :: as(1:n, 1:n, 1:n)
  integer :: ar(1:n, 1:n, 1:n)
  integer :: at(1:n * n)
  integer :: iy, ix, tx, ty, ierr

  do iy = 1, n
    call producer(iy, at)
    do ix = 1, n * n / 2
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1) / n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, n * n * n / np, 0, ar, n * n * n / np, 0, 0, ierr)
end program short

subroutine producer(step, buf)
  integer :: step
  integer :: buf(1:64)
  integer :: i

  do i = 1, 64
    buf(i) = i + step
  enddo
end subroutine producer
"""
        result = find_opportunities(parse(src))
        assert not result.opportunities
        assert any(
            "not a full-buffer copy" in r.reason for r in result.rejections
        )

    def test_permuted_copy_rejected(self):
        """A copy that reverses At's order is not flat-order preserving."""
        src = """
program permuted
  integer, parameter :: n = 8, np = 4
  integer :: as(1:n, 1:n, 1:n)
  integer :: ar(1:n, 1:n, 1:n)
  integer :: at(1:n * n)
  integer :: iy, ix, tx, ty, ierr

  do iy = 1, n
    call producer(iy, at)
    do ix = 1, n * n
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1) / n + 1
      as(tx, ty, iy) = at(n * n - ix + 1)
    enddo
  enddo
  call mpi_alltoall(as, n * n * n / np, 0, ar, n * n * n / np, 0, 0, ierr)
end program permuted

subroutine producer(step, buf)
  integer :: step
  integer :: buf(1:64)
  integer :: i

  do i = 1, 64
    buf(i) = i + step
  enddo
end subroutine producer
"""
        result = find_opportunities(parse(src))
        assert not result.opportunities
        assert any(
            "flat order" in r.reason for r in result.rejections
        )

    def test_unknown_producer_conservative_default(self):
        """Producer with no source and no oracle: the default
        ConservativeOracle assumes mutation (§3.1's sound fallback), so the
        site is still classified as indirect."""
        src = """
program ext
  integer, parameter :: n = 8, np = 4
  integer :: as(1:n, 1:n, 1:n)
  integer :: ar(1:n, 1:n, 1:n)
  integer :: at(1:n * n)
  integer :: iy, ix, tx, ty, ierr

  do iy = 1, n
    call producer(iy, at)
    do ix = 1, n * n
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1) / n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, n * n * n / np, 0, ar, n * n * n / np, 0, 0, ierr)
end program ext
"""
        result = find_opportunities(parse(src))
        assert len(result.opportunities) == 1
        assert result.opportunities[0].kind is PatternKind.INDIRECT

    def test_oracle_denial_rejects_indirect(self):
        """A user answering 'producer does NOT write At' blocks the
        classification — the §3.1 query actually gates the transform."""
        from repro.analysis.callinfo import DictOracle

        src = """
program ext
  integer, parameter :: n = 8, np = 4
  integer :: as(1:n, 1:n, 1:n)
  integer :: ar(1:n, 1:n, 1:n)
  integer :: at(1:n * n)
  integer :: iy, ix, tx, ty, ierr

  do iy = 1, n
    call producer(iy, at)
    do ix = 1, n * n
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1) / n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, n * n * n / np, 0, ar, n * n * n / np, 0, 0, ierr)
end program ext
"""
        result = find_opportunities(
            parse(src), oracle=DictOracle({"producer": set()}, default=False)
        )
        assert not result.opportunities
        assert any(
            "does not appear to write" in r.reason for r in result.rejections
        )

    def test_oracle_answer_enables_transformation(self):
        from repro.analysis.callinfo import DictOracle

        src = """
program ext
  integer, parameter :: n = 8, np = 4
  integer :: as(1:n, 1:n, 1:n)
  integer :: ar(1:n, 1:n, 1:n)
  integer :: at(1:n * n)
  integer :: iy, ix, tx, ty, ierr

  do iy = 1, n
    call producer(iy, at)
    do ix = 1, n * n
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1) / n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, n * n * n / np, 0, ar, n * n * n / np, 0, 0, ierr)
end program ext
"""
        result = find_opportunities(
            parse(src), oracle=DictOracle({"producer": {1}})
        )
        assert len(result.opportunities) == 1
        assert result.opportunities[0].kind is PatternKind.INDIRECT
