"""The Figure 4 communication generator: structure and semantics."""

from repro.lang import builder as b
from repro.lang import parse
from repro.lang.ast_nodes import ArrayRef, Assign, CallStmt, DoLoop, Slice
from repro.lang.unparser import unparse
from repro.transform.commgen import (
    figure4_loop,
    final_wait,
    peer_from_expr,
    peer_to_expr,
    wait_previous_tile,
)
from repro.transform.names import SiteNames
from repro.transform.naming import NamePool


def _names() -> SiteNames:
    unit = parse(
        "program t\n  integer :: x\n  x = 1\nend program t"
    ).main
    return SiteNames.allocate(unit, NamePool(unit))


def test_peer_expressions_match_figure4():
    names = _names()
    assert unparse(peer_to_expr(names, 8)) == f"mod({names.me} + {names.j}, 8)"
    assert (
        unparse(peer_from_expr(names, 8))
        == f"mod(8 + {names.me} - {names.j}, 8)"
    )


def test_peer_schedule_is_a_permutation_each_round():
    """Round j: the map rank -> mod(rank+j, NP) is a bijection, and the
    receive side is its exact inverse — the staggering that avoids
    endpoint contention."""
    np_ = 8
    for j in range(1, np_):
        dests = [(me + j) % np_ for me in range(np_)]
        srcs = [(np_ + me - j) % np_ for me in range(np_)]
        assert sorted(dests) == list(range(np_))
        # if me sends to d in round j, then d's computed source is me
        for me in range(np_):
            d = (me + j) % np_
            assert (np_ + d - j) % np_ == me
        assert sorted(srcs) == list(range(np_))


def test_figure4_loop_structure():
    names = _names()
    loop = figure4_loop(
        names,
        4,
        lambda peer: ArrayRef(name="as", subs=[Slice(lo=b.lit(1), hi=b.lit(8))]),
        lambda peer: ArrayRef(name="ar", subs=[Slice(lo=b.lit(1), hi=b.lit(8))]),
        count=8,
        tag_expr=b.lit(3),
    )
    assert isinstance(loop, DoLoop)
    assert loop.var == names.j
    assert unparse(loop.lo) == "1"
    assert unparse(loop.hi) == "3"  # NP - 1
    kinds = [type(s).__name__ for s in loop.body]
    assert kinds == ["Assign", "CallStmt", "Assign", "CallStmt"]
    send = loop.body[1]
    recv = loop.body[3]
    assert send.name == "mpi_isend"
    assert recv.name == "mpi_irecv"
    # argument convention: (buf, count, peer, tag, ierr)
    assert unparse(send.args[1]) == "8"
    assert unparse(send.args[2]) == names.to
    assert unparse(recv.args[2]) == names.from_
    assert unparse(send.args[4]) == names.ierr


def test_figure4_tag_not_shared_between_send_and_recv():
    names = _names()
    tag = b.add(b.var("ix"), 1)
    loop = figure4_loop(
        names,
        4,
        lambda peer: b.var("as"),
        lambda peer: b.var("ar"),
        count=4,
        tag_expr=tag,
    )
    send, recv = loop.body[1], loop.body[3]
    assert send.args[3] is tag
    assert recv.args[3] is not tag
    assert unparse(recv.args[3]) == unparse(tag)


def test_buffer_callbacks_receive_peer_variable():
    names = _names()
    seen = []
    figure4_loop(
        names,
        4,
        lambda peer: seen.append(("send", unparse(peer))) or b.var("as"),
        lambda peer: seen.append(("recv", unparse(peer))) or b.var("ar"),
        count=4,
        tag_expr=b.lit(0),
    )
    assert ("send", names.to) in seen
    assert ("recv", names.from_) in seen


def test_wait_helpers():
    names = _names()
    prev = wait_previous_tile(names)
    assert any(
        isinstance(s, CallStmt) and s.name == "mpi_waitall_recvs" for s in prev
    )
    last = final_wait(names)
    assert any(
        isinstance(s, CallStmt) and s.name == "mpi_waitall" for s in last
    )


def test_generated_loop_unparses_and_reparses():
    names = _names()
    loop = figure4_loop(
        names,
        8,
        lambda peer: ArrayRef(
            name="as", subs=[Slice(lo=b.lit(1), hi=b.lit(4)), b.clone_expr(peer)]
        ),
        lambda peer: ArrayRef(
            name="ar", subs=[Slice(lo=b.lit(1), hi=b.lit(4)), b.clone_expr(peer)]
        ),
        count=4,
        tag_expr=b.lit(1),
    )
    text = unparse(loop)
    wrapped = (
        "program t\n  integer :: x\n\n" +
        "\n".join("  " + l for l in text.strip().splitlines()) +
        "\nend program t\n"
    )
    parse(wrapped)  # must not raise
