"""Tile geometry invariants (unit + property-based)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TransformError
from repro.transform.tiling import (
    Tiling,
    choose_tile_size,
    comm_rounds,
    divisors,
    overlap_headroom,
)


class TestTiling:
    def test_exact_division(self):
        t = Tiling(1, 12, 4)
        assert t.trip == 12
        assert t.ntiles == 3
        assert t.leftover == 0
        assert t.nblocks == 3
        assert t.ranges() == [(1, 4), (5, 8), (9, 12)]

    def test_leftover(self):
        t = Tiling(1, 10, 4)
        assert t.ntiles == 2
        assert t.leftover == 2
        assert t.leftover_range() == (9, 10)
        assert t.ranges() == [(1, 4), (5, 8), (9, 10)]

    def test_nonunit_lower_bound(self):
        t = Tiling(5, 16, 3)
        assert t.trip == 12
        assert t.ranges()[0] == (5, 7)
        assert t.ranges()[-1] == (14, 16)

    def test_k_equals_trip(self):
        t = Tiling(1, 8, 8)
        assert t.ntiles == 1
        assert t.leftover == 0

    def test_k_one(self):
        t = Tiling(1, 5, 1)
        assert t.ntiles == 5
        assert all(lo == hi for lo, hi in t.ranges())

    def test_tile_of_and_is_tile_end(self):
        t = Tiling(1, 10, 4)
        assert t.tile_of(1) == 0
        assert t.tile_of(4) == 0
        assert t.tile_of(5) == 1
        assert t.tile_of(9) == 2  # leftover block
        assert t.is_tile_end(4)
        assert t.is_tile_end(8)
        assert not t.is_tile_end(10)  # leftover end is not a K boundary

    def test_invalid_k_rejected(self):
        with pytest.raises(TransformError):
            Tiling(1, 4, 5)
        with pytest.raises(TransformError):
            Tiling(1, 4, 0)

    def test_empty_range_rejected(self):
        with pytest.raises(TransformError):
            Tiling(5, 4, 1)

    def test_tile_range_bounds_checked(self):
        t = Tiling(1, 8, 4)
        with pytest.raises(TransformError):
            t.tile_range(2)
        with pytest.raises(TransformError):
            t.leftover_range()

    def test_tile_of_out_of_range(self):
        with pytest.raises(TransformError):
            Tiling(1, 8, 4).tile_of(9)


@given(
    lo=st.integers(-20, 20),
    trip=st.integers(1, 300),
    k=st.integers(1, 300),
)
def test_tiles_partition_the_range(lo, trip, k):
    """Union of block ranges == [lo, hi], disjoint and ordered."""
    if k > trip:
        k = trip
    hi = lo + trip - 1
    t = Tiling(lo, hi, k)
    ranges = t.ranges()
    # ordered, disjoint, contiguous
    assert ranges[0][0] == lo
    assert ranges[-1][1] == hi
    for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
        assert a1 + 1 == b0
    # sizes
    assert all(r1 - r0 + 1 == k for r0, r1 in ranges[: t.ntiles])
    if t.leftover:
        r0, r1 = ranges[-1]
        assert r1 - r0 + 1 == t.leftover
    assert comm_rounds(trip, k) == len(ranges)


@given(trip=st.integers(1, 1000), k=st.integers(1, 1000))
def test_every_iteration_in_exactly_one_tile(trip, k):
    if k > trip:
        k = trip
    t = Tiling(1, trip, k)
    ranges = t.ranges()
    for it in range(1, trip + 1):
        blocks = [i for i, (a, b) in enumerate(ranges) if a <= it <= b]
        assert blocks == [t.tile_of(it)]


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(7) == [1, 7]

    def test_square(self):
        assert divisors(16) == [1, 2, 4, 8, 16]

    def test_invalid(self):
        with pytest.raises(TransformError):
            divisors(0)

    @given(n=st.integers(1, 2000))
    def test_all_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(set(ds))
        assert 1 in ds and n in ds


class TestChooseTileSize:
    def test_unconstrained_targets_message_count(self):
        assert choose_tile_size(64, messages_target=8) == 8
        assert choose_tile_size(100, messages_target=10) == 10

    def test_clamped_to_trip(self):
        assert choose_tile_size(3) in (1, 2, 3)
        assert choose_tile_size(1) == 1

    def test_divisibility_constraint(self):
        k = choose_tile_size(64, must_divide=16)
        assert 16 % k == 0

    def test_divisor_closest_to_want(self):
        # want = 64/8 = 8; divisors of 12 are 1,2,3,4,6,12 -> closest to 8 is 6
        assert choose_tile_size(64, must_divide=12) == 6

    def test_constraint_caps_at_trip(self):
        # trip 4 but partition thickness 8: only divisors <= 4 allowed
        k = choose_tile_size(4, must_divide=8)
        assert k <= 4 and 8 % k == 0

    def test_invalid_trip(self):
        with pytest.raises(TransformError):
            choose_tile_size(0)

    @given(
        trip=st.integers(1, 500),
        planes=st.integers(1, 128),
    )
    def test_constraint_always_honored(self, trip, planes):
        k = choose_tile_size(trip, must_divide=planes)
        assert 1 <= k <= trip
        assert planes % k == 0


class TestOverlapHeadroom:
    def test_no_tiles(self):
        assert overlap_headroom(1.0, 1.0, 0) == 0.0

    def test_no_wire(self):
        assert overlap_headroom(1.0, 0.0, 4) == 0.0

    def test_compute_bound_hides_almost_all(self):
        # wire fully hidden behind compute except the last tile
        h = overlap_headroom(compute_per_tile=2.0, wire_per_tile=1.0, ntiles=10)
        assert h == pytest.approx(0.9)

    def test_comm_bound_hides_fraction(self):
        h = overlap_headroom(compute_per_tile=0.5, wire_per_tile=1.0, ntiles=10)
        assert h == pytest.approx(0.45)

    def test_single_tile_hides_nothing(self):
        assert overlap_headroom(1.0, 1.0, 1) == 0.0
