"""The composable pass pipeline and the variant registry (DESIGN.md §9).

The load-bearing suite is the golden parity block: the registered
``"prepush"`` pipeline must be **bit-identical** to the legacy
monolithic :class:`~repro.transform.prepush.Compuniformer` on every
configuration the figures use (figure1's indirect kernel plus the
Ablation A–G workload/tile/interchange grid).  Text equality is the
strongest possible form of that claim — the simulator is deterministic
in the program text (DESIGN.md §3.2), so identical text implies
identical virtual times and payloads; one simulated anchor test
re-proves that implication end to end.
"""

import pytest

from repro.apps import build_app
from repro.lang import parse, unparse
from repro.errors import TransformError
from repro.interp.runner import ClusterJob, execute_job
from repro.runtime.network import MPICH_GM
from repro.transform.options import TransformOptions
from repro.transform.pipeline import (
    CommGenPass,
    IndirectElimPass,
    InterchangePass,
    Pipeline,
    TilePass,
    _VARIANTS,
    get_variant,
    list_variants,
    register_variant,
    resolve_variant,
    variant_identity,
    variant_label,
)
from repro.transform.prepush import Compuniformer

# every (app, geometry) the figure/ablation suite transforms: figure1's
# indirect kernel plus the Ablation A-G rosters at their real sizes
FIGURE_CONFIGS = [
    ("figure1", "indirect", {"n": 32, "stages": 6, "nranks": 8}),
    ("ablation-A", "fft", {"n": 128, "steps": 1, "stages": 6, "nranks": 8}),
    ("ablation-B-np2", "fft", {"n": 128, "steps": 1, "stages": 6, "nranks": 2}),
    ("ablation-B-np16", "fft", {"n": 128, "steps": 1, "stages": 6, "nranks": 16}),
    ("ablation-D-figure2", "figure2", {"n": 4096, "steps": 1, "stages": 6, "nranks": 8}),
    ("ablation-D-sort", "sort", {"keys_per_dest": 1024, "steps": 1, "stages": 6, "nranks": 8}),
    ("ablation-D-stencil", "stencil", {"n": 96, "steps": 2, "nranks": 8}),
    ("ablation-D-lu", "lu", {"n": 96, "steps": 2, "nranks": 8}),
    ("ablation-E", "nodeloop", {"n": 96, "steps": 1, "stages": 6, "nranks": 8}),
]


@pytest.fixture
def scratch_registry():
    """Let a test register variants without leaking into the session."""
    added = []

    def register(name, pipeline, **kwargs):
        added.append(name)
        return register_variant(name, pipeline, **kwargs)

    yield register
    for name in added:
        _VARIANTS.pop(name, None)


class TestGoldenParity:
    """The pipeline's non-negotiable invariant: prepush == Compuniformer."""

    @pytest.mark.parametrize(
        "label,app_name,kwargs",
        FIGURE_CONFIGS,
        ids=[c[0] for c in FIGURE_CONFIGS],
    )
    def test_prepush_pipeline_matches_legacy_text(
        self, label, app_name, kwargs
    ):
        app = build_app(app_name, **kwargs)
        legacy = Compuniformer(oracle=app.oracle).transform(app.source)
        piped = get_variant("prepush").run(app.source, oracle=app.oracle)
        assert piped.unparse() == legacy.unparse()
        assert [
            (s.scheme, s.tile_size, s.trip, s.ntiles, s.leftover,
             s.interchanged, tuple(s.notes))
            for s in piped.sites
        ] == [
            (s.scheme, s.tile_size, s.trip, s.ntiles, s.leftover,
             s.interchanged, tuple(s.notes))
            for s in legacy.sites
        ]

    @pytest.mark.parametrize("tile", [1, 4, 8, 16, 32, 64, 128])
    def test_ablation_a_tile_grid_matches_legacy(self, tile):
        app = build_app("fft", n=128, steps=1, stages=6, nranks=8)
        legacy = Compuniformer(tile_size=tile).transform(app.source)
        piped = get_variant("prepush").run(
            app.source, TransformOptions(tile_size=tile)
        )
        assert piped.unparse() == legacy.unparse()

    def test_no_interchange_matches_legacy_never(self):
        app = build_app("nodeloop", n=96, steps=1, stages=6, nranks=8)
        legacy = Compuniformer(interchange="never").transform(app.source)
        piped = get_variant("no-interchange").run(app.source)
        assert piped.unparse() == legacy.unparse()
        # options.interchange='never' on the full pipeline is the same
        # knob through the other door
        knob = get_variant("prepush").run(
            app.source, TransformOptions(interchange="never")
        )
        assert knob.unparse() == legacy.unparse()

    TWO_SITE = """
program twosite
  integer, parameter :: n = 16, np = 4
  integer :: as(1:n, 1:n), ar(1:n, 1:n)
  integer :: bs(1:n, 1:n), br(1:n, 1:n)
  integer :: ix, iy, ierr

  do iy = 1, n
    do ix = 1, n
      as(ix, iy) = ix * 1000 + iy + mynode()
    enddo
  enddo
  call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
  do iy = 1, n
    do ix = 1, n
      bs(ix, iy) = ix * 2000 + iy + mynode()
    enddo
  enddo
  call mpi_alltoall(bs, n * n / np, 0, br, n * n / np, 0, 0, ierr)
end program twosite
"""

    @pytest.mark.parametrize("max_sites", [1, 2, None])
    def test_max_sites_matches_legacy_on_two_site_program(self, max_sites):
        """max_sites must cap EVERY pass: a site the planner will never
        rewrite must not have its loop nest interchanged either."""
        legacy = Compuniformer(max_sites=max_sites).transform(self.TWO_SITE)
        piped = get_variant("prepush").run(
            self.TWO_SITE, TransformOptions(max_sites=max_sites)
        )
        assert piped.unparse() == legacy.unparse()
        assert len(piped.sites) == len(legacy.sites)

    TWO_KINDS = """
program twokinds
  integer, parameter :: n = 16, m = 4, np = 4
  integer :: as(1:m), ar(1:m)
  integer :: bs(1:n, 1:n), br(1:n, 1:n)
  integer :: i, ix, iy, ierr

  do i = 1, m
    as(i) = i + mynode()
  enddo
  call mpi_alltoall(as, m / np, 0, ar, m / np, 0, 0, ierr)
  do iy = 1, n
    do ix = 1, n
      bs(ix, iy) = ix * 1000 + iy + mynode()
    enddo
  enddo
  call mpi_alltoall(bs, n * n / np, 0, br, n * n / np, 0, 0, ierr)
end program twokinds
"""

    def test_max_sites_budget_skips_rejected_sites_like_legacy(self):
        """A site the planner rejects (K exceeds its trip) must not
        consume the interchange budget: the cap counts accepted sites,
        exactly as the monolithic driver's loop does."""
        legacy = Compuniformer(tile_size=8, max_sites=1).transform(
            self.TWO_KINDS
        )
        piped = get_variant("prepush").run(
            self.TWO_KINDS,
            TransformOptions(tile_size=8, max_sites=1),
        )
        assert piped.unparse() == legacy.unparse()
        # the first site was rejected, the second interchanged+rewritten
        assert len(piped.sites) == 1
        assert piped.sites[0].send_array == "bs"
        assert piped.sites[0].interchanged

    def test_custom_alltoall_names_reach_every_pass(self):
        """applicable() must screen with the run's alltoall_names, not
        the defaults — otherwise a renamed collective silently no-ops
        where the legacy Compuniformer transforms."""
        src = self.TWO_SITE.replace("mpi_alltoall", "my_exch")
        legacy = Compuniformer(alltoall_names=("my_exch",)).transform(src)
        piped = get_variant("prepush").run(
            src, alltoall_names=("my_exch",)
        )
        assert legacy.transformed and piped.transformed
        assert piped.unparse() == legacy.unparse()

    def test_simulated_times_and_payloads_identical(self):
        """The end-to-end anchor: identical text -> identical virtual
        times, per-rank outputs, and final array payloads."""
        app = build_app("indirect", n=8, stages=2, nranks=4)
        legacy = Compuniformer().transform(app.source)
        piped = get_variant("prepush").run(app.source)
        runs = [
            execute_job(
                ClusterJob(
                    program=rep.unparse(),
                    nranks=app.nranks,
                    network=MPICH_GM,
                )
            )
            for rep in (legacy, piped)
        ]
        assert runs[0].time == runs[1].time  # bit-identical, no approx
        assert runs[0].outputs == runs[1].outputs
        for rank in range(app.nranks):
            for name in runs[0].arrays[rank]:
                assert (
                    runs[0].arrays[rank][name]
                    == runs[1].arrays[rank][name]
                ).all()


class TestBuiltinVariants:
    def test_at_least_five_variants_registered(self):
        names = list_variants()
        assert len(names) >= 5
        for required in (
            "original",
            "prepush",
            "tile-only",
            "no-interchange",
            "prepush-schemeB-off",
        ):
            assert required in names

    def test_original_is_identity(self):
        app = build_app("fft", n=8, steps=1, stages=2, nranks=4)
        rep = get_variant("original").run(app.source)
        assert not rep.transformed
        assert rep.unparse() == unparse(parse(app.source))
        assert rep.passes == [] and rep.snapshots == []

    def test_tile_only_skips_indirect_sites(self):
        app = build_app("indirect", n=8, stages=2, nranks=4)
        rep = get_variant("tile-only").run(app.source, oracle=app.oracle)
        assert not rep.transformed  # the only site is indirect
        assert rep.unparse() == unparse(parse(app.source))
        # but the tile pass still planned (and reported) the site
        tile = next(p for p in rep.passes if p.name == "tile")
        assert any("slab" in n for n in tile.notes)

    def test_tile_only_transforms_direct_sites_without_interchange(self):
        app = build_app("nodeloop", n=24, steps=1, stages=2, nranks=4)
        rep = get_variant("tile-only").run(app.source)
        assert rep.transformed
        assert rep.sites[0].scheme == "B"  # stayed congested: no §3.5
        assert not rep.sites[0].interchanged

    def test_scheme_b_off_leaves_scheme_b_sites_alone(self):
        app = build_app("figure2", n=256, steps=1, stages=2, nranks=4)
        rep = get_variant("prepush-schemeB-off").run(app.source)
        # figure2 is the pure scheme-B workload (no legal interchange):
        # nothing must be rewritten, and the skip is reported
        assert not rep.transformed
        assert rep.unparse() == unparse(parse(app.source))
        commgen = next(p for p in rep.passes if p.name == "commgen")
        assert any("skip_scheme_b" in n for n in commgen.notes)

    def test_scheme_b_off_still_transforms_scheme_a(self):
        app = build_app("fft", n=8, steps=1, stages=2, nranks=4)
        rep = get_variant("prepush-schemeB-off").run(app.source)
        assert rep.transformed and rep.sites[0].scheme == "A"


class TestPipelineMechanics:
    def test_snapshots_one_per_applicable_pass(self):
        app = build_app("fft", n=8, steps=1, stages=2, nranks=4)
        rep = get_variant("prepush").run(app.source)
        # fft has one direct site; once commgen consumed it, the
        # indirect-elim pass sees no candidate call and is skipped
        assert [s.pass_name for s in rep.snapshots] == [
            "interchange",
            "tile",
            "commgen",
        ]
        assert [p.name for p in rep.passes] == [
            "interchange",
            "tile",
            "commgen",
            "indirect-elim",
        ]
        assert rep.passes[-1].skipped
        # the commgen snapshot is where the rewrite lands
        by_name = {s.pass_name: s for s in rep.snapshots}
        assert by_name["tile"].text == unparse(parse(app.source))
        assert by_name["commgen"].changed
        assert by_name["commgen"].text == rep.unparse()

    def test_snapshots_can_be_disabled(self):
        app = build_app("fft", n=8, steps=1, stages=2, nranks=4)
        rep = get_variant("prepush").run(app.source, snapshots=False)
        assert rep.snapshots == [] and rep.transformed

    def test_passes_skipped_on_inapplicable_program(self):
        rep = get_variant("prepush").run(
            "program p\n  integer :: x\n\n  x = 1\nend program p\n"
        )
        assert not rep.transformed
        assert all(p.skipped for p in rep.passes)

    def test_changed_covers_siteless_rewrites(self):
        """An interchange-only pipeline rewrites no *site* but does
        change the program; `.changed` must say so (it gates §4
        verification and the unchanged-program policies)."""
        app = build_app("nodeloop", n=24, steps=1, stages=2, nranks=4)
        rep = Pipeline(
            (InterchangePass(),), name="swap-only", partial=True
        ).run(app.source)
        assert not rep.transformed  # no SiteReport produced
        assert rep.changed  # but the nest was interchanged
        assert rep.unparse() != unparse(parse(app.source))
        # and a PreparedApp on it runs the §4 check instead of skipping
        from repro.harness.runner import PreparedApp

        prepared = PreparedApp(
            app,
            variant=Pipeline(
                (InterchangePass(),), name="swap-only", partial=True
            ),
            verify=True,
        )
        assert prepared.equivalent

    def test_describe_passes_mentions_every_pass(self):
        app = build_app("fft", n=8, steps=1, stages=2, nranks=4)
        rep = get_variant("prepush").run(app.source)
        text = rep.describe_passes()
        for name in ("interchange", "tile", "commgen", "indirect-elim"):
            assert name in text

    def test_interchange_after_planning_is_an_error(self):
        app = build_app("fft", n=8, steps=1, stages=2, nranks=4)
        bad = Pipeline((TilePass(), InterchangePass()), name="backwards")
        with pytest.raises(TransformError, match="before any pass"):
            bad.run(app.source)

    def test_invalid_tile_size_becomes_rejection(self):
        app = build_app("fft", n=8, steps=1, stages=2, nranks=4)
        rep = get_variant("prepush").run(
            app.source, TransformOptions(tile_size=1000)
        )
        assert not rep.transformed
        assert any("exceeds" in r.reason for r in rep.rejections)

    def test_max_sites_zero_sites_planned(self):
        app = build_app("fft", n=8, steps=1, stages=2, nranks=4)
        rep = get_variant("prepush").run(
            app.source, TransformOptions(max_sites=1)
        )
        assert len(rep.sites) == 1


class TestOptions:
    def test_validation_mirrors_legacy(self):
        with pytest.raises(TransformError, match="positive int"):
            TransformOptions(tile_size="huge")
        with pytest.raises(TransformError, match=">= 1"):
            TransformOptions(tile_size=0)
        with pytest.raises(TransformError, match="interchange"):
            TransformOptions(interchange="sometimes")
        with pytest.raises(TransformError, match="max_sites"):
            TransformOptions(max_sites=0)

    def test_canonical_params_round_trips_json(self):
        import json

        opts = TransformOptions(tile_size=4, interchange="never")
        params = json.loads(json.dumps(opts.canonical_params()))
        assert params == {
            "tile_size": 4,
            "interchange": "never",
            "max_sites": None,
        }


class TestRegistry:
    def test_unknown_variant_raises_with_roster(self):
        with pytest.raises(TransformError, match="unknown variant"):
            get_variant("transmogrified")
        with pytest.raises(TransformError, match="prepush"):
            get_variant("transmogrified")  # message lists the registry

    def test_duplicate_registration_requires_overwrite(
        self, scratch_registry
    ):
        scratch_registry("pipeline-test-dup", Pipeline(()))
        with pytest.raises(TransformError, match="already registered"):
            register_variant("pipeline-test-dup", Pipeline(()))
        scratch_registry(
            "pipeline-test-dup",
            Pipeline((TilePass(),)),
            overwrite=True,
        )
        assert len(get_variant("pipeline-test-dup").passes) == 1

    def test_invalid_names_and_pipelines_rejected(self):
        with pytest.raises(TransformError, match="non-empty string"):
            register_variant("", Pipeline(()))
        with pytest.raises(TransformError, match="must be a Pipeline"):
            register_variant("pipeline-test-bad", [TilePass()])
        with pytest.raises(TransformError, match="not a transform pass"):
            Pipeline((object(),))
        with pytest.raises(TransformError, match="registered name"):
            resolve_variant(42)

    def test_registration_names_anonymous_pipeline(self, scratch_registry):
        pipe = Pipeline((TilePass(), CommGenPass()))
        scratch_registry("pipeline-test-named", pipe)
        assert pipe.name == "pipeline-test-named"
        assert variant_label(pipe) == "pipeline-test-named"

    def test_custom_registered_variant_runs(self, scratch_registry):
        scratch_registry(
            "pipeline-test-direct",
            Pipeline((TilePass(), CommGenPass(), IndirectElimPass())),
        )
        app = build_app("fft", n=8, steps=1, stages=2, nranks=4)
        rep = resolve_variant("pipeline-test-direct").run(app.source)
        assert rep.transformed


class TestIdentity:
    """variant_identity is what the sweep-cache fingerprint hashes."""

    def test_identity_distinguishes_pipelines_and_options(self):
        opts = TransformOptions()
        a = variant_identity("prepush", opts)
        b = variant_identity("no-interchange", opts)
        assert a != b
        assert a == variant_identity("prepush", TransformOptions())
        assert a != variant_identity(
            "prepush", TransformOptions(tile_size=4)
        )

    def test_identity_sees_pass_configuration(self):
        plain = Pipeline((CommGenPass(),), name="x").identity()
        configured = Pipeline(
            (CommGenPass(skip_scheme_b=True),), name="x"
        ).identity()
        assert plain != configured

    def test_identity_is_json_safe(self):
        import json

        blob = json.dumps(
            variant_identity("prepush-schemeB-off", TransformOptions())
        )
        assert "skip_scheme_b" in blob
