"""Loop interchange legality and application (§3.5)."""

import pytest

from repro.analysis.loops import loop_chain
from repro.errors import InterchangeError
from repro.lang import parse
from repro.lang.unparser import unparse
from repro.transform.interchange import (
    apply_interchange,
    interchange_legal,
    scalars_privatizable,
)


def _nest(body: str, decls: str = ""):
    src = f"program t\n  integer :: i, j\n{decls}\n{body}\nend program t\n"
    program = parse(src).main
    for s in program.body:
        from repro.lang.ast_nodes import DoLoop

        if isinstance(s, DoLoop):
            return loop_chain(s)
    raise AssertionError("no loop found")


class TestLegality:
    def test_independent_writes_legal(self):
        nest = _nest(
            """
  do i = 1, 8
    do j = 1, 8
      a(i, j) = i + j
    enddo
  enddo""",
            decls="  integer :: a(1:8, 1:8)",
        )
        ok, reason = interchange_legal(nest, 0, 1)
        assert ok, reason

    def test_same_position_trivially_legal(self):
        nest = _nest(
            """
  do i = 1, 8
    do j = 1, 8
      a(i, j) = 1
    enddo
  enddo""",
            decls="  integer :: a(1:8, 1:8)",
        )
        assert interchange_legal(nest, 0, 0) == (True, "")

    def test_anti_diagonal_dependence_blocks(self):
        """a(i, j) depends on a(i-1, j+1): direction (<, >) becomes (>, <)
        after the swap — lexicographically negative, illegal."""
        nest = _nest(
            """
  do i = 2, 8
    do j = 1, 7
      a(i, j) = a(i - 1, j + 1)
    enddo
  enddo""",
            decls="  integer :: a(1:9, 1:9)",
        )
        ok, reason = interchange_legal(nest, 0, 1)
        assert not ok
        assert "lexicographically negative" in reason

    def test_forward_dependence_conservatively_rejected(self):
        """a(i, j) from a(i-1, j-1): the true direction (<, <) would permit
        the swap, but the analysis reports the carried level exactly and
        deeper levels as '*' — and '*' before '<' is treated as a possible
        '>' (documented conservatism).  Rejection is the sound answer."""
        nest = _nest(
            """
  do i = 2, 8
    do j = 2, 8
      a(i, j) = a(i - 1, j - 1)
    enddo
  enddo""",
            decls="  integer :: a(1:8, 1:8)",
        )
        ok, reason = interchange_legal(nest, 0, 1)
        assert not ok
        assert "lexicographically negative" in reason

    def test_imperfect_nest_rejected(self):
        nest = _nest(
            """
  do i = 1, 8
    s = i
    do j = 1, 8
      a(i, j) = s
    enddo
  enddo""",
            decls="  integer :: a(1:8, 1:8)\n  integer :: s",
        )
        ok, reason = interchange_legal(nest, 0, 1)
        assert not ok
        assert "not perfectly nested" in reason

    def test_triangular_bounds_rejected(self):
        nest = _nest(
            """
  do i = 1, 8
    do j = i, 8
      a(i, j) = 1
    enddo
  enddo""",
            decls="  integer :: a(1:8, 1:8)",
        )
        ok, reason = interchange_legal(nest, 0, 1)
        assert not ok
        assert "triangular" in reason

    def test_carried_scalar_blocks(self):
        nest = _nest(
            """
  do i = 1, 8
    do j = 1, 8
      a(i, j) = s
      s = s + 1
    enddo
  enddo""",
            decls="  integer :: a(1:8, 1:8)\n  integer :: s",
        )
        ok, reason = interchange_legal(nest, 0, 1)
        assert not ok
        assert "carries values" in reason

    def test_privatizable_helpers_allowed(self):
        nest = _nest(
            """
  do i = 1, 8
    do j = 1, 8
      t = i * 10 + j
      a(i, j) = t * t
    enddo
  enddo""",
            decls="  integer :: a(1:8, 1:8)\n  integer :: t",
        )
        ok, scalar = scalars_privatizable(nest)
        assert ok, scalar
        legal, reason = interchange_legal(nest, 0, 1)
        assert legal, reason


class TestApply:
    def test_headers_swap_bodies_stay(self):
        nest = _nest(
            """
  do i = 1, 4
    do j = 1, 9
      a(i, j) = 1
    enddo
  enddo""",
            decls="  integer :: a(1:4, 1:9)",
        )
        new = apply_interchange(nest, 0, 1)
        text = unparse(new.root)
        assert text.startswith("do j = 1, 9")
        assert "do i = 1, 4" in text
        assert new.loop_vars == ["j", "i"]

    def test_out_of_range_raises(self):
        nest = _nest(
            """
  do i = 1, 4
    do j = 1, 4
      a(i, j) = 1
    enddo
  enddo""",
            decls="  integer :: a(1:4, 1:4)",
        )
        with pytest.raises(InterchangeError):
            apply_interchange(nest, 0, 5)
