"""Golden test: the direct-pattern transformation of the paper's Figure 2.

Locks in the exact generated source — any change to the code generator
shows up as a readable diff against the paper's Figure 2(b) shape:
tiled guard ``if (mod(ix, K) == 0)``, the previous-tile wait, the
asynchronous send of the just-finalized block, owner-side receives, and
the final wait where the collective used to be.
"""

import textwrap

from tests.programs import direct_1d
from repro.transform import Compuniformer

GOLDEN = textwrap.dedent(
    """\
    program figure2
      integer, parameter :: nx = 64, np = 8, nt = 2
      integer :: as(nx)
      integer :: ar(nx)
      integer :: iy, ix, ierr
      integer :: pp_me, pp_j, pp_to, pp_from, pp_c1

      pp_me = mynode()
      do iy = 1, nt
        do ix = 1, nx
          as(ix) = ix * 3 + iy * 100 + mynode() * 7
          if (mod(ix, 8) == 0) then
            ! wait for comm of prev. tile to complete
            call mpi_waitall_recvs(ierr)
            pp_to = (ix - 7 - 1) / 8
            if (pp_to /= pp_me) then
              call mpi_isend(as(ix - 7), 8, pp_to, ix / 8, ierr)
            endif
            if (pp_to == pp_me) then
              do pp_j = 1, 7
                pp_from = mod(8 + pp_me - pp_j, 8)
                call mpi_irecv(ar(1 + pp_from * 8 + (ix - 7 - 1 - pp_me * 8)), 8, pp_from, ix / 8, ierr)
              enddo
              do pp_c1 = ix - 7, ix - 7 + 7
                ar(pp_c1) = as(pp_c1)
              enddo
            endif
          endif
        enddo
        ! wait for the last blocks of data
        call mpi_waitall(ierr)
      enddo
    end program figure2
    """
)


def test_figure2_transformation_golden():
    report = Compuniformer(tile_size=8).transform(
        direct_1d(n=64, nprocs=8, steps=2)
    )
    assert report.transformed
    assert report.unparse() == GOLDEN


def test_figure2_report_metadata():
    report = Compuniformer(tile_size=8).transform(
        direct_1d(n=64, nprocs=8, steps=2)
    )
    (site,) = report.sites
    assert site.kind.value == "direct"
    assert site.scheme == "B"
    assert site.tile_size == 8
    assert site.trip == 64
    assert site.ntiles == 8
    assert site.leftover == 0
    assert not site.interchanged
    assert site.comm_rounds == 8
    assert not report.rejections


def test_figure2_transform_is_idempotent_input():
    """The input AST is not mutated: transforming twice gives equal output."""
    src = direct_1d(n=64, nprocs=8, steps=2)
    a = Compuniformer(tile_size=8).transform(src).unparse()
    b = Compuniformer(tile_size=8).transform(src).unparse()
    assert a == b


def test_figure2_original_collective_removed():
    report = Compuniformer(tile_size=8).transform(direct_1d())
    assert "mpi_alltoall" not in report.unparse()
