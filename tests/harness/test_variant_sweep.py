"""The variant axis of the sweep engine and its cache-key rules.

DESIGN.md §9: transformed points carry their pipeline's identity plus
the canonical TransformOptions in the job fingerprint, so (a) a warm
cache serves a named variant with zero simulations, and (b) changing
the pipeline or any option can never serve a stale entry.
"""

import pytest

from repro.errors import ReproError
from repro.harness.figures import ablation_variants
from repro.harness.sweep import SweepCache, SweepSpec, expand_spec
from repro.interp.runner import job_fingerprint
from repro.transform.pipeline import (
    CommGenPass,
    Pipeline,
    TilePass,
)


def spec(**overrides):
    base = dict(
        name="vtest",
        app="fft",
        app_kwargs={"n": 8, "steps": 1, "stages": 2},
        nranks=(4,),
        tile_sizes=(4,),
        networks=("gmnet",),
        verify=False,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestVariantAxis:
    def test_named_variants_expand_with_own_transforms(self):
        points, _ = expand_spec(
            spec(variants=("original", "prepush", "no-interchange"))
        )
        by_variant = {p.axes["variant"]: p for p in points}
        assert set(by_variant) == {
            "original",
            "prepush",
            "no-interchange",
        }
        # fft is interchange-free, so both treatments produce the same
        # text — but their provenance keeps their cache keys apart
        pp, ni = by_variant["prepush"], by_variant["no-interchange"]
        assert pp.job().program_text() == ni.job().program_text()
        assert pp.variant_id != ni.variant_id
        assert job_fingerprint(pp.job()) != job_fingerprint(ni.job())
        # the baseline stays provenance-free: its fingerprint is the
        # same as a plain untransformed job's (old caches keep hitting)
        assert by_variant["original"].variant_id is None

    def test_options_move_the_fingerprint(self):
        a, _ = expand_spec(spec(variants=("prepush",), tile_sizes=(2,)))
        b, _ = expand_spec(spec(variants=("prepush",), tile_sizes=(4,)))
        assert job_fingerprint(a[0].job()) != job_fingerprint(b[0].job())

    def test_pipeline_instances_are_valid_axis_values(self):
        custom = Pipeline((TilePass(), CommGenPass()), name="my-tiles")
        points, _ = expand_spec(spec(variants=("original", custom)))
        labels = {p.axes["variant"] for p in points}
        assert labels == {"original", "my-tiles"}

    def test_unknown_variant_name_rejected(self):
        with pytest.raises(ReproError, match="unknown variants"):
            spec(variants=("original", "transmogrified"))

    def test_duplicate_variant_labels_rejected(self):
        with pytest.raises(ReproError, match="duplicate variant"):
            spec(variants=("prepush", Pipeline((), name="prepush")))

    def test_non_transforming_variant_measured_as_original(self):
        # tile-only leaves the indirect kernel untouched: the point
        # must measure the unchanged program instead of raising
        points, verifications = expand_spec(
            spec(
                app="indirect",
                app_kwargs={"n": 8, "stages": 2},
                variants=("original", "tile-only"),
                verify=True,
            )
        )
        tile_only = next(
            p for p in points if p.axes["variant"] == "tile-only"
        )
        original = next(
            p for p in points if p.axes["variant"] == "original"
        )
        from repro.lang import parse, unparse

        # same program modulo unparser normalization (the baseline point
        # ships the app's raw source text, the variant point its AST)
        assert tile_only.job().program_text() == unparse(
            parse(original.job().program_text())
        )
        # nothing changed, so there is nothing to §4-verify
        assert verifications == []

    def test_failed_transform_raises_even_for_partial_variants(self):
        # an unchanged program is OK only when the variant left it
        # alone on purpose; a REJECTED site (illegal K) must raise, not
        # silently measure the original as the treatment arm
        with pytest.raises(ReproError, match="exceeds"):
            expand_spec(
                spec(
                    variants=("original", "no-interchange"),
                    tile_sizes=(1000,),
                )
            )

    def test_to_dict_refuses_unregistered_pipeline(self):
        custom = Pipeline((TilePass(), CommGenPass()), name="ephemeral")
        s = spec(variants=("original", custom))
        with pytest.raises(ReproError, match="unregistered pipeline"):
            s.to_dict()

    def test_each_transforming_variant_gets_its_own_verification(self):
        _, verifications = expand_spec(
            spec(
                variants=("original", "prepush", "no-interchange"),
                verify=True,
            )
        )
        assert len(verifications) == 2


class TestWarmVariantCache:
    def test_named_variant_warm_cache_zero_sims(self, tmp_path):
        """Acceptance criterion: a warm sweep cache from a named
        variant performs zero simulations on re-run."""
        from repro.api import Session

        s = spec(
            variants=("original", "no-interchange", "prepush-schemeB-off"),
            verify=True,
        )
        with Session(cache_dir=tmp_path / "c") as session:
            cold = session.sweep(s)
        assert cold.stats.total_simulated > 0
        with Session(cache_dir=tmp_path / "c") as session:
            warm = session.sweep(s)
        assert warm.stats.total_simulated == 0
        assert warm.stats.cache_hits > 0
        for a, b in zip(cold.runs, warm.runs):
            assert a.axes == b.axes
            assert a.measurement == b.measurement  # bit-identical

    def test_reregistered_pipeline_invalidates_entries(self, tmp_path):
        """Overwriting a variant with a differently-shaped pipeline
        changes the cache keys: the old entries cannot be served."""
        from repro.harness.sweep import run_sweep
        from repro.transform.pipeline import (
            _VARIANTS,
            register_variant,
        )

        name = "vtest-volatile"
        register_variant(
            name, Pipeline((TilePass(), CommGenPass()))
        )
        try:
            cache = SweepCache(tmp_path / "c")
            with pytest.warns(DeprecationWarning):
                cold = run_sweep(
                    spec(variants=(name,)), cache=cache
                )
            assert cold.stats.simulated > 0
            register_variant(
                name,
                Pipeline(
                    (TilePass(), CommGenPass(skip_scheme_b=True))
                ),
                overwrite=True,
            )
            with pytest.warns(DeprecationWarning):
                redo = run_sweep(
                    spec(variants=(name,)), cache=cache
                )
            # same axes, different pipeline identity -> re-simulated
            assert redo.stats.simulated > 0
            assert redo.stats.cache_hits == 0
        finally:
            _VARIANTS.pop(name, None)


class TestAblationVariants:
    def test_table_covers_variant_network_workload(self):
        table = ablation_variants(
            sizes={"fft": 24, "nodeloop": 24, "indirect": 8},
            nranks=4,
            networks=("gmnet",),
            verify=True,
        )
        rows = {(r[0], r[1], r[2]) for r in table.rows}
        # 3 workloads x >=5 variants x 1 network
        assert len(rows) >= 15
        by_key = {(r[0], r[1]): r for r in table.rows}
        # the congestion story: prepush interchanges nodeloop to scheme
        # A, tile-only leaves it congested in scheme B
        assert by_key[("nodeloop", "prepush")][4] == "A"
        assert by_key[("nodeloop", "tile-only")][4] == "B"
        # tile-only cannot touch the indirect kernel: identical to
        # original, speedup exactly 1
        assert by_key[("indirect", "tile-only")][6] == pytest.approx(1.0)
        for row in table.rows:
            assert row[5] > 0  # every cell measured

    def test_auto_roster_drops_incompatible_custom_variant(self):
        """A runtime-registered full-rewrite variant that cannot
        transform one roster workload is dropped with a note instead
        of aborting the whole table (README: variants registered at
        runtime join automatically)."""
        from repro.transform.pipeline import (
            _VARIANTS,
            register_variant,
        )

        name = "vtest-direct-strict"
        # direct-only passes but NOT marked partial: fails on the
        # indirect roster workload
        register_variant(name, Pipeline((TilePass(), CommGenPass())))
        try:
            table = ablation_variants(
                sizes={"fft": 24, "nodeloop": 24, "indirect": 8},
                nranks=4,
                networks=("gmnet",),
                verify=False,
            )
        finally:
            _VARIANTS.pop(name, None)
        assert any(name in n for n in table.notes)
        assert not any(r[1] == name for r in table.rows)
        # the compatible built-ins are all still present
        assert {r[1] for r in table.rows} >= {
            "original",
            "prepush",
            "tile-only",
        }

    def test_rejects_unregistered_variant(self):
        with pytest.raises(ReproError, match="unknown variants"):
            ablation_variants(
                variants=("original", "nope"),
                sizes={"fft": 8, "nodeloop": 8, "indirect": 8},
                nranks=4,
                networks=("gmnet",),
                verify=False,
            )
