"""Property test: ``SweepSpec.to_dict`` round-trips through JSON.

The dict form is both the ``--spec`` file format and the serve wire
protocol (``compuniformer submit`` ships ``to_dict()`` to the server,
which rebuilds with ``from_dict``), so fidelity over every registry-
drawn axis combination is a protocol invariant, not a convenience.
"""

from __future__ import annotations

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.apps import APP_BUILDERS
from repro.harness.sweep import SweepSpec
from repro.runtime.collectives import COLLECTIVES, list_algorithms
from repro.runtime.network import list_models
from repro.transform.pipeline import list_variants

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_", min_size=1, max_size=20
)

# a collective axis value: registry default (None), one bare algorithm
# name (applied wherever registered), or explicit collective=algorithm
# pairs
_algorithms = sorted({a for c in COLLECTIVES for a in list_algorithms(c)})
_collective = st.one_of(
    st.none(),
    st.sampled_from(_algorithms),
    st.fixed_dictionaries(
        {},
        optional={
            coll: st.sampled_from(list_algorithms(coll))
            for coll in COLLECTIVES
        },
    ).filter(bool),
)

_axis_floats = st.floats(
    min_value=0.001, max_value=1000.0, allow_nan=False, allow_infinity=False
)


@st.composite
def specs(draw) -> SweepSpec:
    return SweepSpec(
        name=draw(_names),
        app=draw(st.sampled_from(sorted(APP_BUILDERS))),
        app_kwargs=draw(
            st.dictionaries(
                st.sampled_from(["n", "steps", "stages"]),
                st.integers(min_value=1, max_value=64),
                max_size=3,
            )
        ),
        nranks=tuple(
            draw(
                st.lists(
                    st.sampled_from([2, 4, 8, 16, 1024]),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        ),
        variants=tuple(
            draw(
                st.lists(
                    st.sampled_from(list_variants()),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        ),
        tile_sizes=tuple(
            draw(
                st.lists(
                    st.one_of(
                        st.just("auto"),
                        st.integers(min_value=1, max_value=64),
                    ),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        ),
        interchange=tuple(
            draw(
                st.lists(
                    st.sampled_from(["auto", "never"]),
                    min_size=1,
                    max_size=2,
                    unique=True,
                )
            )
        ),
        networks=tuple(
            draw(
                st.lists(
                    st.sampled_from(list_models()),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        ),
        collectives=tuple(
            draw(st.lists(_collective, min_size=1, max_size=2))
        ),
        cpu_scales=tuple(
            draw(st.lists(_axis_floats, min_size=1, max_size=2, unique=True))
        ),
        verify=draw(st.booleans()),
        engine_mode=draw(
            st.sampled_from([None, "auto", "replay", "full"])
        ),
    )


@given(spec=specs())
def test_to_dict_json_from_dict_round_trip(spec: SweepSpec) -> None:
    wire = json.loads(json.dumps(spec.to_dict()))
    rebuilt = SweepSpec.from_dict(wire)
    assert rebuilt.to_dict() == spec.to_dict()
    # a second trip is the identity (serve replies echo the specs back)
    assert SweepSpec.from_dict(rebuilt.to_dict()).to_dict() == wire


@given(spec=specs())
def test_round_trip_preserves_expansion_shape(spec: SweepSpec) -> None:
    rebuilt = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert len(list(rebuilt.nranks)) == len(list(spec.nranks))
    assert list(rebuilt.networks) == list(spec.networks)
    assert list(rebuilt.tile_sizes) == list(spec.tile_sizes)
    assert rebuilt.verify == spec.verify
    assert rebuilt.engine_mode == spec.engine_mode
