"""SweepCache multi-writer protocol: claims, waiting, info/prune.

Many server processes (or ``compuniformer serve`` next to a plain
``sweep``) share one cache directory; the in-flight claim markers and
per-entry advisory locks must guarantee a single simulating winner per
fingerprint while every loser waits for (and then reads) the winner's
entry.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.harness.sweep import CLAIM_STALE_AFTER, SweepCache


def _payload(value: int = 1) -> dict:
    return {"kind": "measurement", "value": value}


class TestClaim:
    def test_claim_then_reclaim(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.claim("ab" * 32)
        assert not cache.claim("ab" * 32)  # held by us == held
        assert cache.claim_live("ab" * 32)

    def test_release_reopens_claim(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "cd" * 32
        assert cache.claim(key)
        cache.release(key)
        assert not cache.claim_live(key)
        assert cache.claim(key)

    def test_release_is_idempotent(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.release("ef" * 32)  # never claimed: no error
        cache.release("ef" * 32)

    def test_put_releases_the_claim(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "01" * 32
        assert cache.claim(key)
        cache.put(key, _payload())
        assert not cache.claim_path(key).exists()
        assert cache.get(key)["value"] == 1

    def test_existing_entry_blocks_claim(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "23" * 32
        cache.put(key, _payload())
        assert not cache.claim(key)
        assert not cache.claim_path(key).exists()

    def test_stale_claim_is_broken(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "45" * 32
        assert cache.claim(key)
        marker = cache.claim_path(key)
        info = json.loads(marker.read_text())
        info["time"] = time.time() - CLAIM_STALE_AFTER - 1
        marker.write_text(json.dumps(info))
        assert not cache.claim_live(key)
        assert cache.claim(key)  # broke the abandoned marker

    def test_unreadable_claim_counts_as_stale(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "67" * 32
        assert cache.claim(key)
        cache.claim_path(key).write_text("not json")
        assert not cache.claim_live(key)
        assert cache.claim(key)

    def test_threads_race_one_winner(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "89" * 32
        barrier = threading.Barrier(8)
        wins = []

        def contender():
            barrier.wait()
            if cache.claim(key):
                wins.append(threading.get_ident())

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


class TestWaitFor:
    def test_entry_already_present(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "aa" * 32
        cache.put(key, _payload(7))
        assert cache.wait_for(key)["value"] == 7

    def test_timeout_while_claim_live(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "bb" * 32
        assert cache.claim(key)
        assert cache.wait_for(key, timeout=0.15, poll=0.02) is None

    def test_released_claim_without_entry(self, tmp_path):
        # writer crashed politely (released without put): wait_for
        # returns None immediately so the caller re-claims
        cache = SweepCache(tmp_path)
        key = "cc" * 32
        assert cache.wait_for(key, timeout=5.0, poll=0.01) is None

    def test_waiter_sees_peer_entry_land(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "dd" * 32
        assert cache.claim(key)
        got = []

        def waiter():
            got.append(cache.wait_for(key, timeout=10.0, poll=0.01))

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        cache.put(key, _payload(42))
        t.join()
        assert got[0]["value"] == 42


class TestInfoPrune:
    def test_info_empty(self, tmp_path):
        info = SweepCache(tmp_path / "none").info()
        assert info["entries"] == 0
        assert info["bytes"] == 0
        assert info["inflight_claims"] == 0

    def test_info_counts_entries_and_claims(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put("11" * 32, _payload())
        cache.put("22" * 32, dict(_payload(), kind="verify"))
        assert cache.claim("33" * 32)
        info = cache.info()
        assert info["entries"] == 2
        assert info["bytes"] > 0
        assert info["kinds"] == {"measurement": 1, "verify": 1}
        assert info["stale_entries"] == 0
        assert info["inflight_claims"] == 1
        assert list(info["versions"]) == [info["current_version"]]

    def test_prune_removes_stale_versions(self, tmp_path):
        cache = SweepCache(tmp_path)
        fresh, stale = "44" * 32, "55" * 32
        cache.put(fresh, _payload())
        cache.put(stale, _payload())
        path = cache.path(stale)
        payload = json.loads(path.read_text())
        payload["engine"] = "0.0-ancient"
        path.write_text(json.dumps(payload))

        info = cache.info()
        assert info["stale_entries"] == 1
        dry = cache.prune(dry_run=True)
        assert dry == {
            "removed": 1,
            "kept": 1,
            "freed_bytes": path.stat().st_size,
            "stale_claims_removed": 0,
            "dry_run": True,
        }
        assert path.exists()  # dry run deletes nothing

        wet = cache.prune()
        assert wet["removed"] == 1 and not wet["dry_run"]
        assert not path.exists()
        assert cache.get(fresh) is not None
        assert cache.info()["stale_entries"] == 0

    def test_prune_removes_corrupt_and_stale_claims(self, tmp_path):
        cache = SweepCache(tmp_path)
        bad = cache.path("66" * 32)
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{ not json")
        assert cache.claim("77" * 32)
        marker = cache.claim_path("77" * 32)
        info = json.loads(marker.read_text())
        info["time"] = time.time() - CLAIM_STALE_AFTER - 1
        marker.write_text(json.dumps(info))

        report = cache.prune()
        assert report["removed"] == 1  # the corrupt entry
        assert report["stale_claims_removed"] == 1
        assert not bad.exists() and not marker.exists()

    def test_prune_keeps_live_claims(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.claim("88" * 32)
        report = cache.prune()
        assert report["stale_claims_removed"] == 0
        assert cache.claim_live("88" * 32)


@pytest.mark.parametrize("nwriters", [2, 6])
def test_put_race_is_atomic(tmp_path, nwriters):
    """Concurrent put() of the same key never leaves a torn entry."""
    cache = SweepCache(tmp_path)
    key = "99" * 32
    barrier = threading.Barrier(nwriters)

    def writer(i):
        barrier.wait()
        cache.put(key, _payload(i))

    threads = [
        threading.Thread(target=writer, args=(i,)) for i in range(nwriters)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    payload = cache.get(key)
    assert payload is not None and payload["value"] in range(nwriters)
