"""Measurement runner: PreparedApp, PairResult, and the figure functions
at miniature sizes (the real sizes run in benchmarks/)."""

import dataclasses

import pytest

from repro.apps import build_app
from repro.errors import ReproError
from repro.harness.figures import (
    ablation_collectives,
    ablation_network,
    ablation_nodeloop,
    ablation_scaling,
    ablation_tile_size,
    ablation_workloads,
    figure1,
)
from repro.harness.runner import PreparedApp, measure, run_pair
from repro.interp.runner import run_cluster
from repro.runtime.network import IDEAL, MPICH_GM


@pytest.fixture(scope="module")
def small_app():
    return build_app("fft", n=8, nranks=4, steps=1, stages=2)


class TestMeasure:
    def test_measure_fields(self, small_app):
        m = measure(small_app.source, 4, MPICH_GM, label="x")
        assert m.time > 0
        assert m.compute_time > 0
        assert m.messages == 4 * 3  # one alltoall: NP*(NP-1)
        assert m.bytes_sent == 4 * 3 * 16 * 8  # part=16 elems of 8 B
        assert m.network == "mpich-gm"
        assert m.comm_cost == m.wait_time + m.mpi_overhead

    def test_comm_cost_is_single_worst_rank(self, small_app):
        """comm_cost must be max over ranks of (wait + overhead), never a
        mix of the independent wait maximum and overhead maximum from
        different ranks."""
        m = measure(small_app.source, 4, MPICH_GM)
        stats = run_cluster(
            small_app.source, 4, MPICH_GM
        ).result.stats
        per_rank = [s.wait_time + s.mpi_overhead_time for s in stats]
        assert m.comm_cost == pytest.approx(max(per_rank))
        worst = max(
            stats, key=lambda s: s.wait_time + s.mpi_overhead_time
        )
        assert m.wait_time == pytest.approx(worst.wait_time)
        assert m.mpi_overhead == pytest.approx(worst.mpi_overhead_time)
        # the buggy aggregation would report at least as much, and
        # strictly more whenever the maxima live on different ranks
        mixed = max(s.wait_time for s in stats) + max(
            s.mpi_overhead_time for s in stats
        )
        assert m.comm_cost <= mixed

    def test_measure_records_collective_suite(self, small_app):
        m = measure(small_app.source, 4, MPICH_GM)
        assert "alltoall=pairwise" in m.collective
        m2 = measure(
            small_app.source, 4, MPICH_GM, collective={"alltoall": "bruck"}
        )
        assert "alltoall=bruck" in m2.collective
        assert m2.time != m.time


class TestPreparedApp:
    def test_reusable_across_networks(self, small_app):
        prepared = PreparedApp(small_app, tile_size=4)
        a = prepared.run_on(MPICH_GM)
        b = prepared.run_on(IDEAL)
        assert a.network == "mpich-gm"
        assert b.network == "ideal"
        assert a.prepush.bytes_sent == b.prepush.bytes_sent

    def test_verify_on_construction(self, small_app):
        prepared = PreparedApp(small_app, tile_size=4, verify=True)
        assert prepared.equivalent

    def test_untransformable_app_raises(self):
        app = build_app("fft", n=8, nranks=4, steps=1, stages=2)
        # tile size 100 > trip count: nothing transformable
        with pytest.raises(ReproError, match="not transformed"):
            PreparedApp(app, tile_size=100)

    def test_pair_result_properties(self, small_app):
        pair = run_pair(small_app, MPICH_GM, tile_size=4)
        assert pair.speedup == pair.original.time / pair.prepush.time
        assert -5.0 < pair.overhead_reduction <= 1.0

    def test_speedup_degenerate_zero_work(self, small_app):
        """0/0 (both variants take no virtual time) is 'no change', not
        an infinite speedup; a real win over zero time stays inf."""
        pair = run_pair(small_app, MPICH_GM, tile_size=4)
        zeroed = dataclasses.replace(
            pair,
            original=dataclasses.replace(pair.original, time=0.0),
            prepush=dataclasses.replace(pair.prepush, time=0.0),
        )
        assert zeroed.speedup == 1.0
        real_over_zero = dataclasses.replace(
            zeroed, original=dataclasses.replace(pair.original, time=2.0)
        )
        assert real_over_zero.speedup == float("inf")

    def test_run_on_collective_knob(self, small_app):
        prepared = PreparedApp(small_app, tile_size=4)
        default = prepared.run_on(MPICH_GM)
        bruck = prepared.run_on(MPICH_GM, collective={"alltoall": "bruck"})
        # the original contains the alltoall: its schedule moves; the
        # prepush variant replaced it with point-to-point, so it doesn't
        assert bruck.original.time != default.original.time
        assert bruck.prepush.time == default.prepush.time


class TestFigureFunctionsMiniature:
    """Shape of the table machinery, not of the results (sizes are tiny)."""

    def test_figure1_rows(self):
        t = figure1(n=8, nranks=4, stages=2, verify=False)
        assert t.columns[0] == "stack"
        assert len(t.rows) == 4
        stacks = set(t.column("stack"))
        assert stacks == {"mpich", "mpich-gm"}
        # normalization: exactly one row is 1.0 and it is the minimum
        norms = [float(v) for v in t.column("normalized")]
        assert min(norms) == pytest.approx(1.0)

    def test_ablation_tile_size_rows(self):
        t = ablation_tile_size(
            ks=[1, 2, 4], n=8, nranks=4, steps=1, stages=2, verify=False
        )
        assert t.column("K") == [1, 2, 4]
        assert all(v > 0 for v in t.column("time_s"))
        # tiles column consistent with K
        assert t.value("tiles", K=1) == 8
        assert t.value("tiles", K=4) == 2

    def test_ablation_tile_size_dedupes_ks(self):
        """The default ks list repeats n whenever n is itself one of the
        standard points (e.g. n=8) — duplicates must collapse instead of
        making the per-K sweep lookup ambiguous."""
        t = ablation_tile_size(
            ks=[1, 2, 2, 4], n=8, nranks=4, steps=1, stages=2, verify=False
        )
        assert t.column("K") == [1, 2, 4]
        # the n=power-of-two default list hits the same duplication
        t = ablation_tile_size(n=8, nranks=4, steps=1, stages=2, verify=False)
        assert t.column("K") == [1, 4, 8]

    def test_ablation_scaling_rows(self):
        t = ablation_scaling(
            nranks_list=(2, 4), n=8, steps=1, stages=2, verify=False
        )
        assert t.column("NP") == [2, 4]

    def test_ablation_network_rows(self):
        t = ablation_network(n=8, nranks=4, steps=1, stages=2, verify=False)
        nets = t.column("network")
        assert "gm" in nets and "mpich" in nets and "gm-no-offload" in nets
        assert t.value("offload", network="gm") == "yes"
        assert t.value("offload", network="gm-no-offload") == "no"

    def test_ablation_workloads_rows(self):
        t = ablation_workloads(
            nranks=4,
            sizes=dict(figure2=32, indirect=8, fft=8, sort=8, stencil=8, lu=8),
            verify=False,
        )
        assert len(t.rows) == 6
        patterns = set(t.column("pattern"))
        assert patterns == {"direct", "indirect"}
        schemes = set(t.column("scheme"))
        assert {"A", "B", "slab"} <= schemes

    def test_ablation_nodeloop_rows(self):
        t = ablation_nodeloop(n=8, nranks=4, steps=1, stages=2, verify=False)
        variants = t.column("variant")
        assert variants == [
            "original",
            "prepush+interchange",
            "prepush-congested",
        ]
        assert t.value("scheme", variant="prepush+interchange") == "A"
        assert t.value("scheme", variant="prepush-congested") == "B"

    def test_ablation_collectives_rows(self):
        from repro.runtime.collectives import list_algorithms

        t = ablation_collectives(
            networks=("gmnet",),
            nranks=4,
            fft_n=8,
            cg_n=16,
            halo_n=8,
            steps=1,
            stages=2,
        )
        collectives = set(t.column("collective"))
        assert collectives == {"alltoall", "allreduce", "allgather"}
        expected_rows = sum(
            len(list_algorithms(c)) for c in collectives
        )
        assert len(t.rows) == expected_rows
        # the default algorithm normalizes to exactly 1.0 per group
        defaults = [
            float(v)
            for v, a, c in zip(
                t.column("vs_default"),
                t.column("algorithm"),
                t.column("collective"),
            )
            if a
            == {
                "alltoall": "pairwise",
                "allreduce": "recursive-doubling",
                "allgather": "ring",
            }[c]
        ]
        assert all(v == pytest.approx(1.0) for v in defaults)
