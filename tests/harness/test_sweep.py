"""The declarative sweep engine and its content-addressed result cache.

Covers the DESIGN.md §7 contract: cache hit/miss accounting, key
sensitivity (every axis and the engine semantic version must move the
key), corrupted-entry fallback, the no-cache bypass, fingerprint
deduplication, and bit-identical warm-run reproduction.
"""

import dataclasses
import json

import pytest

import repro.interp.runner as interp_runner
from repro.errors import ReproError, SimulationError
from repro.harness.runner import Measurement
from repro.harness.sweep import (
    SweepCache,
    SweepSpec,
    collective_label,
    expand_spec,
    run_sweep,
)
from repro.interp.runner import ClusterJob, job_fingerprint
from repro.runtime.costmodel import DEFAULT_COST_MODEL


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        app="fft",
        app_kwargs={"n": 8, "steps": 1, "stages": 2},
        nranks=(4,),
        tile_sizes=(4,),
        networks=("gmnet",),
        verify=False,
    )
    base.update(overrides)
    return SweepSpec(**base)


PROGRAM = """
program fp
  integer :: a(1:8)
  integer :: i

  do i = 1, 8
    a(i) = i * 3
  enddo
end program fp
"""


class TestJobFingerprint:
    def base_job(self, **overrides):
        kwargs = dict(program=PROGRAM, nranks=2, network="gmnet")
        kwargs.update(overrides)
        return ClusterJob(**kwargs)

    def test_stable_across_calls(self):
        assert job_fingerprint(self.base_job()) == job_fingerprint(
            self.base_job()
        )

    def test_every_axis_moves_the_key(self):
        base = job_fingerprint(self.base_job())
        variations = {
            "program": self.base_job(program=PROGRAM.replace("3", "4")),
            "nranks": self.base_job(nranks=4),
            "network": self.base_job(network="hostnet"),
            "cost_model": self.base_job(
                cost_model=DEFAULT_COST_MODEL.scaled(2.0)
            ),
            "collective": self.base_job(collective={"alltoall": "bruck"}),
            "detect_races": self.base_job(detect_races=False),
        }
        keys = {name: job_fingerprint(job) for name, job in variations.items()}
        for name, key in keys.items():
            assert key != base, f"axis {name} did not change the fingerprint"
        assert len(set(keys.values())) == len(keys)

    def test_engine_version_moves_the_key(self, monkeypatch):
        base = job_fingerprint(self.base_job())
        monkeypatch.setattr(interp_runner, "ENGINE_VERSION", "999-test")
        assert job_fingerprint(self.base_job()) != base

    def test_source_and_text_agree(self):
        """A parsed program must fingerprint like its unparsed text, so
        the prepush variant (an AST) shares keys across runs."""
        from repro.lang import parse, unparse

        tree = parse(PROGRAM)
        as_ast = job_fingerprint(self.base_job(program=tree))
        as_text = job_fingerprint(self.base_job(program=unparse(tree)))
        assert as_ast == as_text

    def test_externals_are_uncacheable(self):
        from repro.apps import build_app

        app = build_app("indirect-external", n=4, nranks=2, stages=1)
        job = ClusterJob(
            program=app.source, nranks=2, externals=app.externals
        )
        with pytest.raises(SimulationError, match="content-hashed"):
            job_fingerprint(job)

    def test_default_collective_shares_key_with_explicit_defaults(self):
        from repro.runtime.collectives import resolve_suite

        assert job_fingerprint(
            self.base_job(collective=None)
        ) == job_fingerprint(self.base_job(collective=resolve_suite(None)))


class TestSweepCacheAccounting:
    def test_cold_then_warm(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        cold = run_sweep(tiny_spec(), cache=cache)
        assert cold.stats.simulated > 0
        assert cache.stats.hits == 0
        assert cache.stats.misses > 0
        assert cache.stats.stores == cache.stats.misses

        warm_cache = SweepCache(tmp_path / "c")
        warm = run_sweep(tiny_spec(), cache=warm_cache)
        assert warm.stats.total_simulated == 0
        assert warm.stats.mode == "none"
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits == cold.stats.cache_misses

    def test_warm_run_is_bit_identical(self, tmp_path):
        spec = tiny_spec(networks=("gmnet", "hostnet"), verify=True)
        cold = run_sweep(spec, cache=tmp_path / "c")
        warm = run_sweep(spec, cache=tmp_path / "c")
        assert warm.stats.simulated == 0
        for a, b in zip(cold.runs, warm.runs):
            assert a.axes == b.axes
            assert a.measurement == b.measurement  # == on floats: bit-exact

    def test_no_cache_bypass(self, tmp_path):
        # a populated cache must be ignored when caching is disabled
        cache = SweepCache(tmp_path / "c")
        run_sweep(tiny_spec(), cache=cache)
        bypass = run_sweep(tiny_spec(), cache=None)
        assert bypass.stats.simulated > 0
        assert bypass.stats.cache_hits == 0

    def test_corrupt_entry_falls_back_to_simulation(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        cold = run_sweep(tiny_spec(), cache=cache)
        reference = {tuple(r.axes.items()): r.measurement for r in cold.runs}

        entries = sorted((tmp_path / "c").rglob("*.json"))
        assert len(entries) == cold.stats.cache_misses
        entries[0].write_text("{ not json", encoding="utf-8")

        recovered_cache = SweepCache(tmp_path / "c")
        recovered = run_sweep(tiny_spec(), cache=recovered_cache)
        assert recovered_cache.stats.corrupt == 1
        assert recovered.stats.simulated == 1  # only the corrupted entry
        for r in recovered.runs:
            assert r.measurement == reference[tuple(r.axes.items())]
        # the re-simulation healed the entry
        healed = SweepCache(tmp_path / "c")
        assert run_sweep(tiny_spec(), cache=healed).stats.simulated == 0

    def test_wrong_kind_payload_is_not_trusted(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        cold = run_sweep(tiny_spec(), cache=cache)
        # rewrite every measurement entry as a foreign payload kind
        for path in (tmp_path / "c").rglob("*.json"):
            payload = json.loads(path.read_text())
            payload["kind"] = "something-else"
            path.write_text(json.dumps(payload))
        again = run_sweep(tiny_spec(), cache=SweepCache(tmp_path / "c"))
        assert again.stats.simulated == cold.stats.simulated

    def test_axis_change_is_a_miss(self, tmp_path):
        cache_dir = tmp_path / "c"
        run_sweep(tiny_spec(), cache=cache_dir)
        for changed in (
            tiny_spec(networks=("hostnet",)),
            tiny_spec(nranks=(2,)),
            tiny_spec(cpu_scales=(2.0,)),
            tiny_spec(collectives=({"alltoall": "bruck"},)),
        ):
            res = run_sweep(changed, cache=cache_dir)
            assert res.stats.cache_hits == 0, changed
            assert res.stats.simulated > 0, changed

    def test_engine_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "c"
        run_sweep(tiny_spec(), cache=cache_dir)
        monkeypatch.setattr(interp_runner, "ENGINE_VERSION", "999-test")
        res = run_sweep(tiny_spec(), cache=cache_dir)
        assert res.stats.cache_hits == 0
        assert res.stats.simulated > 0

    def test_verification_is_cached(self, tmp_path):
        spec = tiny_spec(verify=True)
        cache = SweepCache(tmp_path / "c")
        cold = run_sweep(spec, cache=cache)
        assert cold.stats.verify_checks == 1
        assert cold.stats.verify_hits == 0
        # measurement and verification simulations are accounted apart
        assert cold.stats.simulated == 2  # original + prepush on gmnet
        assert cold.stats.verify_simulated == 2  # the two ideal runs
        warm_cache = SweepCache(tmp_path / "c")
        warm = run_sweep(spec, cache=warm_cache)
        assert warm.stats.verify_hits == 1
        assert warm.stats.total_simulated == 0


class TestSweepEngine:
    def test_fingerprint_dedupe_within_a_run(self):
        # the untransformed baseline is the same program at every K
        res = run_sweep(tiny_spec(tile_sizes=(1, 2, 4)))
        assert res.stats.deduplicated == 2
        originals = res.select(variant="original")
        assert len({r.fingerprint for r in originals}) == 1
        assert len({id(r.measurement) for r in originals}) == 3  # per-point

    def test_select_and_get(self):
        res = run_sweep(tiny_spec(networks=("gmnet", "hostnet")))
        assert len(res.select(variant="prepush")) == 2
        m = res.measurement(variant="prepush", network="mpich-gm")
        assert m.time > 0
        with pytest.raises(ReproError, match="2 sweep runs"):
            res.get(variant="prepush")
        with pytest.raises(ReproError, match="0 sweep runs"):
            res.get(variant="prepush", network="nope")

    def test_transform_attached_to_both_variants(self):
        res = run_sweep(tiny_spec())
        for run in res.runs:
            assert run.transform is not None
            assert run.transform.sites[0].tile_size == 4

    def test_uncacheable_externals_still_run(self, tmp_path):
        spec = SweepSpec(
            name="ext",
            app="indirect-external",
            app_kwargs={"n": 4, "stages": 1},
            nranks=(2,),
            networks=("gmnet",),
            verify=True,
        )
        cache = SweepCache(tmp_path / "c")
        res = run_sweep(spec, cache=cache)
        assert res.stats.uncacheable == len(res.runs)
        assert all(r.fingerprint is None for r in res.runs)
        assert all(not r.cached for r in res.runs)
        # nothing was stored, so the second run simulates again
        again = run_sweep(spec, cache=SweepCache(tmp_path / "c"))
        assert again.stats.simulated == res.stats.simulated
        for a, b in zip(res.runs, again.runs):
            assert a.measurement == b.measurement

    def test_measurement_roundtrip(self):
        res = run_sweep(tiny_spec())
        m = res.runs[0].measurement
        assert Measurement.from_dict(m.to_dict()) == m
        with pytest.raises(ValueError, match="fields"):
            Measurement.from_dict({"time": 1.0})

    def test_bad_variant_rejected(self):
        with pytest.raises(ReproError, match="unknown variants"):
            tiny_spec(variants=("original", "transmogrified"))

    def test_spec_json_roundtrip(self):
        spec = tiny_spec(collectives=({"alltoall": "bruck"},))
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        a = run_sweep(spec)
        b = run_sweep(clone)
        for ra, rb in zip(a.runs, b.runs):
            assert ra.axes == rb.axes
            assert ra.measurement == rb.measurement

    def test_spec_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ReproError, match="unknown keys"):
            SweepSpec.from_dict({"name": "x", "app": "fft", "colour": "red"})
        with pytest.raises(ReproError, match="'name' and 'app'"):
            SweepSpec.from_dict({"app": "fft"})

    def test_expand_spec_counts(self):
        spec = tiny_spec(
            networks=("gmnet", "hostnet"),
            tile_sizes=(2, 4),
            cpu_scales=(1.0, 4.0),
        )
        points, verifications = expand_spec(spec)
        # 1 nranks x 2 tiles x 1 interchange x 2 scales x 2 variants x
        # 2 networks x 1 collective
        assert len(points) == 16
        assert verifications == []  # verify=False

    def test_collective_label(self):
        assert collective_label(None) == "default"
        assert collective_label({"alltoall": "pairwise"}) == "default"
        assert collective_label({"alltoall": "bruck"}) == "alltoall=bruck"
        assert (
            collective_label("alltoall=bruck,allreduce=ring")
            == "alltoall=bruck,allreduce=ring"
        )


class TestEngineModeKeys:
    """Replay-engine cache-key rules (DESIGN.md §10): engine mode is NOT
    part of the key (all modes are bit-identical, so they must share
    entries), while the symmetry-analyzer version IS (a semantics bump
    must invalidate replay-produced results)."""

    def base_job(self, **overrides):
        kwargs = dict(program=PROGRAM, nranks=2, network="gmnet")
        kwargs.update(overrides)
        return ClusterJob(**kwargs)

    def test_engine_mode_does_not_move_the_key(self):
        keys = {
            job_fingerprint(self.base_job(engine_mode=mode))
            for mode in ("auto", "replay", "full")
        }
        assert len(keys) == 1

    def test_symmetry_version_moves_the_key(self, monkeypatch):
        import repro.interp.symmetry as symmetry

        base = job_fingerprint(self.base_job())
        monkeypatch.setattr(symmetry, "SYMMETRY_VERSION", "999-test")
        assert job_fingerprint(self.base_job()) != base

    def test_modes_share_sweep_cache_entries(self, tmp_path):
        from repro.api import Session

        symmetric = tiny_spec(variants=("original",))
        with Session(cache_dir=tmp_path / "c", engine_mode="full") as s:
            cold = s.sweep(symmetric)
        assert cold.stats.simulated > 0
        with Session(cache_dir=tmp_path / "c", engine_mode="replay") as s:
            warm = s.sweep(symmetric)
        assert warm.stats.total_simulated == 0
        assert [r.measurement for r in warm.runs] == [
            r.measurement for r in cold.runs
        ]

    def test_warm_1024_rank_sweep_does_zero_simulations(self, tmp_path):
        """The scaling endgame: once measured (or migrated), a
        1024-rank sweep re-runs entirely from the cache — the spec is
        expanded and fingerprinted, but nothing simulates."""
        import dataclasses as _dc

        from repro.api import Session
        from repro.harness.sweep import SweepCache

        spec = SweepSpec(
            name="warm-1024",
            app="nodeloop",
            app_kwargs={"n": 1024, "steps": 1, "stages": 0},
            nranks=(1024,),
            variants=("original",),
            collectives=({"alltoall": "bruck"},),
            verify=False,
        )
        points, verifications = expand_spec(spec)
        assert verifications == []
        cache = SweepCache(tmp_path / "c")
        for point in points:
            fp = job_fingerprint(point.job())
            synthetic = Measurement(
                label=point.label,
                network=point.network.name,
                time=1.25,
                compute_time=1.0,
                wait_time=0.125,
                mpi_overhead=0.125,
                messages=10240,
                bytes_sent=8 << 20,
                unexpected=0,
                warnings=[],
                collective="alltoall=bruck",
            )
            cache.put(
                fp,
                {
                    "kind": "measurement",
                    "inputs": dict(point.axes),
                    "measurement": _dc.asdict(synthetic),
                },
            )
        with Session(cache_dir=tmp_path / "c") as s:
            warm = s.sweep(spec)
        assert warm.stats.total_simulated == 0
        assert warm.stats.mode == "none"
        assert len(warm.runs) == len(points)
        assert all(r.cached for r in warm.runs)
        assert warm.runs[0].measurement.time == 1.25
