"""Result tables and chart rendering."""

import pytest

from repro.errors import ReproError
from repro.harness.report import Table, bar_chart, format_cell, format_seconds


class TestTable:
    def _table(self):
        t = Table(title="demo", columns=["name", "x", "y"])
        t.add("a", 1, 2.5)
        t.add("b", 3, 0.125)
        return t

    def test_add_and_column(self):
        t = self._table()
        assert t.column("name") == ["a", "b"]
        assert t.column("x") == [1, 3]

    def test_wrong_arity_rejected(self):
        t = self._table()
        with pytest.raises(ReproError, match="cells"):
            t.add("c", 1)

    def test_unknown_column_rejected(self):
        with pytest.raises(ReproError, match="no column"):
            self._table().column("z")

    def test_lookup(self):
        t = self._table()
        row = t.lookup(name="b")
        assert row == {"name": "b", "x": 3, "y": 0.125}

    def test_lookup_ambiguous(self):
        t = Table(title="t", columns=["a"])
        t.add(1)
        t.add(1)
        with pytest.raises(ReproError, match="2 rows"):
            t.lookup(a=1)

    def test_value(self):
        assert self._table().value("y", name="a") == 2.5

    def test_render_contains_everything(self):
        t = self._table()
        t.notes.append("a note")
        text = t.render()
        assert "demo" in text
        assert "name" in text and "x |" in text
        assert "2.5" in text
        assert "a note" in text

    def test_render_empty(self):
        t = Table(title="empty", columns=["a", "b"])
        assert "empty" in t.render()


class TestFormatting:
    def test_format_cell_float(self):
        assert format_cell(2.5) == "2.5"
        assert "e" in format_cell(1.23e-9)
        assert format_cell(0.0) == "0"

    def test_format_cell_passthrough(self):
        assert format_cell("x") == "x"
        assert format_cell(42) == "42"

    def test_format_seconds_scales(self):
        assert format_seconds(1.5) == "1.5 s"
        assert format_seconds(2.5e-3) == "2.5 ms"
        assert format_seconds(3.2e-6) == "3.2 us"
        assert format_seconds(5e-9) == "5 ns"
        assert format_seconds(0.0) == "0 s"


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_mismatched_lengths(self):
        with pytest.raises(ReproError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == "(empty chart)"
