"""The paper's §4 evaluation criterion: transformed output identical to
the original — across every workload, multiple tile sizes, rank counts,
and both network stacks (results must not depend on timing).
"""

import pytest

from repro.apps import APP_BUILDERS, build_app
from repro.runtime.network import IDEAL, MPICH_GM, MPICH_P4
from repro.transform import Compuniformer
from repro.verify import verify_equivalence, verify_transform

SMALL = {
    "figure2": dict(n=64, nranks=4, steps=2, stages=2),
    "indirect": dict(n=8, nranks=4, stages=2),
    "indirect-external": dict(n=8, nranks=4, stages=2),
    "fft": dict(n=16, nranks=4, steps=2, stages=2),
    "sort": dict(keys_per_dest=16, nranks=4, steps=2, stages=2),
    "stencil": dict(n=16, nranks=4, steps=2),
    "lu": dict(n=16, nranks=4, steps=2),
    "nodeloop": dict(n=16, nranks=4, steps=2, stages=2),
}


def _check(app, tile_size, network=MPICH_GM, interchange="auto"):
    tool = Compuniformer(
        tile_size=tile_size, oracle=app.oracle, interchange=interchange
    )
    report = tool.transform(app.source)
    assert report.transformed, [r.reason for r in report.rejections]
    eq = verify_equivalence(
        app.source,
        report.source,
        app.nranks,
        network=network,
        externals=app.externals,
        skip=report.dead_arrays,
    )
    assert eq.equivalent, eq.mismatches[:5]
    return report, eq


@pytest.mark.parametrize("name", sorted(SMALL))
def test_every_app_equivalent_auto_k(name):
    app = build_app(name, **SMALL[name])
    report, _ = _check(app, "auto")
    assert report.sites[0].kind.value == app.kind


def test_every_transformable_app_is_covered():
    """SMALL must track APP_BUILDERS: every app except the
    collective-bound ones (no alltoall site — their correctness is pinned
    by the cross-algorithm equivalence tests) goes through _check."""
    transformable = {
        name
        for name in APP_BUILDERS
        if build_app(name).kind != "collective"
    }
    assert transformable == set(SMALL)


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_fig2_all_legal_tile_sizes(k):
    # planes = 64/4 = 16, all of 1,2,4,8 divide it
    app = build_app("figure2", **SMALL["figure2"])
    _check(app, k)


@pytest.mark.parametrize("k", [1, 2, 3, 5, 8, 16])
def test_fft_arbitrary_tile_sizes_with_leftovers(k):
    app = build_app("fft", **SMALL["fft"])
    report, _ = _check(app, k)
    site = report.sites[0]
    assert site.ntiles * k + site.leftover == site.trip


@pytest.mark.parametrize("k", [1, 2, 3, 7, 8])
def test_indirect_tile_sizes_with_leftovers(k):
    app = build_app("indirect", **SMALL["indirect"])
    _check(app, k)


@pytest.mark.parametrize("nranks", [2, 4, 8])
def test_rank_count_sweep(nranks):
    app = build_app("fft", n=16, nranks=nranks, steps=2, stages=2)
    _check(app, 4)


@pytest.mark.parametrize(
    "network", [IDEAL, MPICH_GM, MPICH_P4], ids=lambda n: n.name
)
def test_results_independent_of_network(network):
    """Timing changes with the network; data must not."""
    app = build_app("stencil", **SMALL["stencil"])
    _check(app, 4, network=network)


def test_congested_nodeloop_still_correct():
    """interchange='never' produces the §3.5 congested schedule — slower,
    but it must compute the same data."""
    app = build_app("nodeloop", **SMALL["nodeloop"])
    _check(app, 4, interchange="never")


def test_verify_transform_one_call():
    app = build_app("figure2", **SMALL["figure2"])
    eq, report = verify_transform(
        app.source, app.nranks, tile_size=4, network=MPICH_GM
    )
    assert eq.equivalent
    assert report.transformed


def test_no_simulator_race_warnings():
    """The transformation must never modify a buffer with a transfer in
    flight; the engine's race detector is armed in every run above, but
    assert explicitly on the warning list here."""
    app = build_app("indirect", **SMALL["indirect"])
    report, eq = _check(app, 4)
    assert not any("in flight" in w for w in eq.warnings)
