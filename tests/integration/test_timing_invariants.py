"""Timing-shape invariants of the simulated evaluation (DESIGN.md §5).

These pin the *physics* of the substitution: what overlap can and cannot
buy under each network model.  The configuration (128x128 FFT transpose
on 8 ranks) is the validated regime where communication is a meaningful
fraction of execution and tiles are large enough to amortize per-message
overheads — the same regime the paper's testbed experiments ran in.
All assertions are orderings with margins, never absolute times.
"""

import pytest

from repro.apps import build_app
from repro.harness.runner import PreparedApp
from repro.runtime.network import IDEAL, MPICH_GM, MPICH_P4


@pytest.fixture(scope="module")
def pairs():
    """One transformed FFT workload measured on all three networks."""
    app = build_app("fft", n=128, nranks=8, steps=1, stages=6)
    prepared = PreparedApp(app, tile_size=16, verify=False)
    return {
        net.name: prepared.run_on(net) for net in (MPICH_GM, MPICH_P4, IDEAL)
    }


def test_prepush_wins_on_offload_network(pairs):
    gm = pairs["mpich-gm"]
    assert gm.speedup > 1.1, (
        f"prepush must beat the original on an offload NIC; got "
        f"{gm.speedup:.3f}"
    )


def test_prepush_hides_most_wait_time(pairs):
    gm = pairs["mpich-gm"]
    assert gm.prepush.wait_time < gm.original.wait_time * 0.5


def test_prepush_never_below_compute_floor(pairs):
    """No schedule can beat pure computation time."""
    gm = pairs["mpich-gm"]
    assert gm.prepush.time >= gm.prepush.compute_time


def test_ideal_network_equalizes(pairs):
    """On a zero-cost network both variants cost ~compute only."""
    ideal = pairs["ideal"]
    assert ideal.prepush.time == pytest.approx(ideal.original.time, rel=0.1)


def test_host_stack_gains_little(pairs):
    """MPICH (host-driven) cannot overlap: prepush must not win there,
    and the offload stack must benefit strictly more."""
    p4 = pairs["mpich"]
    gm = pairs["mpich-gm"]
    assert p4.speedup < 1.05
    assert gm.speedup > p4.speedup + 0.1


def test_original_gm_faster_than_original_mpich(pairs):
    """Stack ordering: GM hardware is simply faster."""
    assert pairs["mpich-gm"].original.time < pairs["mpich"].original.time


def test_bytes_identical_between_variants(pairs):
    """Pre-pushing moves the same data, just earlier and in more pieces."""
    gm = pairs["mpich-gm"]
    assert gm.prepush.bytes_sent == gm.original.bytes_sent
    assert gm.prepush.messages > gm.original.messages


def test_makespan_at_least_wire_floor(pairs):
    """Each rank must push its own bytes through its NIC: makespan >= the
    per-rank wire occupancy under either variant."""
    gm = pairs["mpich-gm"]
    per_rank_bytes = gm.prepush.bytes_sent / 8
    wire_floor = per_rank_bytes * MPICH_GM.byte_time
    assert gm.prepush.time >= wire_floor
    assert gm.original.time >= wire_floor


def test_tile_size_extremes_are_worse_than_moderate():
    """The U-shape of Ablation A: K=1 pays per-message overhead, K=trip
    has no overlap; a moderate K beats both extremes."""
    app = build_app("fft", n=128, nranks=8, steps=1, stages=6)
    times = {}
    for k in (1, 16, 128):
        pair = PreparedApp(app, tile_size=k, verify=False).run_on(MPICH_GM)
        times[k] = pair.prepush.time
    assert times[16] < times[1]
    assert times[16] < times[128]


def test_congestion_costs():
    """Ablation E's physics: the congested (no-interchange) schedule of
    the nodeloop kernel is slower than the interchanged one."""
    app = build_app("nodeloop", n=96, nranks=8, steps=1, stages=6)
    good = PreparedApp(app, interchange="auto", verify=False).run_on(MPICH_GM)
    bad = PreparedApp(app, interchange="never", verify=False).run_on(MPICH_GM)
    assert good.prepush.time < bad.prepush.time
