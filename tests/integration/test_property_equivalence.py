"""Property-based §4 check: equivalence over *random* programs in the
supported pattern family (random geometry, coefficients, tile size, rank
count) x the full runtime registry cross-product (every network
scenario, every alltoall algorithm).  This is the strongest correctness
evidence in the suite — the golden tests pin two programs on two
networks; this pins the family under any registered execution regime:
the transformed data must match whatever schedule delivers the original
alltoall and whatever protocol/offload/congestion rules time it.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.collectives import list_algorithms
from repro.runtime.network import get_model, list_models
from repro.transform import Compuniformer
from repro.verify import verify_equivalence

#: Strategies over the registries, resolved at import time: models and
#: algorithms registered by the runtime itself all participate.
networks = st.sampled_from(sorted(list_models()))
alltoall_algorithms = st.sampled_from(list_algorithms("alltoall"))


def _direct_program(nranks, planes, rows, c1, c2, c3, swap):
    """A 2-D direct-pattern program with randomized geometry.

    Last-dimension extent = nranks * planes; first dimension = rows.
    ``swap`` puts the node loop outermost (exercising interchange).
    """
    n2 = nranks * planes
    loops = (
        ("iy", "ix") if swap else ("ix", "iy")
    )
    outer, inner = loops
    return f"""
program randk
  integer, parameter :: np = {nranks}
  integer :: as(1:{rows}, 1:{n2})
  integer :: ar(1:{rows}, 1:{n2})
  integer :: it, ix, iy, ierr

  do it = 1, 2
    do {outer} = 1, {dict(ix=rows, iy=n2)[outer]}
      do {inner} = 1, {dict(ix=rows, iy=n2)[inner]}
        as(ix, iy) = ix * {c1} + iy * {c2} + it * {c3} + mynode() * 13
      enddo
    enddo
    call mpi_alltoall(as, {rows * n2} / np, 0, ar, {rows * n2} / np, 0, 0, ierr)
  enddo
end program randk
"""


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    nranks=st.sampled_from([2, 3, 4]),
    planes=st.sampled_from([1, 2, 3]),
    rows=st.sampled_from([3, 4, 6, 8]),
    c1=st.integers(1, 50),
    c2=st.integers(1, 50),
    c3=st.integers(0, 20),
    swap=st.booleans(),
    k=st.integers(1, 8),
    network=networks,
    algorithm=alltoall_algorithms,
)
def test_random_direct_programs_equivalent(
    nranks, planes, rows, c1, c2, c3, swap, k, network, algorithm
):
    src = _direct_program(nranks, planes, rows, c1, c2, c3, swap)
    report = Compuniformer(tile_size=min(k, rows)).transform(src)
    if not report.transformed:
        # some (k, geometry) pairs are legitimately rejected (scheme B
        # divisibility); rejection is fine, mis-compilation is not
        assert report.rejections
        return
    eq = verify_equivalence(
        src,
        report.source,
        nranks,
        network=get_model(network),
        skip=report.dead_arrays,
        collective={"alltoall": algorithm},
    )
    assert eq.equivalent, eq.mismatches[:5]


def _indirect_program(n, nranks):
    return f"""
program randind
  integer, parameter :: n = {n}, np = {nranks}
  integer :: as(1:n, 1:n, 1:n)
  integer :: ar(1:n, 1:n, 1:n)
  integer :: at(1:n * n)
  integer :: iy, ix, tx, ty, ierr

  do iy = 1, n
    call producer(iy, at)
    do ix = 1, n * n
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1) / n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, n * n * n / np, 0, ar, n * n * n / np, 0, 0, ierr)
end program randind

subroutine producer(step, buf)
  integer :: step
  integer :: buf(1:{n * n})
  integer :: i

  do i = 1, {n * n}
    buf(i) = mod(i * 13 + step * 7 + mynode() * 31, 211)
  enddo
end subroutine producer
"""


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.sampled_from([4, 6, 8]),
    nranks=st.sampled_from([2, 4]),
    k=st.integers(1, 8),
    network=networks,
    algorithm=alltoall_algorithms,
)
def test_random_indirect_programs_equivalent(n, nranks, k, network, algorithm):
    if n % nranks:
        return
    src = _indirect_program(n, nranks)
    report = Compuniformer(tile_size=min(k, n)).transform(src)
    assert report.transformed, [r.reason for r in report.rejections]
    eq = verify_equivalence(
        src,
        report.source,
        nranks,
        network=get_model(network),
        skip=report.dead_arrays,
        collective={"alltoall": algorithm},
    )
    assert eq.equivalent, eq.mismatches[:5]
