"""DESIGN §3.2 determinism regression: the simulation is a pure function
of its inputs.

The sweep cache's soundness (DESIGN §7) rests entirely on this section:
two runs of the same :class:`ClusterJob` — in the same process, or
through the :func:`run_many` process pool — must produce bit-identical
``SimResult``s: virtual times, per-rank accounting (event counts), and
final payloads.  These tests pin exactly that, at bit (``==``) rather
than approximate precision.
"""

import numpy as np
import pytest

from repro.apps import build_app
from repro.interp.runner import ClusterJob, run_cluster, run_many
from repro.transform.prepush import Compuniformer


def assert_runs_bit_identical(a, b):
    # virtual times
    assert a.result.time == b.result.time
    assert a.result.rank_times == b.result.rank_times
    # event counts and per-rank accounting (RankStats is a dataclass:
    # == compares every field exactly, including float times)
    assert a.result.stats == b.result.stats
    assert a.result.warnings == b.result.warnings
    # printed records and final payloads
    assert a.outputs == b.outputs
    assert len(a.arrays) == len(b.arrays)
    for rank in range(len(a.arrays)):
        assert sorted(a.arrays[rank]) == sorted(b.arrays[rank])
        for name, arr in a.arrays[rank].items():
            assert np.array_equal(arr, b.arrays[rank][name]), (rank, name)


def _jobs():
    """A job mix covering point-to-point, collectives, and the prepush
    schedule, on both the offload and host-driven stacks."""
    fft = build_app("fft", n=8, nranks=4, steps=1, stages=2)
    prepush = Compuniformer(tile_size=2).transform(fft.source)
    cg = build_app("cg", n=16, nranks=4, steps=2, stages=2)
    return [
        ClusterJob(program=fft.source, nranks=4, network="gmnet"),
        ClusterJob(program=prepush.source, nranks=4, network="gmnet"),
        ClusterJob(program=fft.source, nranks=4, network="hostnet",
                   collective={"alltoall": "bruck"}),
        ClusterJob(program=cg.source, nranks=4, network="gm-rendezvous"),
    ]


class TestSerialDeterminism:
    @pytest.mark.parametrize("index", range(4))
    def test_same_job_twice_is_bit_identical(self, index):
        job = _jobs()[index]
        first = run_cluster(
            job.program,
            job.nranks,
            job.network,
            collective=job.collective,
        )
        second = run_cluster(
            job.program,
            job.nranks,
            job.network,
            collective=job.collective,
        )
        assert_runs_bit_identical(first, second)


class TestPoolDeterminism:
    def test_pool_matches_serial_bit_for_bit(self):
        """The same batch through the process pool (when the sandbox
        provides one — the serial fallback is equally covered and the
        batch reports which one ran)."""
        jobs = _jobs()
        serial = run_many(jobs, processes=None)
        assert serial.mode == "serial"
        pooled = run_many(jobs, processes=2)
        assert pooled.mode in ("pool", "serial")
        assert len(pooled) == len(serial)
        for a, b in zip(serial, pooled):
            assert_runs_bit_identical(a, b)


class TestReplayScaleDeterminism:
    """§3.2 at scale: a 256-rank sweep through the replay engine
    (DESIGN.md §10) is a pure function of its spec — run twice serially
    and once through the process pool, it must produce bit-identical
    measurements and identical content-addressed cache keys."""

    @staticmethod
    def _spec():
        from repro.harness.sweep import SweepSpec

        return SweepSpec(
            name="scale-256",
            app="nodeloop",
            app_kwargs={"n": 256, "steps": 1, "stages": 0},
            nranks=(256,),
            variants=("original",),
            collectives=({"alltoall": "bruck"},),
            verify=False,
        )

    def test_cache_keys_are_stable(self):
        from repro.harness.sweep import expand_spec
        from repro.interp.runner import job_fingerprint

        first, _ = expand_spec(self._spec())
        second, _ = expand_spec(self._spec())
        assert [job_fingerprint(p.job()) for p in first] == [
            job_fingerprint(p.job()) for p in second
        ]

    def test_serial_twice_and_pooled_are_bit_identical(self):
        from repro.api import Session

        spec = self._spec()
        with Session(jobs=None) as s:
            serial_a = s.sweep(spec)
            serial_b = s.sweep(spec)
        assert serial_a.stats.simulated == serial_b.stats.simulated > 0
        assert [r.measurement for r in serial_a.runs] == [
            r.measurement for r in serial_b.runs
        ]  # Measurement is a dataclass: == is bit-exact on every float
        with Session(jobs=2) as s:
            pooled = s.sweep(spec)
        assert [r.measurement for r in pooled.runs] == [
            r.measurement for r in serial_a.runs
        ]
