"""Replay-engine parity suite (DESIGN.md §10).

The rank-symmetry replay engine's contract is *bit-identity*: whenever
recording succeeds, ``engine_mode="replay"`` must produce exactly the
``ClusterRun`` full per-rank interpretation produces — virtual times,
per-rank accounting, warnings, printed records, and every final array,
at ``==`` precision, across the whole app roster, the network registry,
the collective-algorithm registry, and every rank count the workload
divides into.  These tests pin that claim, plus the fallback rule: a
program the recorder rejects (point-to-point, subroutines/externals,
rank-dependent control flow, real allreduce) silently falls back under
``"auto"`` and raises :class:`~repro.errors.EngineModeError` under
``"replay"`` — never a silently different result.
"""

import numpy as np
import pytest

from repro.apps import build_app
from repro.errors import EngineModeError, ReproError, SymmetryError
from repro.interp.replay import replay_cluster
from repro.interp.runner import ClusterJob, execute_job
from repro.transform.pipeline import resolve_variant
from repro.transform.options import TransformOptions

from test_determinism import assert_runs_bit_identical


def _run(program, nranks, mode, *, network="gmnet", collective=None,
         externals=None):
    return execute_job(
        ClusterJob(
            program=program,
            nranks=nranks,
            network=network,
            collective=collective,
            externals=externals,
            engine_mode=mode,
        )
    )


def assert_parity(program, nranks, *, network="gmnet", collective=None):
    """Force replay and force full interpretation; demand bit-identity.

    Forcing (rather than ``auto``) proves the replay path actually ran:
    an asymmetric program would raise EngineModeError here, not quietly
    compare full against full.
    """
    replay = _run(program, nranks, "replay",
                  network=network, collective=collective)
    full = _run(program, nranks, "full",
                network=network, collective=collective)
    assert replay.data_approximate is False
    assert_runs_bit_identical(replay, full)
    # the SimResult dataclass == covers every field at once, including
    # the scheduler op count
    assert replay.result == full.result
    return replay, full


# one kwargs builder per roster app, sized so the P=64 cases stay fast;
# a ReproError from a divisibility constraint skips that combination
_APP_KWARGS = {
    "figure2": lambda p: dict(n=8 * p, steps=2, stages=1),
    "fft": lambda p: dict(n=p if p % 2 == 0 else 2 * p, steps=1, stages=1),
    "sort": lambda p: dict(keys_per_dest=8, steps=2, stages=1),
    "stencil": lambda p: dict(n=2 * p, steps=2),
    "lu": lambda p: dict(n=2 * p, steps=2),
    "nodeloop": lambda p: dict(n=p, steps=2, stages=1),
    "cg": lambda p: dict(n=4 * p, steps=2, ndots=2, stages=1),
    "halo": lambda p: dict(n=16, steps=2, stages=1),
}

RANK_COUNTS = (2, 4, 7, 16, 64)


class TestRosterParity:
    @pytest.mark.parametrize("name", sorted(_APP_KWARGS))
    @pytest.mark.parametrize("nranks", RANK_COUNTS)
    def test_app_replays_bit_identically(self, name, nranks):
        try:
            app = build_app(name, nranks=nranks, **_APP_KWARGS[name](nranks))
        except ReproError as exc:
            pytest.skip(f"{name} does not divide into {nranks} ranks: {exc}")
        assert_parity(app.source, nranks)

    @pytest.mark.parametrize("network",
                             ["ideal", "gmnet", "hostnet", "gm-rendezvous"])
    @pytest.mark.parametrize("name", ["nodeloop", "halo"])
    def test_networks_axis(self, name, network):
        app = build_app(name, nranks=8, **_APP_KWARGS[name](8))
        assert_parity(app.source, 8, network=network)

    @pytest.mark.parametrize("algorithm",
                             ["pairwise", "ring", "scattered", "bruck"])
    def test_alltoall_algorithms(self, algorithm):
        app = build_app("nodeloop", nranks=8, n=16, steps=2, stages=1)
        assert_parity(app.source, 8, collective={"alltoall": algorithm})

    @pytest.mark.parametrize("algorithm", ["recursive-doubling", "ring"])
    def test_allreduce_algorithms(self, algorithm):
        app = build_app("cg", nranks=8, n=32, steps=2, ndots=2, stages=1)
        assert_parity(app.source, 8, collective={"allreduce": algorithm})

    @pytest.mark.parametrize("algorithm", ["ring", "linear"])
    def test_allgather_algorithms(self, algorithm):
        app = build_app("halo", nranks=8, n=16, steps=2, stages=1)
        assert_parity(app.source, 8, collective={"allgather": algorithm})


BCAST_BARRIER_SRC = """
program bb
  integer, parameter :: n = 12
  integer :: a(1:n)
  integer :: i, ierr
  do i = 1, n
    a(i) = i * 3 + mynode() * 11
  enddo
  call mpi_bcast(a, n, 2, ierr)
  call mpi_barrier(ierr)
  do i = 1, n
    a(i) = a(i) + mynode()
  enddo
  call mpi_barrier(ierr)
  print *, a(1), a(n)
end program bb
"""

ALLREDUCE_OPS_SRC = """
program ops
  integer, parameter :: n = 6
  integer :: a(1:n), r(1:n)
  integer :: i, ierr
  do i = 1, n
    a(i) = i + mynode() * 5
  enddo
  call mpi_allreduce(a, r, n, {op}, ierr)
  print *, r(1), r(n)
end program ops
"""

PRINT_RANKVEC_SRC = """
program pr
  integer :: x, ierr
  x = mynode() * 7 + 3
  call mpi_barrier(ierr)
  print *, x, numnodes()
end program pr
"""


class TestCollectiveAndOutputParity:
    @pytest.mark.parametrize("algorithm", ["binomial", "linear"])
    def test_bcast_and_barrier(self, algorithm):
        assert_parity(BCAST_BARRIER_SRC, 8,
                      collective={"bcast": algorithm})

    @pytest.mark.parametrize("op", [0, 1, 2, 3])  # sum, max, min, prod
    def test_integer_allreduce_ops(self, op):
        assert_parity(ALLREDUCE_OPS_SRC.format(op=op), 8)

    def test_rank_dependent_prints_expand_per_rank(self):
        replay, full = assert_parity(PRINT_RANKVEC_SRC, 5)
        assert replay.outputs[3] == [(3 * 7 + 3, 5)]
        assert [o[0][0] for o in replay.outputs] == [3, 10, 17, 24, 31]


REAL_ALLREDUCE_SRC = """
program rsum
  real :: a(1:4), r(1:4)
  integer :: i, ierr
  do i = 1, 4
    a(i) = (i + mynode()) * 0.5
  enddo
  call mpi_allreduce(a, r, 4, 0, ierr)
end program rsum
"""

P2P_SRC = """
program ring
  integer :: buf(1:8)
  integer :: i, ierr
  do i = 1, 8
    buf(i) = i + mynode()
  enddo
  call mpi_isend(buf, 8, mod(mynode() + 1, numnodes()), 0, ierr)
  call mpi_waitall(ierr)
end program ring
"""

BRANCH_ON_RANK_SRC = """
program br
  integer :: x, ierr
  x = 1
  if (mynode() == 0) then
    x = 2
  endif
  call mpi_barrier(ierr)
  print *, x
end program br
"""


class TestFallback:
    """Asymmetric programs: ``auto`` falls back bit-identically to
    ``full``; ``replay`` refuses loudly instead of approximating."""

    @pytest.mark.parametrize("src", [REAL_ALLREDUCE_SRC, P2P_SRC,
                                     BRANCH_ON_RANK_SRC],
                             ids=["real-allreduce", "p2p", "rank-branch"])
    def test_auto_falls_back_to_full(self, src):
        auto = _run(src, 4, "auto")
        full = _run(src, 4, "full")
        assert_runs_bit_identical(auto, full)
        assert auto.result == full.result

    @pytest.mark.parametrize("src", [REAL_ALLREDUCE_SRC, P2P_SRC,
                                     BRANCH_ON_RANK_SRC],
                             ids=["real-allreduce", "p2p", "rank-branch"])
    def test_forced_replay_raises(self, src):
        with pytest.raises(EngineModeError) as err:
            _run(src, 4, "replay")
        assert "not provably rank-symmetric" in str(err.value)
        assert isinstance(err.value.__cause__, SymmetryError)

    def test_indirect_app_falls_back(self):
        app = build_app("indirect", nranks=4, n=8, stages=1)
        auto = _run(app.source, 4, "auto", externals=app.externals)
        full = _run(app.source, 4, "full", externals=app.externals)
        assert_runs_bit_identical(auto, full)
        with pytest.raises(EngineModeError):
            _run(app.source, 4, "replay", externals=app.externals)

    def test_transformed_variant_falls_back(self):
        """The prepush schedule emits isend/irecv — outside the
        symmetry proof, so it must fall back, never replay wrongly."""
        app = build_app("nodeloop", nranks=4, n=16, steps=2, stages=1)
        report = resolve_variant("prepush").run(
            app.source, TransformOptions(), snapshots=False
        )
        assert report.changed
        auto = _run(report.source, 4, "auto")
        full = _run(report.source, 4, "full")
        assert_runs_bit_identical(auto, full)
        with pytest.raises(EngineModeError):
            _run(report.source, 4, "replay")

    def test_replay_cluster_raises_symmetry_error_directly(self):
        with pytest.raises(SymmetryError):
            replay_cluster(P2P_SRC, 4)

    def test_unknown_engine_mode_rejected(self):
        app = build_app("halo", nranks=4, n=16, steps=1, stages=1)
        with pytest.raises(Exception, match="engine_mode"):
            _run(app.source, 4, "warp")
