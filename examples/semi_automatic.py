#!/usr/bin/env python
"""Domain scenario: the semi-automatic workflow of §3.1.

The paper's indirect-pattern test program computes its data inside a
procedure whose source is unavailable (a compiled library).  The
analysis then cannot prove the producer writes the temporary array and
must *query the user*.  This example shows the whole loop:

1. a RecordingOracle wraps the user's answers and logs every query,
2. the transformation proceeds on a "yes" answer,
3. equivalence is verified against a Python implementation of the
   library routine registered as an external,
4. the same program with a "no" answer is (correctly) left alone.

Run:  python examples/semi_automatic.py
"""

from repro import Session, VerifyRequest
from repro.analysis.callinfo import DictOracle, RecordingOracle
from repro.apps import indirect_external_kernel
from repro.runtime.costmodel import DEFAULT_COST_MODEL
from repro.transform import Compuniformer

#: the figure-1 regime: producer work comparable to 2005-era kernels
COST = DEFAULT_COST_MODEL.scaled(8.0)


def main() -> None:
    app = indirect_external_kernel(
        n=32, nranks=8, stages=6, work_per_element=500e-9
    )
    print("workload:", app.description)
    print()

    # --- the user answers "producer writes its 2nd argument" -------------
    # one Session.verify call transforms (querying the oracle) and runs
    # the §4 equivalence check on the simulated cluster
    session = Session(network="gmnet", cost_model=COST)
    oracle = RecordingOracle(DictOracle({"producer": {1}}))
    result = session.verify(
        VerifyRequest(
            program=app.source,
            nranks=app.nranks,
            tile_size=4,
            oracle=oracle,
            externals=app.externals,
        )
    )
    report = result.transform

    print("== user queries the analysis needed ==")
    for q in oracle.queries:
        answer = "yes" if q.answer else "no"
        print(
            f"  may procedure '{q.procedure}' write argument "
            f"{q.arg_index + 1}?  ->  {answer}"
        )
    print()
    print("== site report ==")
    print(report.describe())
    print()

    assert result.equivalent, result.equivalence.mismatches
    print(
        f"equivalent: yes   "
        f"(speedup on mpich-gm: {result.speedup:.3f}x)"
    )
    print()

    # --- the user answers "no" -------------------------------------------
    denying = Compuniformer(
        tile_size=4,
        oracle=DictOracle({"producer": set()}, default=False),
    )
    denied = denying.transform(app.source)
    print("== with the user answering 'no' ==")
    print(denied.describe())
    assert not denied.transformed


if __name__ == "__main__":
    main()
