#!/usr/bin/env python
"""Domain scenario: pre-pushing a distributed FFT's transpose step.

The multi-dimensional FFT is one of the algorithm classes the paper's
introduction motivates.  This example builds the FFT-transpose workload,
shows the scheme-A transformation (the paper's Figure 4 pairwise
exchange fires once per tile of rows), and sweeps the tile size to find
the sweet spot — exactly the tuning loop a user of the tool would run.

Run:  python examples/fft_transpose.py
"""

from repro import CompareRequest, Session
from repro.apps import fft_transpose
from repro.harness import Table, format_seconds


def main() -> None:
    session = Session(network="gmnet")
    app = fft_transpose(n=96, nranks=8, steps=1, stages=6)
    print(f"workload: {app.description}\n")

    # show what the tool does to it
    prepared = session.prepare(CompareRequest(app=app, tile_size=8))
    site = prepared.transform.sites[0]
    print(
        f"transformed: {site.kind.value} pattern, scheme {site.scheme}, "
        f"{site.ntiles} tiles of K={site.tile_size}"
    )
    print("communication code generated per tile (paper Figure 4):\n")
    text = prepared.transform.unparse()
    in_guard = False
    for line in text.splitlines():
        if "mod(ix, 8) == 0" in line:
            in_guard = True
        if in_guard:
            print(f"    {line.strip()}")
        if in_guard and "endif" in line:
            break
    print()

    # tile-size tuning sweep
    n = app.params["n"]
    table = Table(
        title=f"tile-size sweep on mpich-gm ({n}x{n} transpose, 8 ranks)",
        columns=["K", "time", "speedup"],
    )
    base = None
    for k in (1, 2, 4, 8, 16, 32, 64):
        pair = session.compare(
            CompareRequest(app=app, tile_size=k, verify=False)
        )
        if base is None:
            base = pair.original.time
        table.add(k, format_seconds(pair.prepush.time), base / pair.prepush.time)
    table.notes.append(f"original (blocking alltoall): {format_seconds(base)}")
    print(table.render())


if __name__ == "__main__":
    main()
