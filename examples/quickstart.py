#!/usr/bin/env python
"""Quickstart: transform an MPI kernel and watch the overlap win.

Walks the complete workflow on a matrix-transpose kernel (the 2-D shape
of the paper's motivating workloads — the generated communication is the
paper's Figure 4 pairwise exchange, fired once per tile of rows),
driven entirely through the typed :class:`repro.Session` façade:

1. write a mini-Fortran MPI program (compute nest + MPI_ALLTOALL),
2. open a Session on the MPICH-GM (NIC offload) network model,
3. ``session.verify(...)``: transform, read the site report, and check
   §4-style output equivalence on the simulated cluster in one call,
4. print the transformed source,
5. ``session.measure(Job(...))`` both variants and compare timings.

Run:  python examples/quickstart.py
"""

from repro import Job, Session, VerifyRequest
from repro.harness import format_seconds

SOURCE = """
program quickstart
  integer, parameter :: n = 128, np = 8
  integer :: as(1:n, 1:n)
  integer :: ar(1:n, 1:n)
  integer :: ix, iy, ierr
  integer :: t0, t1, t2, t3

  do ix = 1, n
    do iy = 1, n
      t0 = ix * 23 + iy * 101 + mynode() * 53
      t1 = mod(t0 * 5 + 2, 8191)
      t2 = mod(t1 * 7 + 5, 7919)
      t3 = mod(t2 * 11 + 9, 6151)
      as(ix, iy) = t3
    enddo
  enddo
  call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
end program quickstart
"""


def main() -> None:
    # --- 2: one front door; "gmnet" resolves in the scenario registry ----
    session = Session(network="gmnet")

    # --- 3: transform + §4 correctness criterion in one call -------------
    result = session.verify(
        VerifyRequest(program=SOURCE, nranks=8, tile_size=16)
    )
    print("== transformation report ==")
    print(result.transform.describe())
    print()

    # --- 4: the pre-pushed program (paper Figure 4 inside the guard) -----
    print("== transformed source ==")
    print(result.transform.unparse())

    assert result.equivalent, result.equivalence.mismatches
    print("== equivalence ==")
    print(
        f"original and transformed programs agree on "
        f"{', '.join(result.equivalence.compared_arrays)}"
    )
    print()

    # --- 5: timing on the offload network ---------------------------------
    original = session.measure(
        Job(program=SOURCE, nranks=8, label="original")
    )
    prepush = session.measure(
        Job(program=result.transform.source, nranks=8, label="prepush")
    )
    print("== virtual timing on mpich-gm ==")
    print(f"original: {format_seconds(original.time)}")
    print(f"prepush:  {format_seconds(prepush.time)}")
    print(f"speedup:  {original.time / prepush.time:.3f}x")
    print(
        f"(time blocked waiting for the network: "
        f"{format_seconds(original.wait_time)} -> "
        f"{format_seconds(prepush.wait_time)})"
    )


if __name__ == "__main__":
    main()
