#!/usr/bin/env python
"""Quickstart: transform an MPI kernel and watch the overlap win.

Walks the complete workflow on a matrix-transpose kernel (the 2-D shape
of the paper's motivating workloads — the generated communication is the
paper's Figure 4 pairwise exchange, fired once per tile of rows):

1. write a mini-Fortran MPI program (compute nest + MPI_ALLTOALL),
2. run the Compuniformer on it and read the site report,
3. print the transformed source,
4. check §4-style output equivalence on the simulated cluster,
5. measure both variants on the MPICH-GM (NIC offload) network model.

Run:  python examples/quickstart.py
"""

from repro import Compuniformer, verify_equivalence
from repro.harness import format_seconds
from repro.harness.runner import measure
from repro.runtime.network import MPICH_GM

SOURCE = """
program quickstart
  integer, parameter :: n = 128, np = 8
  integer :: as(1:n, 1:n)
  integer :: ar(1:n, 1:n)
  integer :: ix, iy, ierr
  integer :: t0, t1, t2, t3

  do ix = 1, n
    do iy = 1, n
      t0 = ix * 23 + iy * 101 + mynode() * 53
      t1 = mod(t0 * 5 + 2, 8191)
      t2 = mod(t1 * 7 + 5, 7919)
      t3 = mod(t2 * 11 + 9, 6151)
      as(ix, iy) = t3
    enddo
  enddo
  call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
end program quickstart
"""


def main() -> None:
    # --- 1+2: transform --------------------------------------------------
    tool = Compuniformer(tile_size=16)
    report = tool.transform(SOURCE)
    print("== transformation report ==")
    print(report.describe())
    print()

    # --- 3: the pre-pushed program (paper Figure 4 inside the guard) -----
    print("== transformed source ==")
    print(report.unparse())

    # --- 4: §4 correctness criterion --------------------------------------
    equivalence = verify_equivalence(
        SOURCE, report.source, nranks=8, network=MPICH_GM
    )
    assert equivalence.equivalent, equivalence.mismatches
    print("== equivalence ==")
    print(
        f"original and transformed programs agree on "
        f"{', '.join(equivalence.compared_arrays)}"
    )
    print()

    # --- 5: timing on the offload network ---------------------------------
    original = measure(SOURCE, 8, MPICH_GM, label="original")
    prepush = measure(report.source, 8, MPICH_GM, label="prepush")
    print("== virtual timing on mpich-gm ==")
    print(f"original: {format_seconds(original.time)}")
    print(f"prepush:  {format_seconds(prepush.time)}")
    print(f"speedup:  {original.time / prepush.time:.3f}x")
    print(
        f"(time blocked waiting for the network: "
        f"{format_seconds(original.wait_time)} -> "
        f"{format_seconds(prepush.wait_time)})"
    )


if __name__ == "__main__":
    main()
