#!/usr/bin/env python
"""Regenerate the paper's evaluation: Figure 1 plus the ablations.

Prints every table the benchmark suite asserts on, with an ASCII bar
chart of Figure 1 (the paper's normalized-execution-time plot).

Run:  python examples/paper_figures.py [--fast]

``--fast`` shrinks problem sizes ~10x so the whole script finishes
quickly.  CAUTION: at these miniature sizes messages are too small to
amortize per-message overheads, so prepush mostly *loses* — useful for
exercising the machinery, not for conclusions.  (That behaviour is
itself the left arm of Ablation A's U-curve.)  The full sizes, which
reproduce the paper's shapes, are what EXPERIMENTS.md records.
"""

import sys

from repro import Session
from repro.harness import (
    ablation_network,
    ablation_nodeloop,
    ablation_scaling,
    ablation_tile_size,
    ablation_workloads,
    bar_chart,
    figure1,
)


def main() -> None:
    fast = "--fast" in sys.argv
    if fast:
        print(
            "NOTE: --fast uses miniature sizes where per-message overhead\n"
            "dominates (prepush mostly loses — the K->small arm of the\n"
            "U-curve). Run without --fast for the EXPERIMENTS.md shapes.\n"
        )

    # one Session drives every figure: shared registries, one engine
    session = Session()
    fig1 = figure1(
        n=16 if fast else 32,
        nranks=8,
        stages=6,
        verify=not fast,
        session=session,
    )
    print(fig1.render())
    print()
    labels = [f"{r[0]}/{r[1]}" for r in fig1.rows]
    values = [float(r[3]) for r in fig1.rows]
    print(bar_chart(labels, values, unit="x normalized"))
    print()

    kwargs = dict(verify=not fast, session=session)
    if fast:
        size = dict(n=32, steps=1, stages=4)
        print(ablation_tile_size(ks=[1, 4, 8, 32], **size, **kwargs).render())
        print()
        print(ablation_scaling(nranks_list=(2, 4, 8), n=32, steps=1, stages=4, **kwargs).render())
        print()
        print(ablation_network(**size, **kwargs).render())
        print()
        print(
            ablation_workloads(
                sizes=dict(
                    figure2=512, indirect=16, fft=32, sort=128, stencil=32, lu=32
                ),
                **kwargs,
            ).render()
        )
        print()
        print(ablation_nodeloop(n=32, steps=1, stages=4, **kwargs).render())
    else:
        for fn in (
            ablation_tile_size,
            ablation_scaling,
            ablation_network,
            ablation_workloads,
            ablation_nodeloop,
        ):
            print(fn(**kwargs).render())
            print()


if __name__ == "__main__":
    main()
