#!/usr/bin/env python
"""Domain scenario: when does pre-pushing pay on *your* cluster?

A user porting codes across interconnects wants to know whether the
transformation is worth applying.  This example sweeps a grid of
network parameters (wire bandwidth x offload capability) for the ADI
stencil workload and prints a speedup matrix — the crossover the paper
describes (§1: the approach needs NICs that progress transfers on their
own) appears as the offload column beating the host-driven column.

Run:  python examples/network_study.py
"""

from repro import CompareRequest, Session
from repro.apps import adi_sweep
from repro.harness import Table
from repro.runtime.costmodel import DEFAULT_COST_MODEL
from repro.runtime.network import MPICH_GM


def main() -> None:
    # kernels doing realistic work per element: a session-wide cost model
    session = Session(cost_model=DEFAULT_COST_MODEL.scaled(4.0))
    app = adi_sweep(n=64, nranks=8, steps=2)
    prepared = session.prepare(CompareRequest(app=app, tile_size=8))

    table = Table(
        title="prepush speedup vs wire speed and offload (adi stencil)",
        columns=["wire", "offload_speedup", "host_driven_speedup"],
    )
    for factor in (0.5, 1, 2, 4):
        byte_time = MPICH_GM.byte_time * factor
        offload = MPICH_GM.with_(
            name=f"offload-x{factor}", byte_time=byte_time
        )
        host = MPICH_GM.with_(
            name=f"host-x{factor}",
            byte_time=byte_time,
            offload=False,
            host_byte_time=byte_time,
        )
        a = prepared.run_on(offload)
        b = prepared.run_on(host)
        table.add(f"{250 / factor:.0f} MB/s", a.speedup, b.speedup)

    print(table.render())
    print()
    print(
        "reading: the offload column rewards pre-pushing as the wire\n"
        "slows (more to hide); the host-driven column stays ~1.0 or\n"
        "below — without NIC offload there is nothing to overlap with,\n"
        "which is the paper's premise for targeting RDMA interconnects."
    )


if __name__ == "__main__":
    main()
