"""Compute cost model: virtual CPU time charged per interpreted operation.

The interpreter executes mini-Fortran programs over numpy storage, but
Python execution speed must not leak into the virtual timeline.  Instead,
each executed statement/operation charges a deterministic cost from this
model to the rank's virtual clock.  The defaults describe a 2005-era
cluster node (order 1 GHz, a few ns per scalar operation); absolute
values only set the compute/communication ratio, which the benchmark
harness sweeps explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual CPU costs, in seconds."""

    #: fixed cost per executed statement (control overhead)
    stmt_overhead: float = 1.0e-9
    #: one integer/logical scalar operation
    int_op: float = 1.0e-9
    #: one floating-point scalar operation
    real_op: float = 2.0e-9
    #: one array element load or store
    mem_access: float = 2.0e-9
    #: one intrinsic call (mod, min, ...), on top of argument costs
    intrinsic: float = 3.0e-9
    #: subroutine call/return overhead
    call_overhead: float = 20.0e-9
    #: granularity: the interpreter's generator (slow) path flushes
    #: accumulated compute time to the engine whenever it exceeds this many
    #: seconds (and always before a communication operation); the compiled
    #: fast path batches whole yield-free regions into one Compute event.
    #: Neither choice changes virtual-time totals (DESIGN.md §5).
    flush_threshold: float = 5.0e-6

    def scaled(self, factor: float) -> "CostModel":
        """A model with all compute costs multiplied by ``factor``.

        ``factor > 1`` models a slower CPU (more overlap headroom);
        ``factor < 1`` a faster one.  Used by the compute/comm-ratio
        ablation.
        """
        return replace(
            self,
            stmt_overhead=self.stmt_overhead * factor,
            int_op=self.int_op * factor,
            real_op=self.real_op * factor,
            mem_access=self.mem_access * factor,
            intrinsic=self.intrinsic * factor,
            call_overhead=self.call_overhead * factor,
        )

    def canonical_params(self) -> Dict[str, float]:
        """Stable, JSON-safe mapping of every cost knob, for the sweep
        cache fingerprint (DESIGN.md §7).  Field name → float; floats
        survive a ``json`` round trip bit-exactly."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


DEFAULT_COST_MODEL = CostModel()

#: Bytes per stored element: every mini-Fortran integer/real maps to a
#: 64-bit numpy element, and message sizes derive from element counts.
ELEMENT_BYTES = 8
