"""Simulated MPI interface used by rank programs.

:class:`SimComm` exposes the subset of MPI the paper's codes need —
non-blocking point-to-point, waits, barrier, and the collectives
``MPI_ALLTOALL`` / ``MPI_ALLREDUCE`` / ``MPI_ALLGATHER`` / ``MPI_BCAST``
— as generator methods.  A rank program calls them with ``yield from``::

    def program(rank, comm):
        ...
        h = yield from comm.isend(view, dest=1, tag=7)
        yield from comm.wait([h])

Collectives are implemented *on top of* the same isend/irecv/wait
primitives, so the original and pre-pushed programs exercise identical
machinery and timing differences arise purely from when operations are
issued — which is the effect the paper measures.  The *algorithm* used
for each collective comes from the pluggable registry in
:mod:`repro.runtime.collectives` (pairwise/ring/bruck/scattered
alltoall, recursive-doubling/ring allreduce, ...), selected per
communicator via the ``collectives=`` knob; the defaults reproduce the
classic schedules bit-for-bit.

The class also tracks outstanding send/recv handles so the transformed
code's ``mpi_waitall_recvs`` / ``mpi_waitall_sends`` / ``mpi_waitall``
(paper §3.6 steps 2 and 4) need no explicit request arrays in the
mini-Fortran source.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Union

import numpy as np

from ..errors import SimulationError
from .collectives import CollectiveSpec, get_algorithm, reduce_ufunc, resolve_suite
from .events import Barrier, Compute, Irecv, Isend, LocalCopy, SimOp, Wait

Gen = Generator[SimOp, Any, Any]


class SimComm:
    """Per-rank communicator for the simulated cluster.

    ``collectives`` selects the algorithm per collective (see
    :func:`repro.runtime.collectives.resolve_suite` for the accepted
    forms); ``None`` keeps every default.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        collectives: CollectiveSpec = None,
        staging: Optional[Dict[Any, np.ndarray]] = None,
    ) -> None:
        if not 0 <= rank < size:
            raise SimulationError(f"invalid rank {rank} of {size}")
        self._rank = rank
        self._size = size
        self._pending_sends: List[int] = []
        self._pending_recvs: List[int] = []
        self._collectives: Dict[str, str] = resolve_suite(collectives)
        self._staging = staging

    # ------------------------------------------------------------- queries

    @property
    def rank(self) -> int:
        """This process's rank (``mynode()`` in the mini-Fortran sources)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks (``numnodes()``)."""
        return self._size

    @property
    def outstanding_sends(self) -> int:
        return len(self._pending_sends)

    @property
    def outstanding_recvs(self) -> int:
        return len(self._pending_recvs)

    @property
    def collectives(self) -> Dict[str, str]:
        """The resolved collective-algorithm suite (collective -> name)."""
        return dict(self._collectives)

    # ------------------------------------------------------- point-to-point

    def isend(self, data: np.ndarray, dest: int, tag: int) -> Gen:
        """Non-blocking send; returns the handle (also tracked internally)."""
        handle = yield Isend(dest=dest, tag=tag, data=data)
        self._pending_sends.append(handle)
        return handle

    def irecv(
        self,
        buffer: Union[np.ndarray, Callable[[np.ndarray], None]],
        source: int,
        tag: int,
        nbytes: Optional[int] = None,
    ) -> Gen:
        """Non-blocking receive into ``buffer`` (ndarray view or callable)."""
        if nbytes is None:
            if not isinstance(buffer, np.ndarray):
                raise SimulationError(
                    "nbytes is required when the receive target is a callable"
                )
            nbytes = int(buffer.nbytes)
        handle = yield Irecv(source=source, tag=tag, buffer=buffer, nbytes=nbytes)
        self._pending_recvs.append(handle)
        return handle

    def wait(self, handles: Sequence[int]) -> Gen:
        """Block until the given handles complete."""
        yield Wait(handles=list(handles))
        pending = set(handles)
        self._pending_sends = [h for h in self._pending_sends if h not in pending]
        self._pending_recvs = [h for h in self._pending_recvs if h not in pending]

    def waitall(self) -> Gen:
        """Wait for every outstanding request (sends and receives)."""
        yield from self.wait(self._pending_sends + self._pending_recvs)

    def waitall_sends(self) -> Gen:
        yield from self.wait(list(self._pending_sends))

    def waitall_recvs(self) -> Gen:
        yield from self.wait(list(self._pending_recvs))

    # ----------------------------------------------------------- collective

    def barrier(self) -> Gen:
        yield Barrier()

    def alltoall(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> Gen:
        """Blocking MPI_ALLTOALL over flat buffers.

        ``sendbuf``/``recvbuf`` are 1-D views whose length divides evenly
        into ``size`` partitions; partition ``j`` of this rank's sendbuf
        goes to rank ``j``, landing in partition ``rank`` of j's recvbuf.
        Implemented by the registered algorithm (pairwise by default)
        with the same non-blocking primitives the pre-push transformation
        emits; an empty per-rank partition skips the self memcpy.
        """
        send = sendbuf.reshape(-1)
        recv = recvbuf.reshape(-1)
        if send.size % self._size or recv.size % self._size:
            raise SimulationError(
                f"alltoall buffer length {send.size} not divisible by "
                f"{self._size} ranks"
            )
        part = send.size // self._size
        if recv.size != send.size:
            raise SimulationError("alltoall send/recv sizes differ")
        algorithm = get_algorithm("alltoall", self._collectives["alltoall"])
        yield from algorithm(self, send, recv, part)

    def allreduce(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: str = "sum"
    ) -> Gen:
        """Blocking MPI_ALLREDUCE: every rank ends with op over all sendbufs.

        ``op`` is one of ``sum``/``max``/``min``/``prod`` (exact on the
        integer payloads the workloads use, so every algorithm produces
        bit-identical results regardless of combination order).
        """
        send = sendbuf.reshape(-1)
        recv = recvbuf.reshape(-1)
        if recv.size != send.size:
            raise SimulationError(
                f"allreduce send/recv sizes differ ({send.size} vs "
                f"{recv.size})"
            )
        ufunc = reduce_ufunc(op)
        algorithm = get_algorithm("allreduce", self._collectives["allreduce"])
        yield from algorithm(self, send, recv, ufunc)

    def allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> Gen:
        """Blocking MPI_ALLGATHER: rank j's sendbuf lands in partition j
        of every rank's recvbuf."""
        send = sendbuf.reshape(-1)
        recv = recvbuf.reshape(-1)
        if recv.size != send.size * self._size:
            raise SimulationError(
                f"allgather recv length {recv.size} != send length "
                f"{send.size} * {self._size} ranks"
            )
        algorithm = get_algorithm("allgather", self._collectives["allgather"])
        yield from algorithm(self, send, recv)

    def bcast(self, buffer: np.ndarray, root: int = 0) -> Gen:
        """Blocking MPI_BCAST of ``buffer`` from ``root`` to every rank."""
        if not 0 <= root < self._size:
            raise SimulationError(
                f"bcast root {root} out of range for {self._size} ranks"
            )
        buf = buffer.reshape(-1)
        algorithm = get_algorithm("bcast", self._collectives["bcast"])
        yield from algorithm(self, buf, root)

    def staging_buffer(self, key: Any, size: int, dtype: Any) -> np.ndarray:
        """Scratch array for a collective algorithm's internal staging.

        In full interpretation (no pool) every call allocates privately,
        since each rank's staged payload is live data.  The replay
        engine passes one shared ``staging`` dict for the whole cluster:
        replayed payload values are never read back (final data comes
        from the recorder's shadows, and engine timing depends only on
        operation sizes and order), so all ranks may clobber the same
        buffers — keeping the cluster's memory footprint O(buffer)
        instead of O(nranks * buffer).  Contents are undefined; callers
        must fill the buffer before charging/sending from it.
        """
        if self._staging is None:
            return np.empty(size, dtype)
        full_key = (key, size, np.dtype(dtype).str)
        buf = self._staging.get(full_key)
        if buf is None:
            buf = np.empty(size, dtype)
            self._staging[full_key] = buf
        return buf

    # ----------------------------------------------------------------- misc

    def compute(self, seconds: float) -> Gen:
        """Charge ``seconds`` of computation to this rank's clock."""
        yield Compute(seconds=seconds)

    def local_copy(self, nbytes: int) -> Gen:
        yield LocalCopy(nbytes=nbytes)
