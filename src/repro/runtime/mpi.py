"""Simulated MPI interface used by rank programs.

:class:`SimComm` exposes the subset of MPI the paper's codes need —
non-blocking point-to-point, waits, barrier, and ``MPI_ALLTOALL`` — as
generator methods.  A rank program calls them with ``yield from``::

    def program(rank, comm):
        ...
        h = yield from comm.isend(view, dest=1, tag=7)
        yield from comm.wait([h])

``alltoall`` is implemented *on top of* the same isend/irecv/wait
primitives (pairwise exchange, the classic implementation), so the
original and pre-pushed programs exercise identical machinery and timing
differences arise purely from when operations are issued — which is the
effect the paper measures.

The class also tracks outstanding send/recv handles so the transformed
code's ``mpi_waitall_recvs`` / ``mpi_waitall_sends`` / ``mpi_waitall``
(paper §3.6 steps 2 and 4) need no explicit request arrays in the
mini-Fortran source.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence, Union

import numpy as np

from ..errors import SimulationError
from .events import Barrier, Compute, Irecv, Isend, LocalCopy, SimOp, Wait

Gen = Generator[SimOp, Any, Any]


class SimComm:
    """Per-rank communicator for the simulated cluster."""

    def __init__(self, rank: int, size: int) -> None:
        if not 0 <= rank < size:
            raise SimulationError(f"invalid rank {rank} of {size}")
        self._rank = rank
        self._size = size
        self._pending_sends: List[int] = []
        self._pending_recvs: List[int] = []

    # ------------------------------------------------------------- queries

    @property
    def rank(self) -> int:
        """This process's rank (``mynode()`` in the mini-Fortran sources)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks (``numnodes()``)."""
        return self._size

    @property
    def outstanding_sends(self) -> int:
        return len(self._pending_sends)

    @property
    def outstanding_recvs(self) -> int:
        return len(self._pending_recvs)

    # ------------------------------------------------------- point-to-point

    def isend(self, data: np.ndarray, dest: int, tag: int) -> Gen:
        """Non-blocking send; returns the handle (also tracked internally)."""
        handle = yield Isend(dest=dest, tag=tag, data=data)
        self._pending_sends.append(handle)
        return handle

    def irecv(
        self,
        buffer: Union[np.ndarray, Callable[[np.ndarray], None]],
        source: int,
        tag: int,
        nbytes: Optional[int] = None,
    ) -> Gen:
        """Non-blocking receive into ``buffer`` (ndarray view or callable)."""
        if nbytes is None:
            if not isinstance(buffer, np.ndarray):
                raise SimulationError(
                    "nbytes is required when the receive target is a callable"
                )
            nbytes = int(buffer.nbytes)
        handle = yield Irecv(source=source, tag=tag, buffer=buffer, nbytes=nbytes)
        self._pending_recvs.append(handle)
        return handle

    def wait(self, handles: Sequence[int]) -> Gen:
        """Block until the given handles complete."""
        yield Wait(handles=list(handles))
        pending = set(handles)
        self._pending_sends = [h for h in self._pending_sends if h not in pending]
        self._pending_recvs = [h for h in self._pending_recvs if h not in pending]

    def waitall(self) -> Gen:
        """Wait for every outstanding request (sends and receives)."""
        yield from self.wait(self._pending_sends + self._pending_recvs)

    def waitall_sends(self) -> Gen:
        yield from self.wait(list(self._pending_sends))

    def waitall_recvs(self) -> Gen:
        yield from self.wait(list(self._pending_recvs))

    # ----------------------------------------------------------- collective

    def barrier(self) -> Gen:
        yield Barrier()

    def alltoall(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> Gen:
        """Blocking MPI_ALLTOALL over flat buffers.

        ``sendbuf``/``recvbuf`` are 1-D views whose length divides evenly
        into ``size`` partitions; partition ``j`` of this rank's sendbuf
        goes to rank ``j``, landing in partition ``rank`` of j's recvbuf.
        Implemented as a pairwise exchange with the same non-blocking
        primitives the pre-push transformation emits.
        """
        send = sendbuf.reshape(-1)
        recv = recvbuf.reshape(-1)
        if send.size % self._size or recv.size % self._size:
            raise SimulationError(
                f"alltoall buffer length {send.size} not divisible by "
                f"{self._size} ranks"
            )
        part = send.size // self._size
        if recv.size != send.size:
            raise SimulationError("alltoall send/recv sizes differ")

        handles: List[int] = []
        tag = _ALLTOALL_TAG
        for j in range(1, self._size):
            dest = (self._rank + j) % self._size
            src = (self._size + self._rank - j) % self._size
            h_r = yield from self.irecv(
                recv[src * part : (src + 1) * part], source=src, tag=tag
            )
            handles.append(h_r)
            h_s = yield from self.isend(
                send[dest * part : (dest + 1) * part], dest=dest, tag=tag
            )
            handles.append(h_s)
        # self partition: local memcpy
        yield LocalCopy(nbytes=int(send[0:part].nbytes))
        recv[self._rank * part : (self._rank + 1) * part] = send[
            self._rank * part : (self._rank + 1) * part
        ]
        yield from self.wait(handles)

    # ----------------------------------------------------------------- misc

    def compute(self, seconds: float) -> Gen:
        """Charge ``seconds`` of computation to this rank's clock."""
        yield Compute(seconds=seconds)

    def local_copy(self, nbytes: int) -> Gen:
        yield LocalCopy(nbytes=nbytes)


#: Reserved tag for collective traffic so it never collides with the
#: tile tags generated by the pre-push transformation (which are >= 0).
_ALLTOALL_TAG = -1
