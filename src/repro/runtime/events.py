"""Simulation protocol: the operations rank coroutines yield to the engine.

A rank program (the AST interpreter, or a hand-written Python kernel in
tests) is a generator.  It yields :class:`SimOp` values; the engine
processes each, advances virtual clocks, and sends back the result (a
request handle for isend/irecv, received data availability for wait, ...).

This keeps the runtime single-threaded and deterministic: "overlap" is a
property of the *virtual* timeline, not of Python thread scheduling —
exactly the substitution DESIGN.md records for real RDMA hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np


class OpKind(enum.Enum):
    COMPUTE = "compute"
    ISEND = "isend"
    IRECV = "irecv"
    WAIT = "wait"
    BARRIER = "barrier"
    LOCAL_COPY = "local_copy"


@dataclass
class SimOp:
    """Base class for yielded operations."""

    kind: OpKind = field(init=False)


@dataclass
class Compute(SimOp):
    """Advance this rank's clock by ``seconds`` of pure computation."""

    seconds: float

    def __post_init__(self) -> None:
        self.kind = OpKind.COMPUTE


@dataclass
class Isend(SimOp):
    """Start a non-blocking send.  Engine returns an integer handle.

    ``data`` is the payload *view*; the engine snapshots it copy-on-write
    (the copy is deferred until the sending rank next executes — the only
    point its buffers can change) and re-checks it at send completion to
    detect programs that modify a buffer with a transfer in flight.
    """

    dest: int
    tag: int
    data: np.ndarray

    def __post_init__(self) -> None:
        self.kind = OpKind.ISEND


@dataclass
class Irecv(SimOp):
    """Post a non-blocking receive into ``buffer`` (written at completion).

    ``buffer`` may be a writable ndarray view, or a callable accepting the
    payload (for strided/section targets the interpreter scatters itself).
    Engine returns an integer handle.
    """

    source: int
    tag: int
    buffer: Any
    nbytes: int

    def __post_init__(self) -> None:
        self.kind = OpKind.IRECV


@dataclass
class Wait(SimOp):
    """Block until all listed handles complete."""

    handles: Sequence[int]

    def __post_init__(self) -> None:
        self.kind = OpKind.WAIT


@dataclass
class Barrier(SimOp):
    """Synchronize all ranks."""

    def __post_init__(self) -> None:
        self.kind = OpKind.BARRIER


@dataclass
class LocalCopy(SimOp):
    """Charge the CPU for a local memcpy of ``nbytes`` (self-partition)."""

    nbytes: int

    def __post_init__(self) -> None:
        self.kind = OpKind.LOCAL_COPY


class MsgState(enum.Enum):
    PENDING = "pending"  # isend posted, transfer not finished
    DELIVERED = "delivered"  # payload landed (recv may not be posted yet)


@dataclass
class Message:
    """One point-to-point transfer in flight."""

    seq: int
    src: int
    dest: int
    tag: int
    nbytes: int
    #: column-major snapshot; None until the copy-on-write boundary (the
    #: sender's next step) forces it, or delivery consumes the live view
    payload: Optional[np.ndarray]
    #: live view of the send buffer (snapshot source + race detection)
    source_view: Any
    t_posted: float
    t_wire_start: float = 0.0
    t_complete: float = 0.0
    state: MsgState = MsgState.PENDING


@dataclass
class RankStats:
    """Per-rank accounting, reported by the engine."""

    compute_time: float = 0.0
    mpi_overhead_time: float = 0.0  # o_s/o_r/copy charges
    wait_time: float = 0.0  # blocked in wait/barrier
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    unexpected_messages: int = 0

    @property
    def total(self) -> float:
        return self.compute_time + self.mpi_overhead_time + self.wait_time


@dataclass
class SimResult:
    """Outcome of one cluster run."""

    time: float  # makespan: max finish time over ranks
    rank_times: List[float]
    stats: List[RankStats]
    warnings: List[str] = field(default_factory=list)
    # scheduler operations consumed (SimOps + heap events + wakes); a
    # deterministic function of the op streams, so replay and full
    # interpretation of the same job report the same count.  Throughput
    # benchmarks divide this by wall time for an events/sec figure.
    ops_processed: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)
