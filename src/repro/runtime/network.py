"""Network performance models and the named scenario registry.

The paper's measurements compare two stacks on the same cluster:

* **MPICH** (host-based progress, e.g. the p4/TCP device): the host CPU
  moves every byte through the protocol stack, so a "non-blocking" send
  still consumes CPU time proportional to the message size — communication
  cannot overlap computation.
* **MPICH-GM** (Myrinet GM with RDMA): the NIC's DMA engine moves bytes
  while the CPU computes; a non-blocking send costs only a small host
  overhead, and the wait pays only the unfinished remainder.

We model both with a LogGP-style parameterization:

=================  =========================================================
``latency``        L — end-to-end wire latency per message (s)
``byte_time``      G — gap per byte on the wire / NIC DMA (s/B)
``send_overhead``  o_s — host CPU cost to initiate a send (s)
``recv_overhead``  o_r — host CPU cost to post a receive (s)
``offload``        True: NIC progresses transfers concurrently with compute;
                   False: the host CPU is additionally charged
                   ``host_byte_time`` per byte at send initiation
``host_byte_time`` CPU time per byte pushed through the host stack (s/B)
``copy_byte_time`` CPU time per byte to copy an *unexpected* (early-arrived,
                   recv not yet posted) message out of the bounce buffer;
                   also used for the local self-partition memcpy
=================  =========================================================

plus four scenario-extension knobs whose defaults reproduce the classic
models bit-for-bit (see DESIGN.md §4 for the semantics):

==================== ======================================================
``eager_threshold``  bytes; messages larger than this use a rendezvous
                     protocol (extra handshake latency, no bounce-buffer
                     copy on early arrival).  ``None`` = always eager.
``rendezvous_latency`` extra end-to-end latency charged to a rendezvous
                     message (the request-to-send/clear-to-send handshake)
``rails``            parallel NIC rails; wire occupancy divides by this
``congestion_factor`` multiplier on wire time for transfers that had to
                     queue behind a busy NIC (endpoint contention penalty)
==================== ======================================================

Endpoint contention: each node has one NIC (possibly multi-rail); a
transfer occupies the sender NIC and the receiver NIC for its wire time
and the wire adds ``latency``.  This serialization is what produces the
congestion the paper warns about when every rank targets the same node
(§3.5).

**Scenario registry.**  Models are looked up by name — the CLI's
``--network`` flag, the harness, and the ablation benchmarks all accept
any registered name, so new cluster scenarios become sweepable without
touching experiment code:

    >>> from repro.runtime.network import get_model, list_models, register_model
    >>> get_model("gmnet").offload
    True
    >>> register_model(get_model("gmnet").with_(name="gm-slow", latency=80e-6))
    NetworkModel(name='gm-slow', ...)

``hostnet`` and ``gmnet`` are the canonical aliases for the paper's two
stacks (the original ``mpich`` / ``mpich-gm`` names remain registered).
Default constants are of 2005-era magnitude (Fast-Ethernet-class TCP vs
Myrinet 2000); the *shape* of the results depends on the ratios, not the
absolute values, and the benchmark harness sweeps them (Ablation C).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Union

from ..errors import SimulationError


@dataclass(frozen=True)
class NetworkModel:
    """Timing parameters for one cluster interconnect + MPI stack."""

    name: str
    latency: float
    byte_time: float
    send_overhead: float
    recv_overhead: float
    offload: bool
    host_byte_time: float
    copy_byte_time: float
    #: eager/rendezvous protocol switch point in bytes (None = always eager)
    eager_threshold: Optional[int] = None
    #: extra handshake latency for rendezvous-sized messages (s)
    rendezvous_latency: float = 0.0
    #: parallel NIC rails sharing the transfer (striped DMA)
    rails: int = 1
    #: wire-time multiplier applied to transfers that queued behind a busy NIC
    congestion_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.rails < 1:
            raise SimulationError(
                f"network model {self.name!r}: rails must be >= 1"
            )
        if self.congestion_factor <= 0:
            raise SimulationError(
                f"network model {self.name!r}: congestion_factor must be > 0"
            )

    def send_cpu_cost(self, nbytes: int) -> float:
        """Host CPU time consumed by initiating a send of ``nbytes``."""
        if self.offload:
            return self.send_overhead
        return self.send_overhead + nbytes * self.host_byte_time

    def recv_cpu_cost(self) -> float:
        """Host CPU time consumed by posting a receive."""
        return self.recv_overhead

    def wire_time(self, nbytes: int) -> float:
        """NIC/wire occupancy of one message (excluding latency)."""
        if self.rails > 1:
            return nbytes * self.byte_time / self.rails
        return nbytes * self.byte_time

    def is_rendezvous(self, nbytes: int) -> bool:
        """True when a message of this size uses the rendezvous protocol."""
        return self.eager_threshold is not None and nbytes > self.eager_threshold

    def msg_latency(self, nbytes: int) -> float:
        """End-to-end latency of one message, including any handshake."""
        if self.is_rendezvous(nbytes):
            return self.latency + self.rendezvous_latency
        return self.latency

    def protocol_label(self) -> str:
        """Human-readable protocol summary for listings and tables."""
        if self.eager_threshold is None:
            return "eager"
        return f"rendezvous>{self.eager_threshold}B"

    def unexpected_copy_cost(self, nbytes: int) -> float:
        """CPU cost to drain an unexpected message from the bounce buffer.

        Rendezvous messages never land in the bounce buffer — the
        handshake delays the payload until the receive is posted — so
        they pay the handshake latency instead of the copy.
        """
        if self.is_rendezvous(nbytes):
            return 0.0
        return nbytes * self.copy_byte_time

    def local_copy_cost(self, nbytes: int) -> float:
        """CPU cost of a local memcpy (self-partition of an alltoall)."""
        return nbytes * self.copy_byte_time

    def with_(self, **kwargs) -> "NetworkModel":
        """Functional update, for parameter sweeps."""
        return replace(self, **kwargs)

    def canonical_params(self) -> Dict[str, Union[str, int, float, bool, None]]:
        """Stable, JSON-safe mapping of every model parameter.

        This is the serialization the sweep cache hashes (DESIGN.md §7):
        plain field name → scalar, no derived values, so two models are
        fingerprint-equal exactly when every dataclass field matches.
        Floats round-trip exactly through ``repr`` (what :mod:`json`
        emits), so the hash is bit-stable across processes and runs.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Host-based stack: TCP-class latency and bandwidth, CPU-driven transfers.
MPICH_P4 = NetworkModel(
    name="mpich",
    latency=55e-6,
    byte_time=20e-9,  # ~50 MB/s effective
    send_overhead=12e-6,
    recv_overhead=6e-6,
    offload=False,
    host_byte_time=18e-9,  # CPU pushes bytes through the stack
    copy_byte_time=6e-9,
)

#: Myrinet GM with RDMA offload: low latency, high bandwidth, tiny host cost.
MPICH_GM = NetworkModel(
    name="mpich-gm",
    latency=8e-6,
    byte_time=4e-9,  # ~250 MB/s
    send_overhead=1.5e-6,
    recv_overhead=1.0e-6,
    offload=True,
    host_byte_time=0.0,
    copy_byte_time=5e-9,
)

#: Idealized zero-cost network, useful for isolating compute time in tests.
IDEAL = NetworkModel(
    name="ideal",
    latency=0.0,
    byte_time=0.0,
    send_overhead=0.0,
    recv_overhead=0.0,
    offload=True,
    host_byte_time=0.0,
    copy_byte_time=0.0,
)

#: GM with an eager/rendezvous protocol switch: large messages pay a
#: request-to-send/clear-to-send handshake but never bounce-buffer copies.
GM_RENDEZVOUS = MPICH_GM.with_(
    name="gm-rendezvous",
    eager_threshold=16384,
    rendezvous_latency=2 * MPICH_GM.latency,
)

#: Dual-rail Myrinet: two NICs stripe each transfer, halving wire time.
GM_2RAIL = MPICH_GM.with_(name="gm-2rail", rails=2)

#: GM on a congested fabric: queued transfers pay a 60% wire-time penalty,
#: amplifying the §3.5 single-destination hot-spot effect.
GM_CONGESTED = MPICH_GM.with_(name="gm-congested", congestion_factor=1.6)

#: Modern RDMA-class profile (InfiniBand/RoCE-era): ~1 µs latency,
#: ~12.5 GB/s, rendezvous above 8 KiB, tiny host overheads.
RDMA_100G = NetworkModel(
    name="rdma-100g",
    latency=1.2e-6,
    byte_time=0.08e-9,
    send_overhead=0.4e-6,
    recv_overhead=0.3e-6,
    offload=True,
    host_byte_time=0.0,
    copy_byte_time=0.15e-9,
    eager_threshold=8192,
    rendezvous_latency=2.4e-6,
)

#: Modern host-driven 10G Ethernet: fast wire, but the CPU still moves
#: every byte — the "no overlap" regime at contemporary bandwidth.
TCP_10G = NetworkModel(
    name="tcp-10g",
    latency=15e-6,
    byte_time=1.0e-9,
    send_overhead=5e-6,
    recv_overhead=2e-6,
    offload=False,
    host_byte_time=0.9e-9,
    copy_byte_time=1.0e-9,
)


# --------------------------------------------------------------- registry

_REGISTRY: Dict[str, NetworkModel] = {}

#: Legacy alias kept for backward compatibility: the registry *is* the
#: old PRESETS mapping (same object), so ``PRESETS[name]`` still works.
PRESETS = _REGISTRY


def register_model(
    model: NetworkModel, *aliases: str, overwrite: bool = False
) -> NetworkModel:
    """Register ``model`` under its name (plus optional aliases).

    Raises :class:`~repro.errors.SimulationError` when a name is already
    taken by a *different* model, unless ``overwrite=True``.  Returns the
    model so registration composes with construction.
    """
    for name in (model.name, *aliases):
        existing = _REGISTRY.get(name)
        if existing is not None and existing != model and not overwrite:
            raise SimulationError(
                f"network model name {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        _REGISTRY[name] = model
    return model


def get_model(name: str) -> NetworkModel:
    """Look up a registered network scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown network model {name!r}; registered models: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def list_models() -> List[str]:
    """Sorted names of every registered scenario (aliases included)."""
    return sorted(_REGISTRY)


def resolve_model(model: Union[str, NetworkModel]) -> NetworkModel:
    """Accept either a registered name or a model instance."""
    if isinstance(model, NetworkModel):
        return model
    return get_model(model)


register_model(MPICH_P4, "hostnet")
register_model(MPICH_GM, "gmnet")
register_model(IDEAL)
register_model(GM_RENDEZVOUS)
register_model(GM_2RAIL)
register_model(GM_CONGESTED)
register_model(RDMA_100G)
register_model(TCP_10G)
