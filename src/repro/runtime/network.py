"""Network performance models: host-based MPICH vs. NIC-offload MPICH-GM.

The paper's measurements compare two stacks on the same cluster:

* **MPICH** (host-based progress, e.g. the p4/TCP device): the host CPU
  moves every byte through the protocol stack, so a "non-blocking" send
  still consumes CPU time proportional to the message size — communication
  cannot overlap computation.
* **MPICH-GM** (Myrinet GM with RDMA): the NIC's DMA engine moves bytes
  while the CPU computes; a non-blocking send costs only a small host
  overhead, and the wait pays only the unfinished remainder.

We model both with a LogGP-style parameterization:

=================  =========================================================
``latency``        L — end-to-end wire latency per message (s)
``byte_time``      G — gap per byte on the wire / NIC DMA (s/B)
``send_overhead``  o_s — host CPU cost to initiate a send (s)
``recv_overhead``  o_r — host CPU cost to post a receive (s)
``offload``        True: NIC progresses transfers concurrently with compute;
                   False: the host CPU is additionally charged
                   ``host_byte_time`` per byte at send initiation
``host_byte_time`` CPU time per byte pushed through the host stack (s/B)
``copy_byte_time`` CPU time per byte to copy an *unexpected* (early-arrived,
                   recv not yet posted) message out of the bounce buffer;
                   also used for the local self-partition memcpy
=================  =========================================================

Endpoint contention: each node has one NIC; a transfer occupies the
sender NIC and the receiver NIC for ``nbytes * byte_time`` and the wire
adds ``latency``.  This serialization is what produces the congestion the
paper warns about when every rank targets the same node (§3.5).

Default constants are of 2005-era magnitude (Fast-Ethernet-class TCP vs
Myrinet 2000); the *shape* of the results depends on the ratios, not the
absolute values, and the benchmark harness sweeps them (Ablation C).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NetworkModel:
    """Timing parameters for one cluster interconnect + MPI stack."""

    name: str
    latency: float
    byte_time: float
    send_overhead: float
    recv_overhead: float
    offload: bool
    host_byte_time: float
    copy_byte_time: float

    def send_cpu_cost(self, nbytes: int) -> float:
        """Host CPU time consumed by initiating a send of ``nbytes``."""
        if self.offload:
            return self.send_overhead
        return self.send_overhead + nbytes * self.host_byte_time

    def recv_cpu_cost(self) -> float:
        """Host CPU time consumed by posting a receive."""
        return self.recv_overhead

    def wire_time(self, nbytes: int) -> float:
        """NIC/wire occupancy of one message (excluding latency)."""
        return nbytes * self.byte_time

    def unexpected_copy_cost(self, nbytes: int) -> float:
        """CPU cost to drain an unexpected message from the bounce buffer."""
        return nbytes * self.copy_byte_time

    def local_copy_cost(self, nbytes: int) -> float:
        """CPU cost of a local memcpy (self-partition of an alltoall)."""
        return nbytes * self.copy_byte_time

    def with_(self, **kwargs) -> "NetworkModel":
        """Functional update, for parameter sweeps."""
        return replace(self, **kwargs)


#: Host-based stack: TCP-class latency and bandwidth, CPU-driven transfers.
MPICH_P4 = NetworkModel(
    name="mpich",
    latency=55e-6,
    byte_time=20e-9,  # ~50 MB/s effective
    send_overhead=12e-6,
    recv_overhead=6e-6,
    offload=False,
    host_byte_time=18e-9,  # CPU pushes bytes through the stack
    copy_byte_time=6e-9,
)

#: Myrinet GM with RDMA offload: low latency, high bandwidth, tiny host cost.
MPICH_GM = NetworkModel(
    name="mpich-gm",
    latency=8e-6,
    byte_time=4e-9,  # ~250 MB/s
    send_overhead=1.5e-6,
    recv_overhead=1.0e-6,
    offload=True,
    host_byte_time=0.0,
    copy_byte_time=5e-9,
)

#: Idealized zero-cost network, useful for isolating compute time in tests.
IDEAL = NetworkModel(
    name="ideal",
    latency=0.0,
    byte_time=0.0,
    send_overhead=0.0,
    recv_overhead=0.0,
    offload=True,
    host_byte_time=0.0,
    copy_byte_time=0.0,
)

PRESETS = {m.name: m for m in (MPICH_P4, MPICH_GM, IDEAL)}
