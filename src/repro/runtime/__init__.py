"""Cluster execution substrate: discrete-event simulator, network models,
simulated MPI, and the compute cost model.

This package is the reproduction's substitute for the paper's physical
testbed (MPICH vs. MPICH-GM on a Myrinet cluster) — see DESIGN.md §3 for
why a virtual-time simulation is the faithful choice in CPython.
"""

from .costmodel import DEFAULT_COST_MODEL, ELEMENT_BYTES, CostModel  # noqa: F401
from .events import (  # noqa: F401
    Barrier,
    Compute,
    Irecv,
    Isend,
    LocalCopy,
    Message,
    RankStats,
    SimOp,
    SimResult,
    Wait,
)
from .mpi import SimComm  # noqa: F401
from .network import (  # noqa: F401
    GM_2RAIL,
    GM_CONGESTED,
    GM_RENDEZVOUS,
    IDEAL,
    MPICH_GM,
    MPICH_P4,
    PRESETS,
    RDMA_100G,
    TCP_10G,
    NetworkModel,
    get_model,
    list_models,
    register_model,
    resolve_model,
)
from .simulator import Engine, simulate  # noqa: F401

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "ELEMENT_BYTES",
    "Engine",
    "simulate",
    "SimComm",
    "SimResult",
    "RankStats",
    "NetworkModel",
    "MPICH_P4",
    "MPICH_GM",
    "IDEAL",
    "GM_RENDEZVOUS",
    "GM_2RAIL",
    "GM_CONGESTED",
    "RDMA_100G",
    "TCP_10G",
    "PRESETS",
    "register_model",
    "get_model",
    "list_models",
    "resolve_model",
    "Compute",
    "Isend",
    "Irecv",
    "Wait",
    "Barrier",
    "LocalCopy",
]
