"""Deterministic discrete-event cluster simulator.

Each rank is a Python generator yielding :class:`~repro.runtime.events.SimOp`
operations.  The engine advances per-rank virtual clocks, schedules wire
transfers on per-node NICs (endpoint contention), matches sends to
receives, and accounts CPU overheads according to the
:class:`~repro.runtime.network.NetworkModel`.

Timing semantics (the substitution for real MPICH / MPICH-GM hardware —
see DESIGN.md §3):

* ``Compute(dt)`` — rank clock += dt.
* ``Isend`` — rank clock += model.send_cpu_cost (which includes the
  per-byte host cost when the stack is host-driven, i.e. the entire
  reason MPICH cannot overlap).  The wire transfer is then scheduled *at
  that virtual time* on the sender/receiver NIC pair: it starts when both
  NICs are free, occupies them for ``model.wire_time(nbytes)`` (striped
  across ``rails``, dilated by ``congestion_factor`` when it had to queue
  behind a busy NIC) and completes ``model.msg_latency(nbytes)`` later
  (rendezvous-sized messages pay the handshake there).  The payload is
  snapshot copy-on-write: the engine defers the copy until the sending
  rank next executes (the only point its buffers can change), so a
  message consumed before then never pays the copy.  The live view is
  re-checked when the send completes so in-flight buffer modification
  (an unsafe transformation!) is detected and reported.
* ``Irecv`` — rank clock += recv_overhead; the receive matches messages
  by (source, tag) FIFO order.
* ``Wait`` — rank blocks until all handles complete; at resume the
  receive-side completion CPU charges are applied: per-byte host cost in
  host mode, plus a bounce-buffer copy when the message arrived before
  the receive was posted ("unexpected message").
* ``Barrier`` — all ranks synchronize to the max entry time plus a
  log2(P) latency term.

The engine is single-threaded and fully deterministic: ties are broken by
monotonically increasing sequence numbers, never by Python hashing or
wall-clock effects.

Fast path: operations dispatch through a per-type handler table, and a
run of consecutive ``Compute`` yields from one rank is drained in a
single step (they only advance that rank's private clock, so skipping
the global scheduler between them cannot change any observable timing).

Scheduling is heap-based: runnable ranks live in a priority heap keyed
``(time, rank_index)`` alongside the transfer-event heap, so picking the
next actor is O(log P) rather than an O(P) scan — the difference between
dozens and thousands of ranks.  Entries are invalidated by a per-rank
token rather than removed (see :meth:`Engine._touch`); the orderings the
linear scan established are preserved exactly: transfer events beat rank
activity at equal virtual times, and the lowest rank index wins ties
between ranks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DeadlockError, SimulationError
from .events import (
    Barrier,
    Compute,
    Irecv,
    Isend,
    LocalCopy,
    Message,
    RankStats,
    SimOp,
    SimResult,
    Wait,
)
from .events import MsgState
from .network import NetworkModel, resolve_model

RankProgram = Generator[SimOp, Any, None]

#: Semantic version of the simulation's *timing semantics*.  It is part
#: of every sweep-cache fingerprint (DESIGN.md §7): cached measurements
#: are only reusable while the engine maps the same inputs to the same
#: virtual-time results.  Bump it whenever a change can alter any
#: ``SimResult`` — cost accounting, tie-breaking, protocol rules — and
#: leave it alone for pure-speed refactors that §5 guarantees are
#: timing-neutral.
ENGINE_VERSION = "3.0"


class _Status(Enum):
    READY = "ready"
    BLOCKED = "blocked"
    IN_BARRIER = "barrier"
    DONE = "done"


@dataclass
class _SendReq:
    msg: Message

    @property
    def complete_time(self) -> Optional[float]:
        if self.msg.t_complete > 0.0:
            return self.msg.t_complete
        return None


@dataclass
class _RecvReq:
    source: int
    tag: int
    buffer: Any
    nbytes: int
    t_posted: float
    matched: Optional[Message] = None
    delivered: bool = False

    @property
    def complete_time(self) -> Optional[float]:
        if self.matched is None or self.matched.t_complete <= 0.0:
            return None
        return max(self.matched.t_complete, self.t_posted)

    @property
    def unexpected(self) -> bool:
        """True when the wire transfer finished before the recv was posted."""
        assert self.matched is not None
        return self.matched.t_complete <= self.t_posted


@dataclass
class _Rank:
    index: int
    gen: RankProgram
    clock: float = 0.0
    status: _Status = _Status.READY
    send_value: Any = None  # value to send into the generator on resume
    requests: Dict[int, Any] = field(default_factory=dict)
    next_handle: int = 0
    waiting_on: Tuple[int, ...] = ()
    block_start: float = 0.0
    stats: RankStats = field(default_factory=RankStats)


class Engine:
    """Runs a set of rank programs over a network model to completion."""

    def __init__(
        self,
        programs: Sequence[RankProgram],
        network: "NetworkModel | str",
        *,
        detect_races: bool = True,
        snapshot_payloads: bool = True,
    ) -> None:
        self.network = resolve_model(network)
        self.detect_races = detect_races
        # Copy-on-write payload snapshots can be switched off entirely for
        # callers that only consume timing (the symmetry replay engine):
        # payloads then deliver straight from the live view.  Race
        # detection needs the snapshots for its comparisons, so the two
        # knobs cannot be split that way.
        if detect_races and not snapshot_payloads:
            raise SimulationError(
                "detect_races=True requires snapshot_payloads=True"
            )
        self.snapshot_payloads = snapshot_payloads
        self.ranks = [_Rank(index=i, gen=g) for i, g in enumerate(programs)]
        self.nranks = len(self.ranks)
        self._seq = 0
        self._events: List[Tuple[float, int, Callable[[float], None]]] = []
        # runnable/wakeable ranks, keyed (time, rank_index, token); an
        # entry is live only while its token matches _rank_tokens[index]
        self._rank_heap: List[Tuple[float, int, int]] = []
        self._rank_tokens = [0] * self.nranks
        # unmatched state, keyed (dest, src, tag) in FIFO order
        self._unmatched_msgs: Dict[Tuple[int, int, int], List[Message]] = {}
        self._unmatched_recvs: Dict[Tuple[int, int, int], List[_RecvReq]] = {}
        self._nic_send_free = [0.0] * self.nranks
        self._nic_recv_free = [0.0] * self.nranks
        self._barrier_waiting: List[int] = []
        self.warnings: List[str] = []
        #: operations processed (SimOps + heap events + wakes); exposed for
        #: the engine-throughput benchmark
        self.ops_processed = 0
        # copy-on-write payload snapshots: messages whose payload has not
        # been copied yet, per sending rank (drained at the sender's next
        # step, the only point its buffers can change)
        self._lazy_msgs: List[List[Message]] = [[] for _ in range(self.nranks)]
        self._lazy_count = 0
        # exact-type handler table; isinstance fallback covers subclasses
        self._handlers: Dict[type, Callable[[_Rank, SimOp], None]] = {
            Compute: self._h_compute,
            Isend: self._h_isend,
            Irecv: self._h_irecv,
            Wait: self._h_wait,
            Barrier: self._h_barrier,
            LocalCopy: self._h_local_copy,
        }

    # ------------------------------------------------------------------ api

    def run(self) -> SimResult:
        """Drive all ranks to completion; returns makespan and stats."""
        for rank in self.ranks:
            self._step(rank)  # prime each generator to its first yield
            self._touch(rank)

        while True:
            choice = self._next_actor()
            if choice is None:
                if all(r.status is _Status.DONE for r in self.ranks):
                    break
                self._raise_deadlock()
            time, kind, payload = choice
            self.ops_processed += 1
            if kind == "event":
                _, _, action = heapq.heappop(self._events)
                action(time)
            elif kind == "wake":
                self._resume_from_wait(payload, time)
                self._touch(payload)
            else:  # "step"
                self._step(payload)
                self._touch(payload)

        rank_times = [r.clock for r in self.ranks]
        return SimResult(
            time=max(rank_times) if rank_times else 0.0,
            rank_times=rank_times,
            stats=[r.stats for r in self.ranks],
            warnings=list(self.warnings),
            ops_processed=self.ops_processed,
        )

    # ------------------------------------------------------ engine schedule

    def _touch(self, rank: _Rank) -> None:
        """(Re)enqueue a rank at its next actionable virtual time.

        Rather than deleting the rank's previous heap entry (heaps cannot
        do that cheaply), the per-rank token is bumped so any earlier
        entry is recognized as stale and discarded at pop time.  A rank
        that is not actionable — finished, in a barrier, or blocked with
        an unknown wake time — is simply not enqueued; the state change
        that makes it actionable (a transfer completion, a barrier
        release) touches it again.
        """
        if rank.status is _Status.READY:
            time = rank.clock
        elif rank.status is _Status.BLOCKED:
            wake = self._wake_time(rank)
            if wake is None:
                return
            time = wake
        else:
            return
        token = self._rank_tokens[rank.index] + 1
        self._rank_tokens[rank.index] = token
        heapq.heappush(self._rank_heap, (time, rank.index, token))

    def _next_actor(self):
        """The next thing to happen, globally ordered by virtual time.

        Events beat rank activity at equal times (a transfer scheduled at
        time t must resolve before a rank blocked at t re-checks), and
        the lowest rank index wins ties between ranks — both orderings
        inherited from the linear scan this heap replaced, and pinned by
        the determinism suite.
        """
        heap = self._rank_heap
        tokens = self._rank_tokens
        while heap:
            t, idx, token = heap[0]
            if token != tokens[idx] or self.ranks[idx].status not in (
                _Status.READY,
                _Status.BLOCKED,
            ):
                heapq.heappop(heap)
                continue
            break
        if self._events:
            et = self._events[0][0]
            if not heap or et <= heap[0][0]:
                return et, "event", None
        if not heap:
            return None
        t, idx, _ = heapq.heappop(heap)
        rank = self.ranks[idx]
        if rank.status is _Status.READY:
            return t, "step", rank
        return t, "wake", rank

    def _raise_deadlock(self) -> None:
        lines = []
        for r in self.ranks:
            if r.status is _Status.BLOCKED:
                pending = [
                    h
                    for h in r.waiting_on
                    if _completion(r.requests[h]) is None
                ]
                lines.append(
                    f"rank {r.index} blocked at t={r.block_start:.6g} on "
                    f"handles {pending}"
                )
            elif r.status is _Status.IN_BARRIER:
                lines.append(f"rank {r.index} stuck in barrier")
        raise DeadlockError(
            "no rank can make progress:\n  " + "\n  ".join(lines)
        )

    # ------------------------------------------------------------ rank step

    def _step(self, rank: _Rank) -> None:
        if self._lazy_msgs[rank.index]:
            # the rank is about to execute arbitrary code: snapshot any
            # in-flight payload it could mutate (copy-on-write boundary)
            self._materialize_rank(rank.index)
        try:
            value, rank.send_value = rank.send_value, None
            send = rank.gen.send
            op = send(value)
            # Drain consecutive Compute yields without returning to the
            # global scheduler: they only advance this rank's private
            # clock, so no other actor can become runnable in between.
            while type(op) is Compute:
                seconds = op.seconds
                if seconds < 0:
                    raise SimulationError("negative compute time")
                rank.clock += seconds
                rank.stats.compute_time += seconds
                self.ops_processed += 1
                op = send(None)
        except StopIteration:
            self._finish_rank(rank)
            return
        self._dispatch(rank, op)

    def _dispatch(self, rank: _Rank, op: SimOp) -> None:
        handler = self._handlers.get(type(op))
        if handler is None:
            for typ, h in self._handlers.items():
                if isinstance(op, typ):
                    handler = h
                    break
            else:
                raise SimulationError(f"unknown operation {op!r}")
        handler(rank, op)

    # ------------------------------------------------------------ handlers

    def _h_compute(self, rank: _Rank, op: Compute) -> None:
        if op.seconds < 0:
            raise SimulationError("negative compute time")
        rank.clock += op.seconds
        rank.stats.compute_time += op.seconds

    def _h_isend(self, rank: _Rank, op: Isend) -> None:
        rank.send_value = self._do_isend(rank, op)

    def _h_irecv(self, rank: _Rank, op: Irecv) -> None:
        rank.send_value = self._do_irecv(rank, op)

    def _h_wait(self, rank: _Rank, op: Wait) -> None:
        self._do_wait(rank, op)

    def _h_barrier(self, rank: _Rank, op: Barrier) -> None:
        self._do_barrier(rank)

    def _h_local_copy(self, rank: _Rank, op: LocalCopy) -> None:
        cost = self.network.local_copy_cost(op.nbytes)
        rank.clock += cost
        rank.stats.mpi_overhead_time += cost

    # -------------------------------------------- copy-on-write payloads

    def _materialize_rank(self, index: int) -> None:
        """Snapshot the still-lazy payloads of one sending rank.

        Called before the rank executes; between a yield and this point
        the rank has run no code, so the live view still holds the
        payload exactly as it was when the Isend was posted.
        """
        msgs = self._lazy_msgs[index]
        for msg in msgs:
            if msg.payload is None and msg.state is not MsgState.DELIVERED:
                msg.payload = np.asarray(msg.source_view).flatten(order="F")
        self._lazy_count -= len(msgs)
        msgs.clear()

    def _materialize_aliasing(self, target: Any) -> None:
        """Snapshot lazy payloads that overlap a buffer about to be written.

        ``target`` may be an ndarray (checked with shares_memory) or a
        callable scatter target (unknown memory: snapshot everything).
        """
        check = isinstance(target, np.ndarray)
        for msgs in self._lazy_msgs:
            for msg in msgs:
                if msg.payload is not None or msg.state is MsgState.DELIVERED:
                    continue
                src = np.asarray(msg.source_view)
                if not check or np.shares_memory(src, target):
                    msg.payload = src.flatten(order="F")

    def _finish_rank(self, rank: _Rank) -> None:
        if rank.requests:
            self.warnings.append(
                f"rank {rank.index} finished with {len(rank.requests)} "
                f"request(s) never waited on"
            )
        rank.status = _Status.DONE
        # A rank finishing may complete a barrier among the remaining ranks.
        if self._barrier_waiting and len(
            self._barrier_waiting
        ) == self.nranks_active():
            self._release_barrier()

    # ---------------------------------------------------------------- isend

    def _do_isend(self, rank: _Rank, op: Isend) -> int:
        # The payload snapshot is *deferred* (copy-on-write): the copy — a
        # 1-D column-major flatten, because the mini-Fortran world is
        # column-major throughout and a C-order flatten of a section would
        # silently transpose the data — happens at the sender's next step,
        # the first point its buffers can change.  A message consumed
        # before then is delivered straight from the live view.
        view = np.asarray(op.data)
        nbytes = int(view.nbytes)
        cost = self.network.send_cpu_cost(nbytes)
        rank.clock += cost
        rank.stats.mpi_overhead_time += cost
        rank.stats.bytes_sent += nbytes
        rank.stats.messages_sent += 1
        if not (0 <= op.dest < self.nranks):
            raise SimulationError(
                f"rank {rank.index} sends to invalid rank {op.dest}"
            )

        self._seq += 1
        msg = Message(
            seq=self._seq,
            src=rank.index,
            dest=op.dest,
            tag=op.tag,
            nbytes=nbytes,
            payload=None,  # snapshot deferred, see _materialize_rank
            source_view=op.data,
            t_posted=rank.clock,
        )
        if self.snapshot_payloads:
            self._lazy_msgs[rank.index].append(msg)
            self._lazy_count += 1
        # transfer scheduling happens at the rank's post-overhead time, in
        # global time order (the event heap), so NIC allocation is fair
        self._push_event(rank.clock, lambda t, m=msg: self._schedule_transfer(m, t))
        self._match_send(msg)

        handle = rank.next_handle
        rank.next_handle += 1
        rank.requests[handle] = _SendReq(msg)
        return handle

    def _schedule_transfer(self, msg: Message, now: float) -> None:
        network = self.network
        start = max(
            now, self._nic_send_free[msg.src], self._nic_recv_free[msg.dest]
        )
        wire = network.wire_time(msg.nbytes)
        if network.congestion_factor != 1.0 and start > now:
            # the transfer queued behind a busy NIC: congested fabrics
            # dilate its wire occupancy (scenario knob, DESIGN.md §4)
            wire *= network.congestion_factor
        self._nic_send_free[msg.src] = start + wire
        self._nic_recv_free[msg.dest] = start + wire
        msg.t_wire_start = start
        msg.t_complete = start + wire + network.msg_latency(msg.nbytes)
        # the now-known completion time may be the last unknown in a
        # blocked rank's wait set on either endpoint: requeue them
        for endpoint in (msg.src, msg.dest):
            rank = self.ranks[endpoint]
            if rank.status is _Status.BLOCKED:
                self._touch(rank)

    def _match_send(self, msg: Message) -> None:
        key = (msg.dest, msg.src, msg.tag)
        queue = self._unmatched_recvs.get(key)
        if queue:
            req = queue.pop(0)
            if not queue:
                del self._unmatched_recvs[key]
            req.matched = msg
            receiver = self.ranks[msg.dest]
            if receiver.status is _Status.BLOCKED:
                self._touch(receiver)
        else:
            self._unmatched_msgs.setdefault(key, []).append(msg)

    # ---------------------------------------------------------------- irecv

    def _do_irecv(self, rank: _Rank, op: Irecv) -> int:
        cost = self.network.recv_cpu_cost()
        rank.clock += cost
        rank.stats.mpi_overhead_time += cost
        req = _RecvReq(
            source=op.source,
            tag=op.tag,
            buffer=op.buffer,
            nbytes=op.nbytes,
            t_posted=rank.clock,
        )
        key = (rank.index, op.source, op.tag)
        queue = self._unmatched_msgs.get(key)
        if queue:
            msg = queue.pop(0)
            if not queue:
                del self._unmatched_msgs[key]
            req.matched = msg
        else:
            self._unmatched_recvs.setdefault(key, []).append(req)

        handle = rank.next_handle
        rank.next_handle += 1
        rank.requests[handle] = req
        return handle

    # ----------------------------------------------------------------- wait

    def _do_wait(self, rank: _Rank, op: Wait) -> None:
        for h in op.handles:
            if h not in rank.requests:
                raise SimulationError(
                    f"rank {rank.index} waits on unknown handle {h}"
                )
        rank.waiting_on = tuple(op.handles)
        rank.block_start = rank.clock
        rank.status = _Status.BLOCKED
        # an immediately-satisfiable wait resolves via the normal wake path

    def _wake_time(self, rank: _Rank) -> Optional[float]:
        latest = rank.block_start
        for h in rank.waiting_on:
            t = _completion(rank.requests[h])
            if t is None:
                return None
            latest = max(latest, t)
        return latest

    def _resume_from_wait(self, rank: _Rank, wake: float) -> None:
        rank.stats.wait_time += max(0.0, wake - rank.block_start)
        rank.clock = max(rank.clock, wake)
        charges = 0.0
        for h in rank.waiting_on:
            req = rank.requests.pop(h)
            if isinstance(req, _RecvReq):
                msg = req.matched
                assert msg is not None
                self._deliver(req, msg)
                unexpected = req.unexpected
                if unexpected:
                    rank.stats.unexpected_messages += 1
                charges += self._recv_completion_cost(msg.nbytes, unexpected)
                rank.stats.bytes_received += msg.nbytes
                rank.stats.messages_received += 1
            else:
                self._check_send_race(req.msg)
        rank.clock += charges
        rank.stats.mpi_overhead_time += charges
        rank.waiting_on = ()
        rank.status = _Status.READY

    def _recv_completion_cost(self, nbytes: int, unexpected: bool) -> float:
        cost = 0.0
        if not self.network.offload:
            cost += nbytes * self.network.host_byte_time
        if unexpected:
            cost += self.network.unexpected_copy_cost(nbytes)
        return cost

    def _deliver(self, req: _RecvReq, msg: Message) -> None:
        if req.delivered:
            return
        req.delivered = True
        target = req.buffer
        if self._lazy_count:
            # the write below may overlap another in-flight send's live
            # buffer: snapshot those first (copy-on-write aliasing guard)
            self._materialize_aliasing(target)
        payload = msg.payload
        if payload is None:
            src = np.asarray(msg.source_view)
            if self.detect_races:
                # keep race-report parity with the eager-snapshot engine:
                # the sender never ran since the isend, so the live view
                # still is the isend-time payload — snapshot it for the
                # comparison at the sender's wait
                payload = msg.payload = src.flatten(order="F")
            elif src.flags["F_CONTIGUOUS"]:
                payload = src.reshape(-1, order="F")  # zero-copy delivery
            else:
                payload = src.flatten(order="F")
        msg.state = MsgState.DELIVERED
        if callable(target):
            target(payload)
            return
        if target.nbytes != msg.nbytes:
            raise SimulationError(
                f"receive buffer size mismatch: posted {target.nbytes} B, "
                f"message from rank {msg.src} tag {msg.tag} is {msg.nbytes} B"
            )
        flat = payload.view(target.dtype)
        if target.ndim <= 1:
            np.copyto(target, flat)
        else:
            # reassemble the column-major flat payload into the target's
            # index space, whatever its memory layout
            np.copyto(target, flat.reshape(target.shape, order="F"))

    def _check_send_race(self, msg: Message) -> None:
        if not self.detect_races or msg.payload is None:
            # no snapshot was ever taken: the sender never executed while
            # the transfer was in flight, so the buffer cannot have raced
            return
        current = np.asarray(msg.source_view)
        payload = msg.payload
        # compare through a zero-copy reshape of the F-contiguous snapshot
        # instead of flattening the live view (which would copy it)
        if current.size != payload.size or not np.array_equal(
            current, payload.reshape(current.shape, order="F")
        ):
            self.warnings.append(
                f"send buffer of rank {msg.src} (tag {msg.tag}, "
                f"{msg.nbytes} B) was modified while the transfer was in "
                f"flight — the transformation that produced this program "
                f"is unsafe"
            )

    # -------------------------------------------------------------- barrier

    def _do_barrier(self, rank: _Rank) -> None:
        rank.status = _Status.IN_BARRIER
        rank.block_start = rank.clock
        self._barrier_waiting.append(rank.index)
        if len(self._barrier_waiting) == self.nranks_active():
            self._release_barrier()

    def _release_barrier(self) -> None:
        t = max(self.ranks[i].clock for i in self._barrier_waiting)
        cost = self.network.latency * max(
            1.0, math.ceil(math.log2(max(2, self.nranks)))
        )
        for i in self._barrier_waiting:
            r = self.ranks[i]
            r.stats.wait_time += max(0.0, t - r.clock)
            r.clock = t + cost
            r.stats.mpi_overhead_time += cost
            r.status = _Status.READY
            self._touch(r)
        self._barrier_waiting.clear()

    def nranks_active(self) -> int:
        return sum(1 for r in self.ranks if r.status is not _Status.DONE)

    # ---------------------------------------------------------------- misc

    def _push_event(self, time: float, action: Callable[[float], None]) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time, self._seq, action))


def _completion(req: Any) -> Optional[float]:
    return req.complete_time


def simulate(
    programs: Sequence[RankProgram],
    network: "NetworkModel | str",
    *,
    detect_races: bool = True,
    snapshot_payloads: bool = True,
) -> SimResult:
    """Convenience wrapper: build an :class:`Engine` and run it.

    ``network`` is a model instance or a registered scenario name.
    """
    return Engine(
        programs,
        network,
        detect_races=detect_races,
        snapshot_payloads=snapshot_payloads,
    ).run()
