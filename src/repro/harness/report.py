"""Plain-text experiment tables (the harness's output format).

Every figure/ablation function returns a :class:`Table`: named columns,
typed rows, a title, and helpers for the assertions the benchmark suite
makes about result *shape* (who wins, by what factor).  ``render()``
produces the aligned ASCII table the CLI and benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..errors import ReproError

Cell = Union[str, int, float]


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_seconds(seconds: float) -> str:
    """Human-scaled time: 1.234 ms, 56.7 us..."""
    for unit, scale in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6), ("ns", 1e-9)):
        if abs(seconds) >= scale:
            return f"{seconds / scale:.4g} {unit}"
    return "0 s"


@dataclass
class Table:
    """A titled grid of results with typed columns."""

    title: str
    columns: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ReproError(
                f"row has {len(cells)} cells, table {self.title!r} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Cell]:
        """All values of one column."""
        try:
            i = self.columns.index(name)
        except ValueError:
            raise ReproError(
                f"table {self.title!r} has no column {name!r}; "
                f"columns: {self.columns}"
            ) from None
        return [row[i] for row in self.rows]

    def lookup(self, **key: Cell) -> Dict[str, Cell]:
        """The unique row matching all given column=value pairs, as a dict."""
        idx = {k: self.columns.index(k) for k in key}
        matches = [
            row
            for row in self.rows
            if all(row[idx[k]] == v for k, v in key.items())
        ]
        if len(matches) != 1:
            raise ReproError(
                f"{len(matches)} rows match {key!r} in table {self.title!r}"
            )
        return dict(zip(self.columns, matches[0]))

    def value(self, column: str, **key: Cell) -> Cell:
        """Single-cell lookup: the ``column`` of the row matching ``key``."""
        return self.lookup(**key)[column]

    def render(self) -> str:
        """Aligned ASCII rendering, paper-style."""
        cells = [[format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(
            self.columns[i].ljust(widths[i]) for i in range(len(self.columns))
        )
        lines = [self.title, "=" * max(len(self.title), len(header))]
        lines.append(header)
        lines.append(sep)
        for row in cells:
            lines.append(
                " | ".join(row[i].ljust(widths[i]) for i in range(len(row)))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    unit: str = "",
) -> str:
    """ASCII horizontal bar chart (the harness's 'figure' rendering)."""
    if len(labels) != len(values):
        raise ReproError("labels and values differ in length")
    if not values:
        return "(empty chart)"
    peak = max(values)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, v in zip(labels, values):
        n = 0 if peak <= 0 else int(round(width * v / peak))
        lines.append(
            f"{label.ljust(label_w)} | {'#' * n} {format_cell(v)}{unit}"
        )
    return "\n".join(lines)
