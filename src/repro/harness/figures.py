"""Regeneration of the paper's figures and the deferred ablations.

The paper's evaluation (Figure 1 plus the §4 correctness claim) is
reproduced here, together with the parameter studies the paper defers to
Danalis et al. [3] — tile size, cluster size, network parameters — and
two studies of its own design discussions: workload generality (§2's
example algorithms) and the node-loop interchange (§3.5).

Every function returns a :class:`~repro.harness.report.Table`; the
benchmark suite renders the tables and asserts their *shape* (who wins,
roughly by how much) rather than absolute virtual times.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..apps import (
    adi_sweep,
    build_app,
    cg_allreduce,
    fft_transpose,
    figure2_kernel,
    halo_allgather,
    indirect_kernel,
    lu_panel,
    nodeloop_kernel,
    sample_sort_exchange,
)
from ..runtime.collectives import (
    CollectiveSpec,
    default_algorithm,
    list_algorithms,
)
from ..runtime.costmodel import DEFAULT_COST_MODEL, CostModel
from ..runtime.network import (
    MPICH_GM,
    MPICH_P4,
    NetworkModel,
    get_model,
    list_models,
    resolve_model,
)
from .report import Table
from .runner import PairResult, PreparedApp, measure

__all__ = [
    "figure1",
    "ablation_tile_size",
    "ablation_scaling",
    "ablation_network",
    "ablation_workloads",
    "ablation_nodeloop",
    "ablation_scenarios",
    "ablation_collectives",
]

NetworkLike = Union[str, NetworkModel]


def figure1(
    *,
    n: int = 32,
    nranks: int = 8,
    stages: int = 6,
    tile_size: Union[int, str] = "auto",
    cpu_scale: float = 8.0,
    verify: bool = True,
) -> Table:
    """Paper Figure 1: normalized execution time, Original vs Prepush,
    under the host-based stack (MPICH) and the NIC-offload stack (MPICH-GM).

    The workload is the paper's §4 indirect-pattern test program.  The
    expected shape: MPICH bars tallest (slow host-driven network, little
    to gain from issuing early), MPICH-GM original in the middle, and
    MPICH-GM prepush shortest — overlap hides most of the wire time and
    the removed copy loop saves CPU besides.

    ``cpu_scale`` multiplies the per-operation CPU cost model, setting the
    computation/communication ratio.  The default (8x the interpreter's
    optimistic per-op charge) matches the 2005-era balance of the paper's
    testbed, where application kernels did substantially more work per
    transferred element than an integer hash; EXPERIMENTS.md records the
    sensitivity.
    """
    app = indirect_kernel(n=n, nranks=nranks, stages=stages)
    prepared = PreparedApp(
        app,
        tile_size=tile_size,
        verify=verify,
        cost_model=DEFAULT_COST_MODEL.scaled(cpu_scale),
    )
    results = [
        (stack, prepared.run_on(stack))
        for stack in (MPICH_P4, MPICH_GM)
    ]
    times = []
    for _, pair in results:
        times.extend([pair.original.time, pair.prepush.time])
    floor = min(times)

    table = Table(
        title=(
            "Figure 1 — normalized execution time "
            f"(indirect kernel, n={n}, NP={nranks})"
        ),
        columns=[
            "stack",
            "variant",
            "time_s",
            "normalized",
            "speedup_vs_original",
        ],
    )
    for stack, pair in results:
        for variant, m in (("original", pair.original), ("prepush", pair.prepush)):
            table.add(
                stack.name,
                variant,
                m.time,
                m.time / floor,
                pair.original.time / m.time,
            )
        table.notes.append(
            f"{stack.name}: K={pair.transform.sites[0].tile_size}, "
            f"{pair.prepush.messages} msgs prepush vs "
            f"{pair.original.messages} original"
        )
    return table


def ablation_tile_size(
    *,
    ks: Optional[Sequence[int]] = None,
    n: int = 128,
    nranks: int = 8,
    steps: int = 1,
    stages: int = 6,
    network: NetworkLike = MPICH_GM,
    verify: bool = True,
    collective: CollectiveSpec = None,
) -> Table:
    """Ablation A: the U-shaped tile-size trade-off (deferred to [3]).

    Small K → many messages, per-message overhead dominates; large K →
    little overlap left (the last tile's transfer is exposed; K = trip
    degenerates to the original schedule).  The sweep runs the
    FFT-transpose kernel (scheme A, K unconstrained).
    """
    network = resolve_model(network)
    if ks is None:
        ks = [k for k in (1, 4, 8, 16, 32, 64, n) if k <= n]
    app = fft_transpose(n=n, nranks=nranks, steps=steps, stages=stages)
    table = Table(
        title=f"Ablation A — tile size sweep (fft n={n}, NP={nranks}, "
        f"{network.name})",
        columns=["K", "tiles", "time_s", "speedup", "messages"],
    )
    baseline = None
    for k in ks:
        prepared = PreparedApp(app, tile_size=int(k), verify=verify and k == ks[0])
        pair = prepared.run_on(network, collective=collective)
        if baseline is None:
            baseline = pair.original.time
        table.add(
            int(k),
            pair.transform.sites[0].comm_rounds,
            pair.prepush.time,
            baseline / pair.prepush.time,
            pair.prepush.messages,
        )
    table.notes.append(f"original time: {baseline:.6g} s")
    return table


def ablation_scaling(
    *,
    nranks_list: Sequence[int] = (2, 4, 8, 16),
    n: int = 128,
    steps: int = 1,
    stages: int = 6,
    network: NetworkLike = MPICH_GM,
    verify: bool = True,
    collective: CollectiveSpec = None,
) -> Table:
    """Ablation B: cluster-size scaling of the prepush benefit."""
    network = resolve_model(network)
    table = Table(
        title=f"Ablation B — cluster size sweep (fft n={n}, {network.name})",
        columns=["NP", "time_original_s", "time_prepush_s", "speedup"],
    )
    for nranks in nranks_list:
        app = fft_transpose(n=n, nranks=nranks, steps=steps, stages=stages)
        pair = PreparedApp(app, verify=verify).run_on(
            network, collective=collective
        )
        table.add(
            nranks, pair.original.time, pair.prepush.time, pair.speedup
        )
    return table


def _network_variants(base: NetworkModel) -> List[Tuple[str, NetworkModel]]:
    return [
        ("gm", base),
        ("gm-lat-x8", base.with_(name="gm-lat-x8", latency=base.latency * 8)),
        (
            "gm-wire-x4",
            base.with_(name="gm-wire-x4", byte_time=base.byte_time * 4),
        ),
        (
            "gm-no-offload",
            base.with_(
                name="gm-no-offload",
                offload=False,
                host_byte_time=base.byte_time,
            ),
        ),
        ("mpich", MPICH_P4),
    ]


def ablation_network(
    *,
    n: int = 128,
    nranks: int = 8,
    steps: int = 1,
    stages: int = 6,
    verify: bool = True,
) -> Table:
    """Ablation C: which network properties the benefit depends on.

    Sweeps latency, wire bandwidth, and — the paper's central claim —
    NIC offload.  Removing offload (``gm-no-offload``) makes the host
    CPU progress every byte: the same transformed program loses its
    advantage, which is exactly why the paper pairs the transformation
    with RDMA-capable interconnects.
    """
    app = fft_transpose(n=n, nranks=nranks, steps=steps, stages=stages)
    prepared = PreparedApp(app, verify=verify)
    table = Table(
        title=f"Ablation C — network parameter sweep (fft n={n}, NP={nranks})",
        columns=[
            "network",
            "offload",
            "time_original_s",
            "time_prepush_s",
            "speedup",
        ],
    )
    for label, model in _network_variants(MPICH_GM):
        pair = prepared.run_on(model)
        table.add(
            label,
            "yes" if model.offload else "no",
            pair.original.time,
            pair.prepush.time,
            pair.speedup,
        )
    return table


def ablation_workloads(
    *,
    nranks: int = 8,
    network: NetworkLike = MPICH_GM,
    sizes: Optional[dict] = None,
    cpu_scale: float = 4.0,
    verify: bool = True,
    collective: CollectiveSpec = None,
) -> Table:
    """Ablation D: prepush across §2's example workload classes.

    ``cpu_scale`` (default 4x) models kernels doing realistic work per
    transferred element; the scheme-B workload (figure2) is expected to
    gain least — its traffic is the §3.5 congested shape.
    """
    network = resolve_model(network)
    sizes = sizes or {}
    apps = [
        figure2_kernel(
            n=sizes.get("figure2", 4096), nranks=nranks, steps=1, stages=6
        ),
        indirect_kernel(n=sizes.get("indirect", 32), nranks=nranks, stages=6),
        fft_transpose(
            n=sizes.get("fft", 96), nranks=nranks, steps=1, stages=6
        ),
        sample_sort_exchange(
            keys_per_dest=sizes.get("sort", 1024), nranks=nranks, steps=1, stages=6
        ),
        adi_sweep(n=sizes.get("stencil", 96), nranks=nranks, steps=2),
        lu_panel(n=sizes.get("lu", 96), nranks=nranks, steps=2),
    ]
    table = Table(
        title=f"Ablation D — workload generality (NP={nranks}, {network.name})",
        columns=[
            "workload",
            "pattern",
            "scheme",
            "K",
            "time_original_s",
            "time_prepush_s",
            "speedup",
        ],
    )
    cost = DEFAULT_COST_MODEL.scaled(cpu_scale)
    for app in apps:
        pair = PreparedApp(app, verify=verify, cost_model=cost).run_on(
            network, collective=collective
        )
        site = pair.transform.sites[0]
        table.add(
            app.name,
            site.kind.value,
            site.scheme,
            site.tile_size,
            pair.original.time,
            pair.prepush.time,
            pair.speedup,
        )
    return table


def ablation_nodeloop(
    *,
    n: int = 96,
    nranks: int = 8,
    steps: int = 1,
    stages: int = 6,
    network: NetworkLike = MPICH_GM,
    cpu_scale: float = 4.0,
    verify: bool = True,
    collective: CollectiveSpec = None,
) -> Table:
    """Ablation E: the cost of a congested node loop (§3.5).

    The node-loop-outermost kernel is transformed twice: with the
    interchange remedy (scheme A: balanced pairwise traffic) and with
    interchange disabled (scheme B: every rank aims each tile at one
    destination NIC).  Both are correct; the congested variant shows the
    efficiency loss the paper warns about.
    """
    network = resolve_model(network)
    app = nodeloop_kernel(n=n, nranks=nranks, steps=steps, stages=stages)
    cost = DEFAULT_COST_MODEL.scaled(cpu_scale)
    table = Table(
        title=(
            f"Ablation E — node-loop position (nodeloop n={n}, "
            f"NP={nranks}, {network.name})"
        ),
        columns=["variant", "scheme", "time_s", "vs_original"],
    )
    interchanged = PreparedApp(
        app, interchange="auto", verify=verify, cost_model=cost
    ).run_on(network, collective=collective)
    congested = PreparedApp(
        app, interchange="never", verify=verify, cost_model=cost
    ).run_on(network, collective=collective)
    base = interchanged.original.time
    table.add("original", "-", base, 1.0)
    table.add(
        "prepush+interchange",
        interchanged.transform.sites[0].scheme,
        interchanged.prepush.time,
        base / interchanged.prepush.time,
    )
    table.add(
        "prepush-congested",
        congested.transform.sites[0].scheme,
        congested.prepush.time,
        base / congested.prepush.time,
    )
    return table


def ablation_scenarios(
    *,
    names: Optional[Sequence[str]] = None,
    n: int = 96,
    nranks: int = 8,
    steps: int = 1,
    stages: int = 6,
    cpu_scale: float = 4.0,
    verify: bool = True,
    processes: Optional[int] = None,
) -> Table:
    """Ablation F: the prepush benefit across every registered scenario.

    Sweeps the FFT-transpose pair over the scenario registry — including
    protocol-switching (eager/rendezvous), multi-rail, congested-fabric,
    and modern RDMA-class profiles — so any model added with
    :func:`~repro.runtime.network.register_model` automatically joins the
    study.  ``names=None`` selects every registered model except
    ``ideal`` (which only isolates compute), deduplicating aliases.

    ``processes`` > 1 runs the per-scenario simulations on a process
    pool via :func:`~repro.interp.runner.run_many` (the sweep is
    embarrassingly parallel; results are identical either way).
    """
    if names is None:
        seen: set = set()
        models: List[NetworkModel] = []
        for name in list_models():
            model = get_model(name)
            if id(model) in seen or model.name == "ideal":
                continue
            seen.add(id(model))
            models.append(model)
        models.sort(key=lambda m: m.name)
    else:
        models = [get_model(name) for name in names]

    cost = DEFAULT_COST_MODEL.scaled(cpu_scale)
    app = fft_transpose(n=n, nranks=nranks, steps=steps, stages=stages)
    prepared = PreparedApp(app, verify=verify, cost_model=cost)
    table = Table(
        title=f"Ablation F — scenario registry sweep (fft n={n}, NP={nranks})",
        columns=[
            "scenario",
            "offload",
            "protocol",
            "time_original_s",
            "time_prepush_s",
            "speedup",
        ],
    )

    if processes is not None and processes > 1:
        from ..interp.runner import ClusterJob, run_many

        jobs = []
        for model in models:
            for source in (app.source, prepared.transform.source):
                jobs.append(
                    ClusterJob(
                        program=source,
                        nranks=app.nranks,
                        network=model,
                        cost_model=cost,
                        externals=app.externals,
                    )
                )
        runs = run_many(jobs, processes=processes)
        pairs = [
            (model, runs[2 * i].time, runs[2 * i + 1].time)
            for i, model in enumerate(models)
        ]
    else:
        pairs = []
        for model in models:
            result = prepared.run_on(model)
            pairs.append((model, result.original.time, result.prepush.time))

    for model, t_orig, t_pp in pairs:
        table.add(
            model.name,
            "yes" if model.offload else "no",
            model.protocol_label(),
            t_orig,
            t_pp,
            t_orig / t_pp if t_pp > 0 else float("inf"),
        )
    return table


def ablation_collectives(
    *,
    networks: Sequence[NetworkLike] = ("hostnet", "gmnet"),
    nranks: int = 8,
    fft_n: int = 96,
    cg_n: int = 256,
    halo_n: int = 128,
    steps: int = 2,
    stages: int = 4,
    cpu_scale: float = 4.0,
) -> Table:
    """Ablation G: the collective-algorithm axis (algorithm x network x
    workload).

    Sweeps every registered algorithm of each collective over the
    workload whose traffic it dominates — alltoall variants on the
    FFT transpose, allreduce variants on the CG kernel, allgather
    variants on the halo exchange — under each network.  ``vs_default``
    normalizes to that collective's default algorithm on the same
    network, so >1 means the alternative schedule is faster.  Algorithms
    added with :func:`~repro.runtime.collectives.register_algorithm`
    automatically join the sweep.
    """
    workloads = [
        (
            "alltoall",
            fft_transpose(n=fft_n, nranks=nranks, steps=steps, stages=stages),
        ),
        (
            "allreduce",
            cg_allreduce(n=cg_n, nranks=nranks, steps=steps, stages=stages),
        ),
        (
            "allgather",
            halo_allgather(n=halo_n, nranks=nranks, steps=steps, stages=stages),
        ),
    ]
    cost = DEFAULT_COST_MODEL.scaled(cpu_scale)
    table = Table(
        title=(
            f"Ablation G — collective algorithm sweep (NP={nranks}, "
            f"{'/'.join(resolve_model(n).name for n in networks)})"
        ),
        columns=[
            "collective",
            "algorithm",
            "workload",
            "network",
            "time_s",
            "vs_default",
        ],
    )
    for collective, app in workloads:
        algorithms = list_algorithms(collective)
        for network in networks:
            model = resolve_model(network)
            times = {
                algorithm: measure(
                    app.source,
                    app.nranks,
                    model,
                    cost_model=cost,
                    externals=app.externals,
                    label=f"{app.name}/{algorithm}",
                    collective={collective: algorithm},
                ).time
                for algorithm in algorithms
            }
            base = times[default_algorithm(collective)]
            for algorithm in algorithms:
                table.add(
                    collective,
                    algorithm,
                    app.name,
                    model.name,
                    times[algorithm],
                    base / times[algorithm] if times[algorithm] > 0 else 1.0,
                )
    return table
