"""Regeneration of the paper's figures and the deferred ablations.

The paper's evaluation (Figure 1 plus the §4 correctness claim) is
reproduced here, together with the parameter studies the paper defers to
Danalis et al. [3] — tile size, cluster size, network parameters — and
two studies of its own design discussions: workload generality (§2's
example algorithms) and the node-loop interchange (§3.5).

Every function is a thin :class:`~repro.harness.sweep.SweepSpec`
constructor over the shared sweep engine (:mod:`repro.harness.sweep`):
it names the axes, lets the engine expand, deduplicate, cache, and
(optionally) shard the simulations, then folds the measurements into a
:class:`~repro.harness.report.Table`.  Pass ``session=`` (a
:class:`repro.api.Session`) to run through the façade's cache and
persistent pool; the legacy ``cache``/``jobs`` keywords drive a
one-shot engine invocation instead and are mutually exclusive with
``session``.  A warm cache regenerates every table below
bit-identically with zero simulations (DESIGN.md §7).

Every function returns a :class:`~repro.harness.report.Table`; the
benchmark suite renders the tables and asserts their *shape* (who wins,
roughly by how much) rather than absolute virtual times.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..runtime.collectives import (
    CollectiveSpec,
    default_algorithm,
    list_algorithms,
)
from ..runtime.network import (
    MPICH_GM,
    MPICH_P4,
    NetworkModel,
    get_model,
    list_models,
    resolve_model,
)
from ..transform.pipeline import Pipeline, list_variants, variant_label
from .report import Table
from .sweep import SweepCache, SweepSpec, _execute_sweep, collective_label

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..api.session import Session

__all__ = [
    "figure1",
    "ablation_tile_size",
    "ablation_scaling",
    "ablation_network",
    "ablation_workloads",
    "ablation_nodeloop",
    "ablation_scenarios",
    "ablation_collectives",
    "ablation_variants",
]

NetworkLike = Union[str, NetworkModel]
CacheLike = Union[None, str, Path, SweepCache]
VariantLike = Union[str, Pipeline]


def _treatment_variant(variant: VariantLike) -> str:
    """The label of a figure's treatment arm, which must transform.

    Figures comparing "original vs <variant>" cannot use ``original``
    (or any duplicate of the baseline) as the treatment.
    """
    label = variant_label(variant)
    if label == "original":
        raise ReproError(
            "variant='original' is the baseline arm; pick a "
            f"transforming variant (registered: {list_variants()})"
        )
    return label


def _sweep(
    specs,
    *,
    session: "Optional[Session]",
    cache: CacheLike,
    jobs: Optional[int],
):
    """Run specs through a Session façade or a one-shot engine call.

    ``session`` and the legacy ``cache``/``jobs`` knobs are mutually
    exclusive: a session already owns its cache and pool, and silently
    preferring one source of configuration over the other would run a
    different sweep than the caller asked for.
    """
    if session is not None:
        if cache is not None or jobs is not None:
            raise ReproError(
                "session= already carries the engine configuration; "
                "drop the cache=/jobs= (or legacy processes=) arguments "
                "and construct the Session with "
                "Session(cache_dir=..., jobs=...)"
            )
        return session.sweep(specs)
    return _execute_sweep(specs, cache=cache, jobs=jobs)


def _speedup(original: float, prepush: float) -> float:
    """original/prepush with the degenerate-zero conventions of
    :class:`~repro.harness.runner.PairResult`: 0/0 is "no change"."""
    if prepush <= 0:
        return 1.0 if original <= 0 else float("inf")
    return original / prepush


def figure1(
    *,
    n: int = 32,
    nranks: int = 8,
    stages: int = 6,
    tile_size: Union[int, str] = "auto",
    cpu_scale: float = 8.0,
    verify: bool = True,
    variant: VariantLike = "prepush",
    cache: CacheLike = None,
    jobs: Optional[int] = None,
    session: "Optional[Session]" = None,
) -> Table:
    """Paper Figure 1: normalized execution time, Original vs Prepush,
    under the host-based stack (MPICH) and the NIC-offload stack (MPICH-GM).

    ``variant`` selects the treatment arm from the variant registry
    (default ``"prepush"``; any registered pipeline name works).

    The workload is the paper's §4 indirect-pattern test program.  The
    expected shape: MPICH bars tallest (slow host-driven network, little
    to gain from issuing early), MPICH-GM original in the middle, and
    MPICH-GM prepush shortest — overlap hides most of the wire time and
    the removed copy loop saves CPU besides.

    ``cpu_scale`` multiplies the per-operation CPU cost model, setting the
    computation/communication ratio.  The default (8x the interpreter's
    optimistic per-op charge) matches the 2005-era balance of the paper's
    testbed, where application kernels did substantially more work per
    transferred element than an integer hash; EXPERIMENTS.md records the
    sensitivity.
    """
    vname = _treatment_variant(variant)
    spec = SweepSpec(
        name="figure1",
        app="indirect",
        app_kwargs={"n": n, "stages": stages},
        nranks=(nranks,),
        variants=("original", variant),
        tile_sizes=(tile_size,),
        networks=(MPICH_P4, MPICH_GM),
        cpu_scales=(cpu_scale,),
        verify=verify,
    )
    res = _sweep(spec, session=session, cache=cache, jobs=jobs)

    times = [r.measurement.time for r in res.runs]
    floor = min(times)
    table = Table(
        title=(
            "Figure 1 — normalized execution time "
            f"(indirect kernel, n={n}, NP={nranks})"
        ),
        columns=[
            "stack",
            "variant",
            "time_s",
            "normalized",
            "speedup_vs_original",
        ],
    )
    for stack in (MPICH_P4, MPICH_GM):
        original = res.get(network=stack.name, variant="original")
        prepush = res.get(network=stack.name, variant=vname)
        for label, run in (("original", original), (vname, prepush)):
            m = run.measurement
            table.add(
                stack.name,
                label,
                m.time,
                m.time / floor,
                original.measurement.time / m.time,
            )
        sites = prepush.transform.sites if prepush.transform else []
        table.notes.append(
            f"{stack.name}: K={sites[0].tile_size if sites else '-'}, "
            f"{prepush.measurement.messages} msgs {vname} vs "
            f"{original.measurement.messages} original"
        )
    return table


def ablation_tile_size(
    *,
    ks: Optional[Sequence[int]] = None,
    n: int = 128,
    nranks: int = 8,
    steps: int = 1,
    stages: int = 6,
    network: NetworkLike = MPICH_GM,
    verify: bool = True,
    collective: CollectiveSpec = None,
    variant: VariantLike = "prepush",
    cache: CacheLike = None,
    jobs: Optional[int] = None,
    session: "Optional[Session]" = None,
) -> Table:
    """Ablation A: the U-shaped tile-size trade-off (deferred to [3]).

    Small K → many messages, per-message overhead dominates; large K →
    little overlap left (the last tile's transfer is exposed; K = trip
    degenerates to the original schedule).  The sweep runs the
    FFT-transpose kernel (scheme A, K unconstrained); the engine
    fingerprint-deduplicates the untransformed baseline, which is the
    same program at every K.
    """
    network = resolve_model(network)
    vname = _treatment_variant(variant)
    if ks is None:
        ks = [k for k in (1, 4, 8, 16, 32, 64, n) if k <= n]
    # dedupe, order-preserving: the default list repeats n when n is a
    # power of two already listed, and duplicate axis values would make
    # the per-K result lookup ambiguous
    ks = list(dict.fromkeys(int(k) for k in ks))

    def spec_for(tiles: Sequence[int], tag: str, check: bool) -> SweepSpec:
        return SweepSpec(
            name=f"tile_size-{tag}",
            app="fft",
            app_kwargs={"n": n, "steps": steps, "stages": stages},
            nranks=(nranks,),
            variants=("original", variant),
            tile_sizes=tuple(tiles),
            networks=(network,),
            collectives=(collective,),
            verify=check,
        )

    # only the first K is equivalence-checked (one check pins the
    # transform; re-verifying per K would only re-run the same §4 proof)
    specs = [spec_for(ks[:1], "first", verify)]
    if ks[1:]:
        specs.append(spec_for(ks[1:], "rest", False))
    res = _sweep(specs, session=session, cache=cache, jobs=jobs)

    table = Table(
        title=f"Ablation A — tile size sweep (fft n={n}, NP={nranks}, "
        f"{network.name})",
        columns=["K", "tiles", "time_s", "speedup", "messages"],
    )
    baseline = res.measurement(variant="original", tile_size=ks[0]).time
    for k in ks:
        run = res.get(variant=vname, tile_size=k)
        sites = run.transform.sites if run.transform else []
        table.add(
            k,
            sites[0].comm_rounds if sites else "-",
            run.measurement.time,
            baseline / run.measurement.time,
            run.measurement.messages,
        )
    table.notes.append(f"original time: {baseline:.6g} s")
    return table


def ablation_scaling(
    *,
    nranks_list: Sequence[int] = (2, 4, 8, 16),
    n: int = 128,
    steps: int = 1,
    stages: int = 6,
    network: NetworkLike = MPICH_GM,
    verify: bool = True,
    collective: CollectiveSpec = None,
    variant: VariantLike = "prepush",
    cache: CacheLike = None,
    jobs: Optional[int] = None,
    session: "Optional[Session]" = None,
) -> Table:
    """Ablation B: cluster-size scaling of the prepush benefit."""
    network = resolve_model(network)
    vname = _treatment_variant(variant)
    spec = SweepSpec(
        name="scaling",
        app="fft",
        app_kwargs={"n": n, "steps": steps, "stages": stages},
        nranks=tuple(nranks_list),
        variants=("original", variant),
        networks=(network,),
        collectives=(collective,),
        verify=verify,
    )
    res = _sweep(spec, session=session, cache=cache, jobs=jobs)
    table = Table(
        title=f"Ablation B — cluster size sweep (fft n={n}, {network.name})",
        columns=["NP", "time_original_s", f"time_{vname}_s", "speedup"],
    )
    for nranks in nranks_list:
        t_orig = res.measurement(variant="original", nranks=nranks).time
        t_pp = res.measurement(variant=vname, nranks=nranks).time
        table.add(nranks, t_orig, t_pp, _speedup(t_orig, t_pp))
    return table


def _network_variants(base: NetworkModel) -> List[Tuple[str, NetworkModel]]:
    return [
        ("gm", base),
        ("gm-lat-x8", base.with_(name="gm-lat-x8", latency=base.latency * 8)),
        (
            "gm-wire-x4",
            base.with_(name="gm-wire-x4", byte_time=base.byte_time * 4),
        ),
        (
            "gm-no-offload",
            base.with_(
                name="gm-no-offload",
                offload=False,
                host_byte_time=base.byte_time,
            ),
        ),
        ("mpich", MPICH_P4),
    ]


def ablation_network(
    *,
    n: int = 128,
    nranks: int = 8,
    steps: int = 1,
    stages: int = 6,
    verify: bool = True,
    cache: CacheLike = None,
    jobs: Optional[int] = None,
    session: "Optional[Session]" = None,
) -> Table:
    """Ablation C: which network properties the benefit depends on.

    Sweeps latency, wire bandwidth, and — the paper's central claim —
    NIC offload.  Removing offload (``gm-no-offload``) makes the host
    CPU progress every byte: the same transformed program loses its
    advantage, which is exactly why the paper pairs the transformation
    with RDMA-capable interconnects.
    """
    variants = _network_variants(MPICH_GM)
    spec = SweepSpec(
        name="network",
        app="fft",
        app_kwargs={"n": n, "steps": steps, "stages": stages},
        nranks=(nranks,),
        networks=tuple(model for _, model in variants),
        verify=verify,
    )
    res = _sweep(spec, session=session, cache=cache, jobs=jobs)
    table = Table(
        title=f"Ablation C — network parameter sweep (fft n={n}, NP={nranks})",
        columns=[
            "network",
            "offload",
            "time_original_s",
            "time_prepush_s",
            "speedup",
        ],
    )
    for label, model in variants:
        t_orig = res.measurement(variant="original", network=model.name).time
        t_pp = res.measurement(variant="prepush", network=model.name).time
        table.add(
            label,
            "yes" if model.offload else "no",
            t_orig,
            t_pp,
            _speedup(t_orig, t_pp),
        )
    return table


#: Workload roster of Ablation D: (app builder name, geometry kwargs).
#: ``sizes`` overrides use the roster key.
_WORKLOAD_ROSTER: Tuple[Tuple[str, str, dict], ...] = (
    ("figure2", "figure2", {"n": 4096, "steps": 1, "stages": 6}),
    ("indirect", "indirect", {"n": 32, "stages": 6}),
    ("fft", "fft", {"n": 96, "steps": 1, "stages": 6}),
    ("sort", "sort", {"keys_per_dest": 1024, "steps": 1, "stages": 6}),
    ("stencil", "stencil", {"n": 96, "steps": 2}),
    ("lu", "lu", {"n": 96, "steps": 2}),
)


def ablation_workloads(
    *,
    nranks: int = 8,
    network: NetworkLike = MPICH_GM,
    sizes: Optional[dict] = None,
    cpu_scale: float = 4.0,
    verify: bool = True,
    collective: CollectiveSpec = None,
    variant: VariantLike = "prepush",
    cache: CacheLike = None,
    jobs: Optional[int] = None,
    session: "Optional[Session]" = None,
) -> Table:
    """Ablation D: prepush across §2's example workload classes.

    ``cpu_scale`` (default 4x) models kernels doing realistic work per
    transferred element; the scheme-B workload (figure2) is expected to
    gain least — its traffic is the §3.5 congested shape.
    """
    network = resolve_model(network)
    vname = _treatment_variant(variant)
    sizes = sizes or {}
    specs = []
    for key, app_name, kwargs in _WORKLOAD_ROSTER:
        kwargs = dict(kwargs)
        size_key = "keys_per_dest" if "keys_per_dest" in kwargs else "n"
        if key in sizes:
            kwargs[size_key] = sizes[key]
        specs.append(
            SweepSpec(
                name=f"workloads-{key}",
                app=app_name,
                app_kwargs=kwargs,
                nranks=(nranks,),
                variants=("original", variant),
                networks=(network,),
                collectives=(collective,),
                cpu_scales=(cpu_scale,),
                verify=verify,
            )
        )
    res = _sweep(specs, session=session, cache=cache, jobs=jobs)
    table = Table(
        title=f"Ablation D — workload generality (NP={nranks}, {network.name})",
        columns=[
            "workload",
            "pattern",
            "scheme",
            "K",
            "time_original_s",
            f"time_{vname}_s",
            "speedup",
        ],
    )
    for key, _, _ in _WORKLOAD_ROSTER:
        prepush = res.get(spec=f"workloads-{key}", variant=vname)
        original = res.get(spec=f"workloads-{key}", variant="original")
        sites = (
            prepush.transform.sites
            if prepush.transform is not None
            else []
        )
        table.add(
            prepush.axes["app"],
            sites[0].kind.value if sites else "-",
            sites[0].scheme if sites else "-",
            sites[0].tile_size if sites else "-",
            original.measurement.time,
            prepush.measurement.time,
            _speedup(original.measurement.time, prepush.measurement.time),
        )
    return table


def ablation_nodeloop(
    *,
    n: int = 96,
    nranks: int = 8,
    steps: int = 1,
    stages: int = 6,
    network: NetworkLike = MPICH_GM,
    cpu_scale: float = 4.0,
    verify: bool = True,
    collective: CollectiveSpec = None,
    variant: VariantLike = "prepush",
    cache: CacheLike = None,
    jobs: Optional[int] = None,
    session: "Optional[Session]" = None,
) -> Table:
    """Ablation E: the cost of a congested node loop (§3.5).

    The node-loop-outermost kernel is transformed twice: with the
    interchange remedy (scheme A: balanced pairwise traffic) and with
    interchange disabled (scheme B: every rank aims each tile at one
    destination NIC).  Both are correct; the congested variant shows the
    efficiency loss the paper warns about.
    """
    network = resolve_model(network)
    vname = _treatment_variant(variant)
    spec = SweepSpec(
        name="nodeloop",
        app="nodeloop",
        app_kwargs={"n": n, "steps": steps, "stages": stages},
        nranks=(nranks,),
        variants=("original", variant),
        interchange=("auto", "never"),
        networks=(network,),
        collectives=(collective,),
        cpu_scales=(cpu_scale,),
        verify=verify,
    )
    res = _sweep(spec, session=session, cache=cache, jobs=jobs)
    table = Table(
        title=(
            f"Ablation E — node-loop position (nodeloop n={n}, "
            f"NP={nranks}, {network.name})"
        ),
        columns=["variant", "scheme", "time_s", "vs_original"],
    )
    # the original program is interchange-independent (the knob only
    # moves the transformed loop nest); the engine deduplicated it
    base = res.measurement(variant="original", interchange="auto").time
    interchanged = res.get(variant=vname, interchange="auto")
    congested = res.get(variant=vname, interchange="never")
    table.add("original", "-", base, 1.0)

    def _scheme(run) -> str:
        sites = run.transform.sites if run.transform is not None else []
        return sites[0].scheme if sites else "-"

    table.add(
        f"{vname}+interchange",
        _scheme(interchanged),
        interchanged.measurement.time,
        base / interchanged.measurement.time,
    )
    table.add(
        f"{vname}-congested",
        _scheme(congested),
        congested.measurement.time,
        base / congested.measurement.time,
    )
    return table


def ablation_scenarios(
    *,
    names: Optional[Sequence[str]] = None,
    n: int = 96,
    nranks: int = 8,
    steps: int = 1,
    stages: int = 6,
    cpu_scale: float = 4.0,
    verify: bool = True,
    processes: Optional[int] = None,
    cache: CacheLike = None,
    jobs: Optional[int] = None,
    session: "Optional[Session]" = None,
) -> Table:
    """Ablation F: the prepush benefit across every registered scenario.

    Sweeps the FFT-transpose pair over the scenario registry — including
    protocol-switching (eager/rendezvous), multi-rail, congested-fabric,
    and modern RDMA-class profiles — so any model added with
    :func:`~repro.runtime.network.register_model` automatically joins the
    study.  ``names=None`` selects every registered model except
    ``ideal`` (which only isolates compute), deduplicating aliases.

    ``jobs`` (or the legacy alias ``processes``) > 1 shards the
    per-scenario simulations over a process pool via
    :func:`~repro.interp.runner.run_many` (the sweep is embarrassingly
    parallel; results are identical either way).
    """
    if names is None:
        seen: set = set()
        models: List[NetworkModel] = []
        for name in list_models():
            model = get_model(name)
            if id(model) in seen or model.name == "ideal":
                continue
            seen.add(id(model))
            models.append(model)
        models.sort(key=lambda m: m.name)
    else:
        models = [get_model(name) for name in names]

    spec = SweepSpec(
        name="scenarios",
        app="fft",
        app_kwargs={"n": n, "steps": steps, "stages": stages},
        nranks=(nranks,),
        networks=tuple(models),
        cpu_scales=(cpu_scale,),
        verify=verify,
    )
    res = _sweep(spec, session=session, cache=cache, jobs=jobs or processes)
    table = Table(
        title=f"Ablation F — scenario registry sweep (fft n={n}, NP={nranks})",
        columns=[
            "scenario",
            "offload",
            "protocol",
            "time_original_s",
            "time_prepush_s",
            "speedup",
        ],
    )
    for model in models:
        t_orig = res.measurement(variant="original", network=model.name).time
        t_pp = res.measurement(variant="prepush", network=model.name).time
        table.add(
            model.name,
            "yes" if model.offload else "no",
            model.protocol_label(),
            t_orig,
            t_pp,
            t_orig / t_pp if t_pp > 0 else float("inf"),
        )
    return table


#: Ablation G roster: collective -> (app builder, size kwarg name).
_COLLECTIVE_ROSTER: Tuple[Tuple[str, str], ...] = (
    ("alltoall", "fft"),
    ("allreduce", "cg"),
    ("allgather", "halo"),
)


def ablation_collectives(
    *,
    networks: Sequence[NetworkLike] = ("hostnet", "gmnet"),
    nranks: int = 8,
    fft_n: int = 96,
    cg_n: int = 256,
    halo_n: int = 128,
    steps: int = 2,
    stages: int = 4,
    cpu_scale: float = 4.0,
    cache: CacheLike = None,
    jobs: Optional[int] = None,
    session: "Optional[Session]" = None,
) -> Table:
    """Ablation G: the collective-algorithm axis (algorithm x network x
    workload).

    Sweeps every registered algorithm of each collective over the
    workload whose traffic it dominates — alltoall variants on the
    FFT transpose, allreduce variants on the CG kernel, allgather
    variants on the halo exchange — under each network.  ``vs_default``
    normalizes to that collective's default algorithm on the same
    network, so >1 means the alternative schedule is faster.  Algorithms
    added with :func:`~repro.runtime.collectives.register_algorithm`
    automatically join the sweep.
    """
    models = [resolve_model(net) for net in networks]
    sizes = {"fft": fft_n, "cg": cg_n, "halo": halo_n}
    specs = []
    for coll, app_name in _COLLECTIVE_ROSTER:
        specs.append(
            SweepSpec(
                name=f"collectives-{coll}",
                app=app_name,
                app_kwargs={
                    "n": sizes[app_name],
                    "steps": steps,
                    "stages": stages,
                },
                nranks=(nranks,),
                variants=("original",),
                networks=tuple(models),
                collectives=tuple(
                    {coll: alg} for alg in list_algorithms(coll)
                ),
                cpu_scales=(cpu_scale,),
                verify=False,
            )
        )
    res = _sweep(specs, session=session, cache=cache, jobs=jobs)
    table = Table(
        title=(
            f"Ablation G — collective algorithm sweep (NP={nranks}, "
            f"{'/'.join(m.name for m in models)})"
        ),
        columns=[
            "collective",
            "algorithm",
            "workload",
            "network",
            "time_s",
            "vs_default",
        ],
    )
    for coll, app_name in _COLLECTIVE_ROSTER:
        algorithms = list_algorithms(coll)
        for model in models:
            times = {
                alg: res.measurement(
                    spec=f"collectives-{coll}",
                    network=model.name,
                    collective=collective_label({coll: alg}),
                ).time
                for alg in algorithms
            }
            base = times[default_algorithm(coll)]
            for alg in algorithms:
                table.add(
                    coll,
                    alg,
                    app_name,
                    model.name,
                    times[alg],
                    base / times[alg] if times[alg] > 0 else 1.0,
                )
    return table


#: Ablation H roster: one workload per transformation shape — scheme A
#: direct (fft), node-loop-outermost direct (nodeloop, where the
#: interchange pass matters), and the indirect pattern (where the
#: indirect-elim pass matters).
_VARIANT_ROSTER: Tuple[Tuple[str, dict], ...] = (
    ("fft", {"n": 96, "steps": 1, "stages": 6}),
    ("nodeloop", {"n": 96, "steps": 1, "stages": 6}),
    ("indirect", {"n": 32, "stages": 6}),
)


def _preflight_variants(names, labels, *, sizes, nranks, dropped):
    """Filter auto-joined variants down to those every roster workload
    survives (transform-only; no simulation).  Incompatible variants
    land in ``dropped`` as ``label: reason`` strings."""
    from ..apps import build_app
    from ..transform.pipeline import resolve_variant
    from .runner import PreparedApp

    kept_names, kept_labels = [], []
    for variant, label in zip(names, labels):
        pipeline = resolve_variant(variant)
        try:
            if not pipeline.empty:
                for app_name, kwargs in _VARIANT_ROSTER:
                    kwargs = dict(kwargs)
                    if app_name in sizes:
                        kwargs["n"] = sizes[app_name]
                    PreparedApp(
                        build_app(app_name, nranks=nranks, **kwargs),
                        variant=pipeline,
                        verify=False,
                        snapshots=False,
                    )
        except ReproError as exc:
            dropped.append(f"{label}: {str(exc).splitlines()[0]}")
            continue
        kept_names.append(variant)
        kept_labels.append(label)
    return kept_names, kept_labels


def ablation_variants(
    *,
    variants: Optional[Sequence[VariantLike]] = None,
    networks: Sequence[NetworkLike] = ("hostnet", "gmnet"),
    nranks: int = 8,
    cpu_scale: float = 4.0,
    verify: bool = True,
    sizes: Optional[dict] = None,
    cache: CacheLike = None,
    jobs: Optional[int] = None,
    session: "Optional[Session]" = None,
) -> Table:
    """Ablation H: the transformation-variant axis (variant × network ×
    workload).

    Sweeps every registered transformation pipeline — including partial
    ablations like ``tile-only`` (no interchange, no copy-loop
    elimination) and ``prepush-schemeB-off`` — over one workload per
    transformation shape, under each network.  ``vs_original``
    normalizes to the untransformed program on the same network, so >1
    means the variant helped.  Pipelines registered at runtime with
    :func:`~repro.transform.pipeline.register_variant` automatically
    join the sweep; a variant that leaves a workload unchanged (e.g.
    ``tile-only`` on the indirect kernel) is measured as-is and shows
    speedup 1.0 with K='-'.
    """
    auto_roster = variants is None
    if variants is None:
        names: List[VariantLike] = list(list_variants())
    else:
        names = list(variants)
    labels = [variant_label(v) for v in names]
    if "original" not in labels:
        names = ["original"] + names
        labels = ["original"] + labels
    models = [resolve_model(net) for net in networks]
    sizes = sizes or {}
    dropped: List[str] = []
    if auto_roster:
        # auto-joined variants are best effort: a runtime-registered
        # full-rewrite pipeline that cannot transform one roster
        # workload must not abort the whole table.  Pre-flight each
        # variant (transform only — cheap) and drop the incompatible
        # ones with a note; explicitly-requested variants still raise.
        names, labels = _preflight_variants(
            names, labels, sizes=sizes, nranks=nranks, dropped=dropped
        )
    specs = []
    for app_name, kwargs in _VARIANT_ROSTER:
        kwargs = dict(kwargs)
        if app_name in sizes:
            kwargs["n"] = sizes[app_name]
        specs.append(
            SweepSpec(
                name=f"variants-{app_name}",
                app=app_name,
                app_kwargs=kwargs,
                nranks=(nranks,),
                variants=tuple(names),
                networks=tuple(models),
                cpu_scales=(cpu_scale,),
                verify=verify,
            )
        )
    res = _sweep(specs, session=session, cache=cache, jobs=jobs)
    table = Table(
        title=(
            f"Ablation H — transformation variant sweep (NP={nranks}, "
            f"{'/'.join(m.name for m in models)})"
        ),
        notes=[
            f"dropped incompatible variant {d}" for d in dropped
        ],
        columns=[
            "workload",
            "variant",
            "network",
            "K",
            "scheme",
            "time_s",
            "vs_original",
        ],
    )
    for app_name, _ in _VARIANT_ROSTER:
        for model in models:
            base = res.measurement(
                spec=f"variants-{app_name}",
                variant="original",
                network=model.name,
            ).time
            for label in labels:
                run = res.get(
                    spec=f"variants-{app_name}",
                    variant=label,
                    network=model.name,
                )
                own = (
                    run.transform.sites
                    if label != "original" and run.transform is not None
                    else []
                )
                table.add(
                    run.axes["app"],
                    label,
                    model.name,
                    own[0].tile_size if own else "-",
                    own[0].scheme if own else "-",
                    run.measurement.time,
                    _speedup(base, run.measurement.time),
                )
    return table
