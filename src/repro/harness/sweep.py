"""Declarative sweep engine with a content-addressed result cache.

The paper's evaluation is a cross-product — workload x transform variant
x tile size x network scenario x collective algorithm x rank count x
compute/communication ratio — and every figure used to hand-roll its own
nested loops.  This module separates the *experiment spec* from the
*execution engine*:

* :class:`SweepSpec` names the axes; :func:`expand_spec` expands the
  cross-product into :class:`SweepPoint`\\ s (transforming each workload
  once per tile/interchange choice, not once per point);
* :func:`run_sweep` runs every point through the sharded
  :func:`~repro.interp.runner.run_many` pool, deduplicating points whose
  content fingerprints coincide (e.g. the untransformed baseline of a
  tile-size sweep), and folds each run into a
  :class:`~repro.harness.runner.Measurement`;
* :class:`SweepCache` stores each measurement on disk keyed by
  :func:`~repro.interp.runner.job_fingerprint` — the sha-256 of
  (program text, network parameters, cost model, collective suite, rank
  count, engine semantic version).  DESIGN.md §3.2 guarantees the
  simulation is a pure function of exactly that key, so a warm re-run
  performs **zero simulations** and reproduces bit-identical results.

Every figure/ablation in :mod:`repro.harness.figures` is a thin
:class:`SweepSpec` constructor over this engine, and the
``compuniformer sweep`` CLI subcommand drives it from flags or a JSON
spec file.  See DESIGN.md §7 for the cache-key definition and the
invalidation rules.
"""

from __future__ import annotations

import json
import hashlib
import os
import tempfile
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

try:  # POSIX advisory locks; Windows degrades to O_EXCL-only claims
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..apps import build_app
from ..errors import ReproError
from ..interp.runner import ClusterJob, job_fingerprint, run_many
from ..lang.ast_nodes import SourceFile
from ..runtime.collectives import (
    COLLECTIVES,
    CollectiveSpec,
    resolve_suite,
)
from ..interp.symmetry import SYMMETRY_VERSION
from ..runtime.costmodel import DEFAULT_COST_MODEL, CostModel
from ..runtime.network import IDEAL, NetworkModel, resolve_model
from ..runtime.simulator import ENGINE_VERSION
from ..transform.options import TransformOptions
from ..transform.pipeline import (
    Pipeline,
    list_variants,
    resolve_variant,
    variant_identity,
    variant_label,
)
from ..transform.prepush import TransformReport
from .runner import Measurement, PreparedApp, measurement_from_run

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "SweepCache",
    "CacheStats",
    "CLAIM_STALE_AFTER",
    "SweepRun",
    "SweepStats",
    "SweepResult",
    "collective_label",
    "expand_spec",
    "run_sweep",
]

NetworkLike = Union[str, NetworkModel]
VariantLike = Union[str, Pipeline]

#: Default ``variants`` axis: the classic original-vs-prepush pair.
#: Any name registered with
#: :func:`repro.transform.pipeline.register_variant` (or a raw
#: :class:`~repro.transform.pipeline.Pipeline` instance) is a valid
#: axis value.
VARIANTS = ("original", "prepush")


def collective_label(spec: CollectiveSpec) -> str:
    """Canonical short axis label for a collective choice.

    ``"default"`` when every collective keeps its default algorithm,
    otherwise the non-default selections as sorted ``collective=name``
    pairs — so a dict, the CLI string form, and ``None`` that resolve to
    the same suite always carry the same label.
    """
    suite = resolve_suite(spec)
    defaults = resolve_suite(None)
    diff = [f"{c}={suite[c]}" for c in COLLECTIVES if suite[c] != defaults[c]]
    return ",".join(diff) if diff else "default"


# ----------------------------------------------------------------- spec


@dataclass
class SweepSpec:
    """One declarative experiment: a workload crossed with sweep axes.

    Every sequence field is an axis; the expansion is the full
    cross-product ``nranks x tile_sizes x interchange x cpu_scales x
    variants x networks x collectives``.  Workload geometry lives in
    ``app_kwargs`` (passed to the registered app builder together with
    each ``nranks`` value).
    """

    name: str
    app: str
    app_kwargs: Mapping[str, Any] = field(default_factory=dict)
    nranks: Sequence[int] = (8,)
    variants: Sequence[VariantLike] = VARIANTS
    tile_sizes: Sequence[Union[int, str]] = ("auto",)
    interchange: Sequence[str] = ("auto",)
    networks: Sequence[NetworkLike] = ("gmnet",)
    collectives: Sequence[CollectiveSpec] = (None,)
    cpu_scales: Sequence[float] = (1.0,)
    base_cost_model: CostModel = DEFAULT_COST_MODEL
    verify: bool = True
    detect_races: bool = True
    #: engine selection for every point (DESIGN.md §10): ``"auto"``
    #: replays symmetric programs and falls back otherwise, ``"replay"``
    #: forces replay, ``"full"`` forces per-rank interpretation;
    #: ``None`` inherits the executing Session's default.  Not an
    #: axis: all modes are bit-identical and share cache keys, so
    #: sweeping it would only measure the same points twice.
    engine_mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine_mode not in (None, "auto", "replay", "full"):
            raise ReproError(
                f"sweep {self.name!r}: unknown engine_mode "
                f"{self.engine_mode!r} (expected 'auto', 'replay', or "
                f"'full')"
            )
        unknown = sorted(
            v
            for v in self.variants
            if isinstance(v, str) and v not in list_variants()
        )
        bad_types = [
            v
            for v in self.variants
            if not isinstance(v, (str, Pipeline))
        ]
        if unknown or bad_types:
            raise ReproError(
                f"sweep {self.name!r}: unknown variants "
                f"{unknown + [repr(v) for v in bad_types]}; "
                f"accepted: registered names {list_variants()} or "
                f"Pipeline instances"
            )
        labels = [variant_label(v) for v in self.variants]
        if len(set(labels)) != len(labels):
            raise ReproError(
                f"sweep {self.name!r}: duplicate variant labels "
                f"{sorted(labels)} would make axis lookups ambiguous"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (network instances become their names)."""
        return {
            "name": self.name,
            "app": self.app,
            "app_kwargs": dict(self.app_kwargs),
            "nranks": list(self.nranks),
            "variants": [self._serializable_variant(v) for v in self.variants],
            "tile_sizes": list(self.tile_sizes),
            "interchange": list(self.interchange),
            "networks": [
                n.name if isinstance(n, NetworkModel) else n
                for n in self.networks
            ],
            "collectives": [
                dict(c) if isinstance(c, Mapping) else c
                for c in self.collectives
            ],
            "cpu_scales": list(self.cpu_scales),
            "verify": self.verify,
            "engine_mode": self.engine_mode,
        }

    @staticmethod
    def _serializable_variant(v: VariantLike) -> str:
        """A variant as a JSON-safe *reconstructible* name.

        Serializing an unregistered Pipeline instance by label would be
        lossy: loading the spec back would either fail validation or —
        worse — silently resolve to a different registered pipeline of
        the same name.  Such specs are refused here instead.
        """
        from ..transform.pipeline import get_variant

        label = variant_label(v)
        if isinstance(v, Pipeline):
            if (
                label not in list_variants()
                or get_variant(label) is not v
            ):
                raise ReproError(
                    f"cannot serialize unregistered pipeline variant "
                    f"{label!r}; register_variant() it first so the "
                    f"name round-trips"
                )
        return label

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a JSON object (the ``--spec`` file format)."""
        known = {
            "name",
            "app",
            "app_kwargs",
            "nranks",
            "variants",
            "tile_sizes",
            "interchange",
            "networks",
            "collectives",
            "cpu_scales",
            "verify",
            "engine_mode",
        }
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"sweep spec has unknown keys {sorted(unknown)}; "
                f"accepted: {sorted(known)}"
            )
        if "name" not in data or "app" not in data:
            raise ReproError("sweep spec needs at least 'name' and 'app'")
        return cls(**{k: data[k] for k in data})

    @classmethod
    def single(
        cls,
        *,
        name: str,
        app: str,
        app_kwargs: Optional[Mapping[str, Any]] = None,
        variant: VariantLike = "original",
        tile_size: Union[int, str] = "auto",
        interchange: str = "auto",
        network: NetworkLike = "gmnet",
        collective: CollectiveSpec = None,
        nranks: int = 8,
        cpu_scale: float = 1.0,
        verify: bool = False,
        engine_mode: Optional[str] = None,
    ) -> "SweepSpec":
        """A one-point spec: every axis a single value.

        This is the evaluation unit of the :mod:`repro.tune` search
        driver — one candidate configuration becomes one single-point
        spec, so its expansion carries exactly one fingerprint and the
        sweep cache acts as the search loop's memo table.  Expanding it
        yields exactly one :class:`SweepPoint` per variant-producing
        axis value (i.e. one, since every axis is singular).
        """
        return cls(
            name=name,
            app=app,
            app_kwargs=dict(app_kwargs or {}),
            nranks=(nranks,),
            variants=(variant,),
            tile_sizes=(tile_size,),
            interchange=(interchange,),
            networks=(network,),
            collectives=(collective,),
            cpu_scales=(cpu_scale,),
            verify=verify,
            engine_mode=engine_mode,
        )


@dataclass
class SweepPoint:
    """One fully-resolved simulation of a sweep (pre-execution)."""

    axes: Dict[str, Any]
    program: Union[str, SourceFile]
    nranks: int
    network: NetworkModel
    collective: CollectiveSpec
    cost_model: CostModel
    detect_races: bool
    label: str
    externals: Any = None
    transform: Optional[TransformReport] = None
    fingerprint: Optional[str] = None  # None = uncacheable (externals)
    #: transformation provenance (pipeline identity + options) of
    #: transformed points; None for the untransformed baseline
    variant_id: Optional[Dict[str, Any]] = None
    engine_mode: str = "auto"

    def job(self) -> ClusterJob:
        return ClusterJob(
            program=self.program,
            nranks=self.nranks,
            network=self.network,
            cost_model=self.cost_model,
            detect_races=self.detect_races,
            externals=self.externals,
            label=self.label,
            collective=self.collective,
            variant=self.variant_id,
            engine_mode=self.engine_mode,
        )


@dataclass
class _Verification:
    """A pending original/transformed equivalence check of one spec."""

    prepared: PreparedApp
    original_job: ClusterJob
    transformed_job: ClusterJob
    key: Optional[str]  # None = uncacheable (externals)


# ---------------------------------------------------------------- cache


@dataclass
class CacheStats:
    """Accounting of one cache over one or more sweeps."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    verify_hits: int = 0
    verify_misses: int = 0

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.corrupt} corrupt, "
            f"verify {self.verify_hits} hits / {self.verify_misses} misses"
        )


#: seconds after which an in-flight claim marker left behind by a
#: crashed writer counts as abandoned and may be broken by another
#: process (generous: the longest single simulation in the repo — a
#: 1024-rank replay — finishes well under this)
CLAIM_STALE_AFTER = 900.0


class SweepCache:
    """Content-addressed on-disk store of sweep results.

    One JSON file per entry, named by its sha-256 key under a two-hex
    fan-out directory (``ab/abcdef....json``).  Entries are write-once
    in practice — a key collision means the same simulation inputs,
    hence (§3.2) the same result — and writes are atomic (tempfile +
    rename) so a crashed sweep can never leave a half-written entry a
    later run would trust.  A corrupted or stale entry reads as a miss
    (counted in :attr:`CacheStats.corrupt`) and is overwritten by the
    re-simulation.

    **Multi-writer protocol** (DESIGN.md §11): concurrent processes
    sharing one cache directory coordinate through per-entry *in-flight
    claim markers*.  :meth:`claim` atomically (``O_CREAT|O_EXCL``)
    creates ``<key>.inflight`` next to the entry; the winner simulates
    and :meth:`put` (which removes the marker), losers :meth:`wait_for`
    the entry to land instead of duplicating the simulation.  Claim
    decisions are serialized under a per-entry advisory ``flock``
    (:meth:`lock`) so breaking a stale marker — one left by a crashed
    writer, older than :data:`CLAIM_STALE_AFTER` — cannot race a live
    claim.  The protocol is *advisory*: a writer that skips it and
    simulates anyway stays correct (entries are deterministic and
    writes atomic), it just wastes the duplicate work the markers
    exist to avoid.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None`` (miss).

        Unreadable/undecodable/mismatched entries count as ``corrupt``
        and read as a miss, so the caller falls back to re-simulation.
        """
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats.corrupt += 1
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            self.stats.corrupt += 1
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically store ``payload`` (annotated with its key) and
        release any in-flight claim this writer held on it."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(
            payload, key=key, engine=ENGINE_VERSION, symmetry=SYMMETRY_VERSION
        )
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self.release(key)

    # ------------------------------------------- multi-writer protocol

    def claim_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.inflight"

    @contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Per-entry advisory lock serializing claim/break decisions.

        Held only around marker bookkeeping (microseconds), never around
        a simulation.  Without :mod:`fcntl` (non-POSIX) this degrades to
        a no-op and :meth:`claim` relies on ``O_CREAT|O_EXCL`` alone,
        which still guarantees a single winner per marker — only the
        stale-marker *break* loses its race protection.
        """
        lock_file = self.root / key[:2] / f"{key}.lock"
        lock_file.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_file, os.O_CREAT | os.O_RDWR)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def _claim_stale(self, marker: Path) -> bool:
        """True when ``marker`` was abandoned: its writer recorded a
        timestamp more than :data:`CLAIM_STALE_AFTER` seconds ago (or
        the marker is unreadable).  A vanished marker is *not* stale —
        it means the entry just landed."""
        try:
            with open(marker, "r", encoding="utf-8") as fh:
                info = json.load(fh)
            claimed_at = float(info["time"])
        except FileNotFoundError:
            return False
        except (OSError, ValueError, TypeError, KeyError):
            return True  # unreadable marker: treat as abandoned
        return (time.time() - claimed_at) > CLAIM_STALE_AFTER

    def claim(self, key: str) -> bool:
        """Atomically claim the right to simulate ``key``.

        ``True``: this process owns the in-flight marker and must either
        :meth:`put` the entry (which releases it) or :meth:`release` on
        failure.  ``False``: the entry already exists, or another live
        writer holds the claim — :meth:`wait_for` the result instead.
        """
        with self.lock(key):
            if self.path(key).exists():
                return False
            marker = self.claim_path(key)
            marker.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not self._claim_stale(marker):
                    return False
                # abandoned by a crashed writer: break it and re-claim
                # (safe under the entry lock)
                try:
                    os.unlink(marker)
                except FileNotFoundError:
                    pass
                try:
                    fd = os.open(
                        marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                    )
                except FileExistsError:
                    return False
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({"pid": os.getpid(), "time": time.time()}, fh)
            return True

    def release(self, key: str) -> None:
        """Drop the in-flight claim on ``key`` (idempotent)."""
        try:
            os.unlink(self.claim_path(key))
        except OSError:
            pass

    def claim_live(self, key: str) -> bool:
        """True while some live writer holds the in-flight claim on
        ``key`` (marker present and not stale) — i.e. waiting for the
        entry is still worthwhile."""
        marker = self.claim_path(key)
        return marker.exists() and not self._claim_stale(marker)

    def wait_for(
        self,
        key: str,
        *,
        timeout: float = CLAIM_STALE_AFTER,
        poll: float = 0.05,
    ) -> Optional[Dict[str, Any]]:
        """Block until another writer's entry for ``key`` lands.

        Returns the payload, or ``None`` when the claim vanished or went
        stale without producing an entry (the caller should
        :meth:`claim` and simulate itself) or ``timeout`` elapsed.
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.get(key)
            if payload is not None:
                return payload
            if not self.claim_live(key):
                # one final read: the writer may have put + released
                # between our get() and the marker check
                return self.get(key)
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll)

    # ------------------------------------------------- introspection

    def entries(self) -> Iterator[Tuple[Path, Optional[Dict[str, Any]]]]:
        """Every on-disk entry as ``(path, payload)``, payload ``None``
        for undecodable files (deterministic order)."""
        if not self.root.is_dir():
            return
        for fanout in sorted(self.root.iterdir()):
            if not fanout.is_dir():
                continue
            for path in sorted(fanout.glob("*.json")):
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        payload = json.load(fh)
                    if not isinstance(payload, dict):
                        payload = None
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    payload = None
                yield path, payload

    @staticmethod
    def _version_label(payload: Optional[Dict[str, Any]]) -> str:
        if payload is None:
            return "corrupt"
        engine = payload.get("engine", "?")
        symmetry = payload.get("symmetry", "?")
        return f"engine={engine}/symmetry={symmetry}"

    def _entry_stale(self, payload: Optional[Dict[str, Any]]) -> bool:
        """A prunable entry: corrupt, or written under a different
        engine version — or, for measurements (whose fingerprints fold
        the symmetry-recorder version), a different/unrecorded symmetry
        version.  Verify verdicts are keyed by engine version only."""
        if payload is None:
            return True
        if payload.get("engine") != ENGINE_VERSION:
            return True
        if payload.get("kind") == "measurement":
            return payload.get("symmetry") != SYMMETRY_VERSION
        return False

    def info(self) -> Dict[str, Any]:
        """Inventory: entry/kind counts, on-disk bytes, per-version
        breakdown, live in-flight claims, and how much ``prune`` would
        delete."""
        kinds: Dict[str, int] = {}
        versions: Dict[str, int] = {}
        total = stale = 0
        size = stale_size = 0
        for path, payload in self.entries():
            total += 1
            nbytes = path.stat().st_size
            size += nbytes
            kind = payload.get("kind", "corrupt") if payload else "corrupt"
            kinds[kind] = kinds.get(kind, 0) + 1
            label = self._version_label(payload)
            versions[label] = versions.get(label, 0) + 1
            if self._entry_stale(payload):
                stale += 1
                stale_size += nbytes
        claims = (
            sorted(self.root.glob("*/*.inflight")) if self.root.is_dir() else []
        )
        return {
            "root": str(self.root),
            "entries": total,
            "bytes": size,
            "kinds": dict(sorted(kinds.items())),
            "versions": dict(sorted(versions.items())),
            "current_version": (
                f"engine={ENGINE_VERSION}/symmetry={SYMMETRY_VERSION}"
            ),
            "stale_entries": stale,
            "stale_bytes": stale_size,
            "inflight_claims": len(claims),
        }

    def prune(self, *, dry_run: bool = False) -> Dict[str, Any]:
        """Delete stale-version (and corrupt) entries plus abandoned
        in-flight markers; ``dry_run`` only reports what would go."""
        removed = kept = freed = 0
        for path, payload in self.entries():
            if self._entry_stale(payload):
                removed += 1
                freed += path.stat().st_size
                if not dry_run:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
            else:
                kept += 1
        stale_claims = 0
        if self.root.is_dir():
            for marker in sorted(self.root.glob("*/*.inflight")):
                if self._claim_stale(marker):
                    stale_claims += 1
                    if not dry_run:
                        try:
                            os.unlink(marker)
                        except OSError:
                            pass
        return {
            "removed": removed,
            "kept": kept,
            "freed_bytes": freed,
            "stale_claims_removed": stale_claims,
            "dry_run": dry_run,
        }


def _as_cache(
    cache: Union[None, str, Path, SweepCache]
) -> Optional[SweepCache]:
    if cache is None or isinstance(cache, SweepCache):
        return cache
    return SweepCache(cache)


def _verification_key(
    prepared: PreparedApp, cost_model: CostModel
) -> Optional[str]:
    """Content-address of one equivalence check (None = uncacheable).

    The §4 verdict is a pure function of the two program texts, the rank
    count, and the cost model under one engine version — the same §3.2
    argument that makes measurement caching sound.
    """
    if prepared.app.externals is not None:
        return None
    payload = {
        "kind": "verify",
        "engine": ENGINE_VERSION,
        "original": prepared.app.source,
        "transformed": prepared.transform.unparse(),
        "nranks": prepared.app.nranks,
        "cost": cost_model.canonical_params(),
        "skip": sorted(prepared.transform.dead_arrays),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ------------------------------------------------------------ expansion


def expand_spec(
    spec: SweepSpec,
) -> Tuple[List[SweepPoint], List[_Verification]]:
    """Expand one spec into its cross-product of points.

    Each (nranks, tile, interchange, variant) combination is
    transformed exactly once through the variant registry
    (:mod:`repro.transform.pipeline`) and the resulting report is
    attached to every point it produced, so figures can read resolved
    tile sizes and schemes without re-deriving them; untransformed
    baseline points carry the first transforming variant's report (the
    classic "both variants see the prepush transform" contract).
    Transformed points also carry the pipeline's identity + canonical
    options, which :func:`~repro.interp.runner.job_fingerprint` folds
    into the cache key.  Verification requests (one per *transformed*
    variant, when ``spec.verify``) come back separately so
    :func:`run_sweep` can satisfy them from the cache or shard their
    simulations into the same pool batch; variants that leave a
    program unchanged (e.g. ``tile-only`` on an indirect workload)
    have nothing to verify and are measured as-is.
    """
    points: List[SweepPoint] = []
    verifications: List[_Verification] = []
    resolved_variants = [
        (variant_label(v), resolve_variant(v)) for v in spec.variants
    ]
    first_cost = spec.base_cost_model.scaled(spec.cpu_scales[0])

    for nr in spec.nranks:
        app = build_app(spec.app, nranks=nr, **dict(spec.app_kwargs))
        for tile in spec.tile_sizes:
            for inter in spec.interchange:
                options = TransformOptions(
                    tile_size=tile, interchange=inter
                )
                prepared: Dict[str, Optional[PreparedApp]] = {}
                fallback: Optional[TransformReport] = None
                for label, pipeline in resolved_variants:
                    if pipeline.empty:
                        prepared[label] = None
                        continue
                    pa = PreparedApp(
                        app,
                        options=options,
                        variant=pipeline,
                        verify=False,
                        cost_model=first_cost,
                        # nothing in the sweep reads intermediate
                        # texts; skip one unparse per pass per point
                        snapshots=False,
                    )
                    prepared[label] = pa
                    if fallback is None:
                        fallback = pa.transform
                    if spec.verify and pa.transform.changed:
                        verifications.append(
                            _Verification(
                                prepared=pa,
                                original_job=ClusterJob(
                                    program=app.source,
                                    nranks=nr,
                                    network=IDEAL,
                                    cost_model=first_cost,
                                    externals=app.externals,
                                    label=f"{app.name}/verify-original",
                                ),
                                transformed_job=ClusterJob(
                                    program=pa.transform.source,
                                    nranks=nr,
                                    network=IDEAL,
                                    cost_model=first_cost,
                                    externals=app.externals,
                                    label=f"{app.name}/verify-{label}",
                                ),
                                key=_verification_key(pa, first_cost),
                            )
                        )
                for scale in spec.cpu_scales:
                    cost = spec.base_cost_model.scaled(scale)
                    for label, pipeline in resolved_variants:
                        pa = prepared[label]
                        program: Union[str, SourceFile]
                        if pa is None:
                            program = app.source
                            transform = fallback
                            variant_id = None
                        else:
                            program = pa.transform.source
                            transform = pa.transform
                            variant_id = variant_identity(
                                pipeline, options
                            )
                        for network in spec.networks:
                            model = resolve_model(network)
                            for coll in spec.collectives:
                                points.append(
                                    SweepPoint(
                                        axes={
                                            "spec": spec.name,
                                            "app": app.name,
                                            "variant": label,
                                            "nranks": nr,
                                            "tile_size": tile,
                                            "interchange": inter,
                                            "network": model.name,
                                            "collective": collective_label(
                                                coll
                                            ),
                                            "cpu_scale": scale,
                                        },
                                        program=program,
                                        nranks=nr,
                                        network=model,
                                        collective=coll,
                                        cost_model=cost,
                                        detect_races=spec.detect_races,
                                        label=f"{app.name}/{label}",
                                        externals=app.externals,
                                        transform=transform,
                                        variant_id=variant_id,
                                        engine_mode=spec.engine_mode
                                        or "auto",
                                    )
                                )
    return points, verifications


# ------------------------------------------------------------ execution


@dataclass
class SweepRun:
    """One executed (or cache-served) sweep point."""

    axes: Dict[str, Any]
    measurement: Measurement
    cached: bool
    fingerprint: Optional[str]
    transform: Optional[TransformReport] = None


@dataclass
class SweepStats:
    """How one :func:`run_sweep` call was satisfied."""

    points: int = 0
    simulated: int = 0  # measurement simulations actually run
    verify_simulated: int = 0  # verification simulations actually run
    cache_hits: int = 0
    cache_misses: int = 0
    deduplicated: int = 0  # points served by a sibling's fingerprint
    uncacheable: int = 0  # points with externals (never cached)
    verify_checks: int = 0
    verify_hits: int = 0
    mode: str = "none"  # "pool" | "serial" | "none" (no jobs needed)
    processes: int = 1

    @property
    def total_simulated(self) -> int:
        """Every simulation this invocation ran (zero on a warm cache)."""
        return self.simulated + self.verify_simulated

    def summary(self) -> str:
        return (
            f"{self.points} points: {self.simulated} simulated + "
            f"{self.verify_simulated} verify sims ({self.mode}), "
            f"{self.cache_hits} cache hits, "
            f"{self.deduplicated} deduplicated; verify "
            f"{self.verify_hits}/{self.verify_checks} cached"
        )


@dataclass
class SweepResult:
    """All measurements of one engine invocation, addressable by axes."""

    runs: List[SweepRun]
    stats: SweepStats
    specs: List[SweepSpec]

    def select(self, **axes: Any) -> List[SweepRun]:
        """Every run whose axes match all given ``key=value`` pairs."""
        return [
            r
            for r in self.runs
            if all(r.axes.get(k) == v for k, v in axes.items())
        ]

    def get(self, **axes: Any) -> SweepRun:
        """The unique run matching ``axes`` (raises otherwise)."""
        matches = self.select(**axes)
        if len(matches) != 1:
            raise ReproError(
                f"{len(matches)} sweep runs match {axes!r} "
                f"(of {len(self.runs)})"
            )
        return matches[0]

    def measurement(self, **axes: Any) -> Measurement:
        return self.get(**axes).measurement

    def to_json(self) -> Dict[str, Any]:
        """JSON artifact: specs, execution stats, and every measurement."""
        return {
            "engine": ENGINE_VERSION,
            "specs": [s.to_dict() for s in self.specs],
            "stats": vars(self.stats).copy(),
            "runs": [
                {
                    "axes": r.axes,
                    "cached": r.cached,
                    "fingerprint": r.fingerprint,
                    "measurement": r.measurement.to_dict(),
                }
                for r in self.runs
            ],
        }


def _execute_sweep(
    specs: Union[SweepSpec, Sequence[SweepSpec]],
    *,
    jobs: Optional[int] = None,
    cache: Union[None, str, Path, SweepCache] = None,
    executor=None,
) -> SweepResult:
    """Execute one or more sweep specs through the shared engine.

    ``jobs`` > 1 shards the simulations over a
    :func:`~repro.interp.runner.run_many` process pool (verification
    runs ride in the same batch); a live ``executor`` (a
    :class:`repro.api.Session`'s persistent pool) takes precedence and
    is left running afterwards.  ``cache`` (a directory path or a
    :class:`SweepCache`) serves previously-simulated points without
    re-simulating; ``None`` disables caching entirely.  Points whose
    fingerprints coincide are simulated once per batch regardless of
    caching.

    This is the engine behind :meth:`repro.api.Session.sweep`; the
    kwargs-style :func:`run_sweep` is a deprecation shim over it.
    """
    if isinstance(specs, SweepSpec):
        specs = [specs]
    specs = list(specs)
    cache = _as_cache(cache)

    points: List[SweepPoint] = []
    verifications: List[_Verification] = []
    for spec in specs:
        pts, vers = expand_spec(spec)
        points.extend(pts)
        verifications.extend(vers)

    stats = SweepStats(points=len(points))

    # -- fingerprint every point (externals => uncacheable)
    for point in points:
        if point.externals is None:
            point.fingerprint = job_fingerprint(point.job())
        else:
            point.fingerprint = None
            stats.uncacheable += 1

    # -- satisfy what we can from the cache
    served: Dict[str, Measurement] = {}
    pending: Dict[str, SweepPoint] = {}  # fingerprint -> representative
    uncached_points: List[SweepPoint] = []
    for point in points:
        fp = point.fingerprint
        if fp is None:
            uncached_points.append(point)
            continue
        if fp in served or fp in pending:
            continue
        payload = cache.get(fp) if cache is not None else None
        if payload is not None and payload.get("kind") == "measurement":
            try:
                served[fp] = Measurement.from_dict(payload["measurement"])
                cache.stats.hits += 1
                continue
            except (TypeError, ValueError, KeyError):
                cache.stats.corrupt += 1
        if cache is not None:
            cache.stats.misses += 1
        pending[fp] = point

    # -- verification: cache verdicts, simulate the rest in the batch
    stats.verify_checks = len(verifications)
    pending_verifications: List[_Verification] = []
    for ver in verifications:
        payload = (
            cache.get(ver.key)
            if cache is not None and ver.key is not None
            else None
        )
        if (
            payload is not None
            and payload.get("kind") == "verify"
            and payload.get("equivalent") is True
        ):
            ver.prepared.equivalent = True
            stats.verify_hits += 1
            cache.stats.verify_hits += 1
        else:
            if cache is not None and ver.key is not None:
                cache.stats.verify_misses += 1
            pending_verifications.append(ver)

    # -- one sharded batch: measurement misses, uncacheable points,
    #    then verification pairs (submission order is deterministic)
    batch_jobs: List[ClusterJob] = [
        replace(pending[fp].job(), label="") for fp in pending
    ]
    batch_jobs.extend(p.job() for p in uncached_points)
    stats.simulated = len(batch_jobs)
    for ver in pending_verifications:
        batch_jobs.append(ver.original_job)
        batch_jobs.append(ver.transformed_job)
    stats.verify_simulated = 2 * len(pending_verifications)

    if batch_jobs:
        batch = run_many(batch_jobs, processes=jobs, executor=executor)
        stats.mode = batch.mode
        stats.processes = batch.processes
    else:
        batch = []

    # -- fold the batch back
    cursor = 0
    for fp, point in pending.items():
        run = batch[cursor]
        cursor += 1
        m = measurement_from_run(
            run, network=point.network, collective=point.collective
        )
        served[fp] = m
        if cache is not None:
            cache.put(
                fp,
                {
                    "kind": "measurement",
                    "inputs": dict(point.axes),
                    "measurement": m.to_dict(),
                },
            )
    uncached_measurements: List[Measurement] = []
    for point in uncached_points:
        run = batch[cursor]
        cursor += 1
        uncached_measurements.append(
            measurement_from_run(
                run,
                network=point.network,
                label=point.label,
                collective=point.collective,
            )
        )
    for ver in pending_verifications:
        run_a = batch[cursor]
        run_b = batch[cursor + 1]
        cursor += 2
        ver.prepared.check_equivalence(run_a, run_b)  # raises on mismatch
        if cache is not None and ver.key is not None:
            cache.put(
                ver.key,
                {
                    "kind": "verify",
                    "equivalent": True,
                    "app": ver.prepared.app.name,
                    "nranks": ver.prepared.app.nranks,
                },
            )

    # -- assemble results in point order
    runs: List[SweepRun] = []
    uncached_iter = iter(uncached_measurements)
    hit_fps = {
        fp for fp in served if fp not in pending
    }  # served straight from cache
    seen_fp: set = set()
    for point in points:
        fp = point.fingerprint
        if fp is None:
            m = next(uncached_iter)
            cached = False
        else:
            m = replace(served[fp], label=point.label)
            cached = fp in hit_fps
            if cached:
                stats.cache_hits += 1
            elif fp in seen_fp:
                stats.deduplicated += 1
            else:
                stats.cache_misses += 1
            seen_fp.add(fp)
        runs.append(
            SweepRun(
                axes=point.axes,
                measurement=m,
                cached=cached,
                fingerprint=fp,
                transform=point.transform,
            )
        )
    return SweepResult(runs=runs, stats=stats, specs=specs)


def run_sweep(
    specs: Union[SweepSpec, Sequence[SweepSpec]],
    *,
    jobs: Optional[int] = None,
    cache: Union[None, str, Path, SweepCache] = None,
) -> SweepResult:
    """Deprecated kwargs-style entry; use
    :meth:`repro.api.Session.sweep` on a session constructed with
    ``cache_dir=``/``jobs=``.

    The shim builds a one-shot :class:`repro.api.Session` (so any pool
    it creates is torn down again — the whole point of a real Session is
    to keep that pool alive between calls).
    """
    warnings.warn(
        "run_sweep(...) is deprecated; use "
        "repro.Session(cache_dir=..., jobs=...).sweep(specs)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api.session import Session

    session = Session(cache_dir=cache, jobs=jobs)
    try:
        return session.sweep(specs)
    finally:
        session.close()
