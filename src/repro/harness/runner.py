"""Experiment execution: run original/transformed pairs over network models.

:class:`Measurement` folds one simulation into a timing breakdown;
:class:`PreparedApp` transforms a workload once, checks equivalence
(an experiment on wrong data is worthless), and measures both variants
on one network.  These are the building blocks every figure/ablation
uses.  The kwargs-style :func:`measure` / :func:`run_pair` entry points
are deprecation shims over the :class:`repro.api.Session` façade
(:meth:`~repro.api.Session.measure` / :meth:`~repro.api.Session.compare`).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..apps.base import AppSpec
from ..errors import ReproError
from ..interp.runner import ClusterJob, ClusterRun, execute_job
from ..lang.ast_nodes import SourceFile
from ..runtime.collectives import CollectiveSpec, describe_suite, resolve_suite
from ..runtime.costmodel import DEFAULT_COST_MODEL, CostModel
from ..runtime.network import NetworkModel, resolve_model
from ..transform.options import TransformOptions, fold_legacy_options
from ..transform.pipeline import Pipeline, resolve_variant, variant_label
from ..transform.prepush import TransformReport
from ..verify import compare_runs


@dataclass
class Measurement:
    """Timing of one program on one network.

    The communication breakdown (``wait_time``/``mpi_overhead``) is taken
    from the single worst-communication rank — the rank maximizing
    ``wait + mpi overhead`` — so ``comm_cost`` is a figure one real rank
    actually paid, never a mix of maxima from different ranks.
    ``compute_time`` remains an independent per-rank maximum (the compute
    critical path).
    """

    label: str
    network: str
    time: float  # makespan (max rank finish time)
    compute_time: float  # max per-rank pure compute
    wait_time: float  # blocked-in-wait of the worst-comm-cost rank
    mpi_overhead: float  # MPI CPU of that same rank
    messages: int  # total messages sent across ranks
    bytes_sent: int
    unexpected: int  # messages that arrived before their recv was posted
    warnings: List[str]
    collective: str = ""  # resolved collective-algorithm suite

    @property
    def comm_cost(self) -> float:
        """Per-rank non-compute time (wait + MPI CPU), worst rank."""
        return self.wait_time + self.mpi_overhead

    def to_dict(self) -> Dict:
        """JSON-safe dict (the sweep cache's on-disk payload).

        Every field is a scalar, string, or list of strings; floats
        round-trip bit-exactly through :mod:`json`, which is what makes
        warm-cache tables reproduce the cold run bit-for-bit.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "Measurement":
        """Inverse of :meth:`to_dict`.  Raises on missing/extra keys so a
        corrupted or stale cache entry is detected, not half-loaded."""
        names = {f.name for f in dataclasses.fields(cls)}
        if set(data) != names:
            raise ValueError(
                f"measurement dict keys {sorted(data)} != fields "
                f"{sorted(names)}"
            )
        return cls(**data)


def measurement_from_run(
    run: ClusterRun,
    *,
    network: NetworkModel,
    label: str = "",
    collective: CollectiveSpec = None,
) -> Measurement:
    """Fold one completed :class:`~repro.interp.runner.ClusterRun` into a
    :class:`Measurement` (shared by :func:`measure` and the sweep engine,
    which simulates through :func:`~repro.interp.runner.run_many`)."""
    stats = run.result.stats
    # the worst-rank communication figure must come from ONE rank: taking
    # independent maxima of wait and overhead would overstate comm_cost
    # whenever different ranks hold the two maxima
    worst = max(
        stats,
        key=lambda s: s.wait_time + s.mpi_overhead_time,
        default=None,
    )
    return Measurement(
        label=label,
        network=network.name,
        time=run.time,
        compute_time=max((s.compute_time for s in stats), default=0.0),
        wait_time=worst.wait_time if worst else 0.0,
        mpi_overhead=worst.mpi_overhead_time if worst else 0.0,
        messages=sum(s.messages_sent for s in stats),
        bytes_sent=sum(s.bytes_sent for s in stats),
        unexpected=sum(s.unexpected_messages for s in stats),
        warnings=list(run.warnings),
        collective=describe_suite(resolve_suite(collective)),
    )


def _measure_impl(
    program: Union[str, SourceFile],
    nranks: int,
    network: Union[str, NetworkModel],
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    externals=None,
    label: str = "",
    collective: CollectiveSpec = None,
) -> Measurement:
    """Simulate once and fold the per-rank stats into a measurement
    (the shared core of :meth:`repro.api.Session.measure` and the
    deprecated :func:`measure` shim)."""
    network = resolve_model(network)
    run = execute_job(
        ClusterJob(
            program=program,
            nranks=nranks,
            network=network,
            cost_model=cost_model,
            externals=externals,
            collective=collective,
        )
    )
    return measurement_from_run(
        run, network=network, label=label, collective=collective
    )


def measure(
    program: Union[str, SourceFile],
    nranks: int,
    network: Union[str, NetworkModel],
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    externals=None,
    label: str = "",
    collective: CollectiveSpec = None,
) -> Measurement:
    """Deprecated kwargs-style entry; use
    :meth:`repro.api.Session.measure` with a :class:`repro.api.Job`."""
    warnings.warn(
        "measure(...) is deprecated; use "
        "repro.Session().measure(repro.Job(program=..., nranks=..., ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import Job
    from ..api.session import default_session

    return default_session().measure(
        Job(
            program=program,
            nranks=nranks,
            network=network,
            cost_model=cost_model,
            externals=externals,
            label=label,
            collective=collective,
        )
    )


@dataclass
class PairResult:
    """Original vs. pre-pushed measurements of one workload on one network."""

    app: str
    network: str
    original: Measurement
    prepush: Measurement
    transform: TransformReport
    equivalent: bool

    @property
    def speedup(self) -> float:
        if self.prepush.time <= 0:
            # a degenerate zero-work run is "no change", not an infinite
            # win; only a real original time over a zero prepush time is
            # unboundedly better
            return 1.0 if self.original.time <= 0 else float("inf")
        return self.original.time / self.prepush.time

    @property
    def overhead_reduction(self) -> float:
        """Fraction of the original communication cost eliminated."""
        base = self.original.comm_cost
        if base <= 0:
            return 0.0
        return 1.0 - self.prepush.comm_cost / base


class PreparedApp:
    """A workload transformed once, reusable across network sweeps.

    Transforming and (especially) equivalence-checking are not free;
    sweeps over network parameters reuse the same pair of ASTs.

    The transformation runs through the variant registry
    (:mod:`repro.transform.pipeline`): ``variant`` names a registered
    pipeline (default ``"prepush"``, bit-identical to the legacy
    monolithic path) and ``options`` carries the knobs as one frozen
    :class:`~repro.transform.options.TransformOptions`.  The legacy
    ``tile_size=``/``interchange=`` keywords still work and are folded
    into an options object; passing both forms raises.  ``.transform``
    is a :class:`~repro.transform.pipeline.PipelineReport`, so the
    per-pass chain and intermediate snapshots are inspectable on every
    prepared workload (``snapshots=False`` skips capturing the
    intermediate texts — the sweep engine does this, since it prepares
    one app per axis combination and reads none of them).

    Variants marked ``partial`` (e.g. ``tile-only`` on an indirect
    workload) may legitimately leave the program unchanged and are
    measured as-is; for full-rewrite pipelines an unchanged program is
    an error.  ``allow_unchanged`` overrides that default (``None`` =
    follow ``pipeline.partial``).  A program left *entirely* unchanged
    because sites were rejected raises regardless; rejections alongside
    at least one successful rewrite are reported, not raised — the
    paper's semi-automatic convention, matching the legacy monolith.
    """

    def __init__(
        self,
        app: AppSpec,
        *,
        tile_size: Union[None, int, str] = None,
        interchange: Optional[str] = None,
        verify: bool = True,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        options: Optional[TransformOptions] = None,
        variant: Union[str, Pipeline] = "prepush",
        allow_unchanged: Optional[bool] = None,
        snapshots: bool = True,
    ) -> None:
        options = fold_legacy_options(
            options, tile_size, interchange, exc=ReproError
        )
        self.app = app
        self.cost_model = cost_model
        self.options = options
        self.variant = resolve_variant(variant)
        self.transform = self.variant.run(
            app.source, options, oracle=app.oracle, snapshots=snapshots
        )
        if allow_unchanged is None:
            allow_unchanged = self.variant.partial or self.variant.empty
        if not self.transform.changed:
            # an unchanged program is acceptable only when the variant
            # *intentionally* left it alone (a pipeline registered as
            # partial, or the empty baseline).  A site the planner
            # REJECTED is a failure whatever the variant — silently
            # measuring the original would report a fake speedup of 1.0
            if self.transform.rejections or not allow_unchanged:
                raise ReproError(
                    f"workload {app.name!r} was not transformed by "
                    f"variant {variant_label(self.variant)!r}:\n  "
                    + "\n  ".join(
                        r.reason for r in self.transform.rejections
                    )
                )
        self.equivalent = True
        # verify whenever the program CHANGED — a site rewrite, or any
        # other pass that touched the AST (§4 applies to both)
        if verify and self.transform.changed:
            self._verify()

    def _verify(self) -> None:
        from ..runtime.network import IDEAL

        a = execute_job(
            ClusterJob(
                program=self.app.source,
                nranks=self.app.nranks,
                network=IDEAL,
                cost_model=self.cost_model,
                externals=self.app.externals,
            )
        )
        b = execute_job(
            ClusterJob(
                program=self.transform.source,
                nranks=self.app.nranks,
                network=IDEAL,
                cost_model=self.cost_model,
                externals=self.app.externals,
            )
        )
        self.check_equivalence(a, b)

    def check_equivalence(self, original: ClusterRun, transformed: ClusterRun) -> None:
        """Compare two completed runs of the pair and record the verdict.

        Split out of :meth:`_verify` so the sweep engine can supply runs
        it executed itself (possibly through the process pool) instead
        of re-simulating here.  Raises on mismatch, like construction
        with ``verify=True`` does.
        """
        report = compare_runs(
            original, transformed, skip=self.transform.dead_arrays
        )
        self.equivalent = report.equivalent
        if not report.equivalent:
            raise ReproError(
                f"transformed {self.app.name!r} is NOT equivalent:\n  "
                + "\n  ".join(report.mismatches[:5])
            )

    def run_on(
        self,
        network: Union[str, NetworkModel],
        collective: CollectiveSpec = None,
    ) -> PairResult:
        """Measure both variants on one network model (or scenario name).

        ``collective`` selects the collective algorithms both variants
        run under (the prepush variant has replaced its alltoall with
        point-to-point traffic, so the knob mostly moves the original).
        """
        network = resolve_model(network)
        original = _measure_impl(
            self.app.source,
            self.app.nranks,
            network,
            cost_model=self.cost_model,
            externals=self.app.externals,
            label=f"{self.app.name}/original",
            collective=collective,
        )
        prepush = _measure_impl(
            self.transform.source,
            self.app.nranks,
            network,
            cost_model=self.cost_model,
            externals=self.app.externals,
            label=f"{self.app.name}/prepush",
            collective=collective,
        )
        return PairResult(
            app=self.app.name,
            network=network.name,
            original=original,
            prepush=prepush,
            transform=self.transform,
            equivalent=self.equivalent,
        )


def run_pair(
    app: AppSpec,
    network: Union[str, NetworkModel],
    *,
    tile_size: Union[int, str] = "auto",
    interchange: str = "auto",
    verify: bool = True,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    collective: CollectiveSpec = None,
) -> PairResult:
    """Deprecated kwargs-style entry; use
    :meth:`repro.api.Session.compare` with a
    :class:`repro.api.CompareRequest`."""
    warnings.warn(
        "run_pair(...) is deprecated; use "
        "repro.Session().compare(repro.CompareRequest(app=..., ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import CompareRequest
    from ..api.session import default_session

    return default_session().compare(
        CompareRequest(
            app=app,
            tile_size=tile_size,
            interchange=interchange,
            verify=verify,
            network=network,
            collective=collective,
            cost_model=cost_model,
        )
    )
