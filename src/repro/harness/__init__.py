"""Experiment harness: measurement runners, figure/ablation generators,
and plain-text result tables.
"""

from .figures import (  # noqa: F401
    ablation_collectives,
    ablation_network,
    ablation_nodeloop,
    ablation_scaling,
    ablation_scenarios,
    ablation_tile_size,
    ablation_variants,
    ablation_workloads,
    figure1,
)
from .report import Table, bar_chart, format_seconds  # noqa: F401
from .runner import (  # noqa: F401
    Measurement,
    PairResult,
    PreparedApp,
    measure,
    measurement_from_run,
    run_pair,
)
from .sweep import (  # noqa: F401
    CacheStats,
    SweepCache,
    SweepResult,
    SweepSpec,
    collective_label,
    expand_spec,
    run_sweep,
)

__all__ = [
    "figure1",
    "ablation_tile_size",
    "ablation_scaling",
    "ablation_network",
    "ablation_workloads",
    "ablation_nodeloop",
    "ablation_scenarios",
    "ablation_collectives",
    "ablation_variants",
    "Table",
    "bar_chart",
    "format_seconds",
    "Measurement",
    "PairResult",
    "PreparedApp",
    "measure",
    "measurement_from_run",
    "run_pair",
    "CacheStats",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
    "collective_label",
    "expand_spec",
    "run_sweep",
]
