"""Node-loop-outermost kernel — the §3.5 interchange case (Ablation E).

When the loop traversing the send array's *last* (partitioned) dimension
is outermost, tiling it makes every tile's traffic target a single
destination rank, congesting its NIC.  The paper's remedy is to
interchange the node loop inward when dependences allow; when they do
not, the congested schedule is still correct, just slower.

This kernel writes ``as(ix, iy)`` under ``do iy (outer) / do ix
(inner)`` — ``iy`` drives the last dimension.  The transformation with
``interchange="auto"`` swaps the loops and emits scheme A; with
``interchange="never"`` it keeps the order and emits the congested
scheme B, letting Ablation E measure exactly the cost §3.5 warns about.
"""

from __future__ import annotations

from .base import AppSpec, mix_stages, require_divisible, stage_decls


def nodeloop_kernel(
    n: int = 64,
    nranks: int = 8,
    steps: int = 2,
    stages: int = 4,
) -> AppSpec:
    """Build the node-loop-outermost workload (``n`` x ``n``)."""
    require_divisible(n, nranks, "nodeloop: matrix order vs ranks")
    body = mix_stages(
        "ix * 43 + iy * 71 + it * 5 + mynode() * 37",
        stages,
        result="as(ix, iy)",
        indent="        ",
    )
    source = f"""
program nodeloop
  integer, parameter :: n = {n}, np = {nranks}, nt = {steps}
  integer :: as(1:n, 1:n)
  integer :: ar(1:n, 1:n)
  integer :: it, ix, iy, ierr
{stage_decls(stages)}
  do it = 1, nt
    do iy = 1, n
      do ix = 1, n
{body}      enddo
    enddo
    call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
  enddo
end program nodeloop
"""
    return AppSpec(
        name="nodeloop",
        description=(
            "node loop outermost: interchange='auto' yields scheme A, "
            "interchange='never' the congested scheme B (§3.5, Ablation E)"
        ),
        source=source,
        nranks=nranks,
        kind="direct",
        scheme="A",  # with the default auto-interchange
        check_arrays=("ar", "as"),
        params={"n": n, "steps": steps, "stages": stages},
    )
