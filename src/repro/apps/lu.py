"""LU-factorization panel redistribution (§2 lists LU as a target).

Block LU on a cluster computes a panel of column updates locally, then
redistributes the panel across ranks before the trailing update.  The
kernel computes a rank-1-style update ``as(i, j) = piv(i) * fac(j)``
variant (integer, branch-free) into a panel whose columns are the
partitioned dimension, then exchanges it.

The arrays use *zero-based* bounds (``0 : n - 1``), exercising the
non-default lower-bound paths in layout resolution, section generation
and sequence association.
"""

from __future__ import annotations

from .base import AppSpec, require_divisible


def lu_panel(
    n: int = 48,
    nranks: int = 8,
    steps: int = 2,
) -> AppSpec:
    """Build the LU panel workload (``n`` x ``n`` panel, 0-based bounds)."""
    require_divisible(n, nranks, "lu: panel order vs ranks")
    source = f"""
program lupanel
  integer, parameter :: n = {n}, np = {nranks}, nt = {steps}
  integer :: piv(0:n - 1)
  integer :: fac(0:n - 1)
  integer :: as(0:n - 1, 0:n - 1)
  integer :: ar(0:n - 1, 0:n - 1)
  integer :: it, ix, iy, ierr

  do ix = 0, n - 1
    piv(ix) = mod(ix * 31 + mynode() * 7 + 3, 509)
    fac(ix) = mod(ix * 37 + mynode() * 11 + 5, 521)
  enddo

  do it = 1, nt
    do ix = 0, n - 1
      do iy = 0, n - 1
        as(ix, iy) = mod(piv(ix) * fac(iy) + it * 101, 262144)
      enddo
    enddo
    call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
  enddo
end program lupanel
"""
    return AppSpec(
        name="lu",
        description=(
            "LU panel redistribution: rank-1 panel update with 0-based "
            "array bounds (direct pattern, scheme A)"
        ),
        source=source,
        nranks=nranks,
        kind="direct",
        scheme="A",
        check_arrays=("ar", "as", "piv", "fac"),
        params={"n": n, "steps": steps},
    )
