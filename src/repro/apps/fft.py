"""Multi-dimensional FFT transpose step (one of §2's motivating workloads).

A distributed 2-D FFT computes the first-dimension butterflies locally,
then *transposes* the matrix across ranks with ``MPI_ALLTOALL`` before
the second-dimension pass.  The butterfly arithmetic is modeled by the
integer mixing chain (the transformation cares about the loop/array
structure, not the twiddle factors); the consumer pass after the
exchange reads the received array, so correctness of the early receives
is actually load-bearing.

The computation nest is ``do ix (rows) / do iy (columns)`` with the node
loop (``iy``, the partitioned dimension) innermost — scheme A: every tile
finalizes a slice of *every* partition, producing the paper's Figure 4
pairwise exchange per tile.
"""

from __future__ import annotations

from .base import AppSpec, mix_stages, require_divisible, stage_decls


def fft_transpose(
    n: int = 64,
    nranks: int = 8,
    steps: int = 3,
    stages: int = 4,
) -> AppSpec:
    """Build the FFT-transpose workload (``n`` x ``n`` per rank)."""
    require_divisible(n, nranks, "fft: matrix order vs ranks")
    body = mix_stages(
        "ix * 23 + iy * 101 + it * 7 + mynode() * 53",
        stages,
        result="as(ix, iy)",
        indent="        ",
    )
    source = f"""
program ffttranspose
  integer, parameter :: n = {n}, np = {nranks}, nt = {steps}
  integer :: as(1:n, 1:n)
  integer :: ar(1:n, 1:n)
  integer :: u(1:n, 1:n)
  integer :: it, ix, iy, ierr
{stage_decls(stages)}
  do it = 1, nt
    do ix = 1, n
      do iy = 1, n
{body}      enddo
    enddo
    call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
    do ix = 1, n
      do iy = 1, n
        u(ix, iy) = mod(ar(iy, ix) * 3 + u(ix, iy) + it, 32749)
      enddo
    enddo
  enddo
end program ffttranspose
"""
    return AppSpec(
        name="fft",
        description=(
            "2-D FFT transpose step: local butterflies then alltoall "
            "transpose (direct pattern, scheme A / Figure 4)"
        ),
        source=source,
        nranks=nranks,
        kind="direct",
        scheme="A",
        check_arrays=("ar", "u", "as"),
        params={"n": n, "steps": steps, "stages": stages},
    )
