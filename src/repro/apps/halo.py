"""Allgather halo exchange — a boundary-gather collective workload.

Each rank owns a strip of a 1-D field and publishes its two edge cells
with ``MPI_ALLGATHER`` every step; the update of each strip's own edges
reads the *neighbors'* published edges out of the gathered halo table.
(A production code would use neighbor point-to-point; the gather-all
formulation is the classic convenience pattern — tiny per-rank blocks,
``P``-proportional collective volume — and is exactly the shape where
allgather algorithm choice shows: a ring pipelines the blocks, the
linear exchange is ``P^2`` messages.)

Interior cells run the integer mixing chain; edge updates consume the
gathered values, so the collective's data correctness is load-bearing,
and seeds mix ``mynode()`` so every rank's strip differs.

No alltoall site: registered for the collective ablation axis
(``kind="collective"``), not for the pre-push transform.
"""

from __future__ import annotations

from .base import AppSpec, mix_stages, stage_decls


def halo_allgather(
    n: int = 256,
    nranks: int = 8,
    steps: int = 6,
    stages: int = 4,
) -> AppSpec:
    """Build the halo-exchange workload (``n``-cell strip per rank)."""
    if n < 4:
        from ..errors import ReproError

        raise ReproError(f"halo: strip length {n} must be >= 4")
    body = mix_stages(
        "u(i) * 7 + i * 13 + it * 5 + mynode() * 37",
        stages,
        result="u(i)",
        indent="      ",
    )
    source = f"""
program halogather
  integer, parameter :: n = {n}, np = {nranks}, nt = {steps}
  integer :: u(1:n)
  integer :: edges(1:2)
  integer :: halo(1:2 * np)
  integer :: it, i, left, right, ierr
{stage_decls(stages)}
  do i = 1, n
    u(i) = mod(i * 13 + mynode() * 29 + 5, 2039)
  enddo
  left = mod(mynode() + np - 1, np)
  right = mod(mynode() + 1, np)
  do it = 1, nt
    edges(1) = u(1)
    edges(2) = u(n)
    call mpi_allgather(edges, 2, halo, ierr)
    do i = 2, n - 1
{body}    enddo
    u(1) = mod(u(1) * 3 + halo(left * 2 + 2) + it, 32749)
    u(n) = mod(u(n) * 3 + halo(right * 2 + 1) + it, 32749)
  enddo
end program halogather
"""
    return AppSpec(
        name="halo",
        description=(
            "1-D halo exchange via allgather: each step publishes strip "
            "edges and consumes the neighbors' (tiny blocks, "
            "P-proportional collective)"
        ),
        source=source,
        nranks=nranks,
        kind="collective",
        scheme="-",
        check_arrays=("u", "halo"),
        params={"n": n, "steps": steps, "stages": stages},
    )
