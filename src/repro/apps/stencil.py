"""Finite-difference / ADI transpose sweep (another §2 workload).

Alternating-Direction-Implicit solvers sweep one dimension locally,
transpose with ``MPI_ALLTOALL``, then sweep the other.  Here the local
sweep applies an integer 5-point stencil from a ghost-padded state array
``u`` into the send array, the exchange transposes, and the state update
consumes the received values — so each time step's correctness depends
on the previous step's communication having delivered the right data.

Unlike the hash kernels, the computation nest *reads another array*
(``u``), exercising the analysis path where the RHS contains array
references that are not the indirect pattern's temporary.
"""

from __future__ import annotations

from .base import AppSpec, require_divisible


def adi_sweep(
    n: int = 64,
    nranks: int = 8,
    steps: int = 3,
) -> AppSpec:
    """Build the ADI-style stencil workload on an ``n`` x ``n`` grid."""
    require_divisible(n, nranks, "stencil: grid order vs ranks")
    source = f"""
program adisweep
  integer, parameter :: n = {n}, np = {nranks}, nt = {steps}
  integer :: u(0:n + 1, 0:n + 1)
  integer :: as(1:n, 1:n)
  integer :: ar(1:n, 1:n)
  integer :: it, ix, iy, ierr

  do ix = 0, n + 1
    do iy = 0, n + 1
      u(ix, iy) = mod(ix * ix * 7 + iy * iy * 13 + ix * iy * 3 + mynode() * (ix + 5) * 17, 1024)
    enddo
  enddo

  do it = 1, nt
    do ix = 1, n
      do iy = 1, n
        as(ix, iy) = u(ix - 1, iy) + u(ix + 1, iy) + u(ix, iy - 1) + u(ix, iy + 1) - 4 * u(ix, iy)
      enddo
    enddo
    call mpi_alltoall(as, n * n / np, 0, ar, n * n / np, 0, 0, ierr)
    do ix = 1, n
      do iy = 1, n
        u(ix, iy) = mod(u(ix, iy) + ar(iy, ix) + it, 65536)
      enddo
    enddo
  enddo
end program adisweep
"""
    return AppSpec(
        name="stencil",
        description=(
            "ADI finite-difference sweep: 5-point stencil, alltoall "
            "transpose, state update from received values (direct, scheme A)"
        ),
        source=source,
        nranks=nranks,
        kind="direct",
        scheme="A",
        check_arrays=("ar", "u", "as"),
        params={"n": n, "steps": steps},
    )
