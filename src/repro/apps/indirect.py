"""The paper's §4 evaluation program — the indirect compute-copy pattern.

An outer loop calls a producer ``P`` that fills a temporary ``At``, then a
copy loop ``ℓcp`` scatters ``At`` into a slab of the 3-D send array ``As``
(Figure 3(a)'s coordinate-decomposed copy).  The transformation removes
the copy loop and sends each ``At`` slab straight to its destination
(Figure 3(b)).

Two variants:

* :func:`indirect_kernel` — the producer is an in-language subroutine, so
  the interprocedural analysis can *see* that it writes ``At`` (fully
  automatic path);
* :func:`indirect_external_kernel` — the producer is a registered
  external (compiled library, per the paper), so the detector must ask
  the oracle whether ``P`` mutates its argument — the semi-automatic path
  of §3.1.
"""

from __future__ import annotations

import numpy as np

from ..analysis.callinfo import DictOracle
from ..interp.procedures import ExternalRegistry, make_producer
from .base import AppSpec, mix_stages, require_divisible, stage_decls


def _source(n: int, nranks: int, stages: int, with_subroutine: bool) -> str:
    producer_body = mix_stages(
        "i * 13 + step * 7 + mynode() * 31",
        stages,
        result="buf(i)",
        indent="    ",
    )
    sub = (
        f"""
subroutine producer(step, buf)
  integer :: step
  integer :: buf(1:{n * n})
  integer :: i
{stage_decls(stages)}
  do i = 1, {n * n}
{producer_body}  enddo
end subroutine producer
"""
        if with_subroutine
        else ""
    )
    return f"""
program indirectk
  integer, parameter :: n = {n}, np = {nranks}
  integer :: as(1:n, 1:n, 1:n)
  integer :: ar(1:n, 1:n, 1:n)
  integer :: at(1:n * n)
  integer :: iy, ix, tx, ty, ierr

  do iy = 1, n
    call producer(iy, at)
    do ix = 1, n * n
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1) / n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, n * n * n / np, 0, ar, n * n * n / np, 0, 0, ierr)
end program indirectk
{sub}"""


def indirect_kernel(
    n: int = 16,
    nranks: int = 8,
    stages: int = 4,
) -> AppSpec:
    """Paper §4 test program with a visible (in-language) producer."""
    require_divisible(n, nranks, "indirect: cube edge vs ranks")
    require_divisible(n * n * n, nranks, "indirect: cube size vs ranks")
    return AppSpec(
        name="indirect",
        description=(
            "paper §4 indirect-pattern test program (Figure 3(a) shape): "
            "producer fills At, copy loop scatters into 3-D As"
        ),
        source=_source(n, nranks, stages, with_subroutine=True),
        nranks=nranks,
        kind="indirect",
        scheme="slab",
        check_arrays=("ar",),
        dead_arrays=("as",),
        params={"n": n, "stages": stages},
    )


def indirect_external_kernel(
    n: int = 16,
    nranks: int = 8,
    stages: int = 4,
    work_per_element: float = 60e-9,
) -> AppSpec:
    """Paper §4 program with the producer as an *external* library routine.

    The detector cannot see into the producer, so the app carries a
    :class:`~repro.analysis.callinfo.DictOracle` holding the user's
    answer ("yes, ``producer`` writes argument 2") and an
    :class:`~repro.interp.procedures.ExternalRegistry` implementing it in
    Python.  The implementation reproduces :func:`mix_stages` integer
    arithmetic exactly so both variants compute identical data.
    """
    require_divisible(n, nranks, "indirect-external: cube edge vs ranks")
    slab = n * n

    def fill(step: int, rank: int, size: int, flat: np.ndarray) -> None:
        i = np.arange(1, slab + 1, dtype=np.int64)
        v = i * 13 + step * 7 + rank * 31
        from .base import _STAGE_CONSTANTS

        for k in range(1, stages + 1):
            m, c, p = _STAGE_CONSTANTS[(k - 1) % len(_STAGE_CONSTANTS)]
            v = (v * m + (c + k)) % p
        flat[:] = v

    registry = ExternalRegistry(
        [
            make_producer(
                "producer",
                fill,
                work_per_element=work_per_element,
                slab_size=slab,
            )
        ]
    )
    return AppSpec(
        name="indirect-external",
        description=(
            "paper §4 program with the producer as a compiled library "
            "routine: the oracle answers the §3.1 user query"
        ),
        source=_source(n, nranks, stages, with_subroutine=False),
        nranks=nranks,
        kind="indirect",
        scheme="slab",
        check_arrays=("ar",),
        dead_arrays=("as",),
        externals=registry,
        oracle=DictOracle(registry.oracle_answers()),
        params={"n": n, "stages": stages},
    )
