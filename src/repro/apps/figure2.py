"""The paper's Figure 2(a) kernel — the canonical direct pattern.

A 1-D array is recomputed every outer time step and exchanged with
``MPI_ALLTOALL``; the computation loop *is* the node loop (it sweeps the
partitioned dimension), so the transformation tiles it directly —
scheme B, where each tile's block is owned by a single destination rank
(the congestion-prone shape §3.5 discusses; Figure 2(b) shows exactly
this code after transformation).
"""

from __future__ import annotations

from .base import AppSpec, mix_stages, require_divisible, stage_decls


def figure2_kernel(
    n: int = 512,
    nranks: int = 8,
    steps: int = 4,
    stages: int = 4,
) -> AppSpec:
    """Build the Figure 2(a) program.

    ``n`` elements per rank (must be divisible by ``nranks``), ``steps``
    outer iterations (each ending in one alltoall), ``stages`` mixing
    stages per element (compute intensity).
    """
    require_divisible(n, nranks, "figure2: array length vs ranks")
    body = mix_stages(
        "ix * 3 + iy * 17 + mynode() * 29",
        stages,
        result="as(ix)",
        indent="      ",
    )
    source = f"""
program figure2
  integer, parameter :: nx = {n}, np = {nranks}, nt = {steps}
  integer :: as(1:nx)
  integer :: ar(1:nx)
  integer :: iy, ix, ierr
{stage_decls(stages)}
  do iy = 1, nt
    do ix = 1, nx
{body}    enddo
    call mpi_alltoall(as, nx / np, 0, ar, nx / np, 0, 0, ierr)
  enddo
end program figure2
"""
    return AppSpec(
        name="figure2",
        description=(
            "paper Figure 2(a): 1-D kernel whose computation loop sweeps "
            "the partitioned dimension (direct pattern, scheme B)"
        ),
        source=source,
        nranks=nranks,
        kind="direct",
        scheme="B",
        check_arrays=("ar", "as"),
        params={"n": n, "steps": steps, "stages": stages},
    )
