"""CG-style iterative kernel — an allreduce-dominated workload.

A conjugate-gradient iteration alternates local sparse mat-vec work with
global dot products; the dot products are tiny ``MPI_ALLREDUCE`` calls
whose *latency* (not bandwidth) sits on the critical path every
iteration.  This is the canonical collective-bound workload class the
alltoall-centric paper never measures — it exercises the allreduce
algorithms of the collective registry (recursive doubling vs ring) on
the opposite end of the message-size spectrum from the transpose codes.

The mat-vec arithmetic is the usual integer mixing chain; the "dot
products" are exact integer folds so every allreduce algorithm produces
bit-identical results.  The reduced values feed the next iteration's
update, so the collective's correctness is load-bearing, and the seed
mixes ``mynode()`` in so per-rank data (and thus the reduction inputs)
differ across ranks.

There is no alltoall site here: the app exists for the collective
ablation axis (``kind="collective"``), not for the pre-push transform.
"""

from __future__ import annotations

from .base import AppSpec, mix_stages, require_divisible, stage_decls


def cg_allreduce(
    n: int = 512,
    nranks: int = 8,
    steps: int = 8,
    ndots: int = 4,
    stages: int = 4,
) -> AppSpec:
    """Build the CG-style kernel (``n`` local elements, ``ndots``-element
    reductions, ``steps`` iterations)."""
    require_divisible(n, ndots, "cg: local length vs dot-product slots")
    body = mix_stages(
        "x(i) * 5 + i * 19 + it * 11 + mynode() * 41",
        stages,
        result="x(i)",
        indent="      ",
    )
    source = f"""
program cgkernel
  integer, parameter :: n = {n}, nd = {ndots}, nt = {steps}
  integer :: x(1:n)
  integer :: dots(1:nd)
  integer :: gdots(1:nd)
  integer :: it, i, ierr
{stage_decls(stages)}
  do i = 1, n
    x(i) = mod(i * 17 + mynode() * 31 + 3, 1021)
  enddo
  do it = 1, nt
    do i = 1, n
{body}    enddo
    do i = 1, nd
      dots(i) = 0
    enddo
    do i = 1, n
      dots(mod(i - 1, nd) + 1) = mod(dots(mod(i - 1, nd) + 1) + x(i), 65521)
    enddo
    call mpi_allreduce(dots, gdots, nd, 0, ierr)
    do i = 1, n
      x(i) = mod(x(i) * 3 + gdots(mod(i - 1, nd) + 1) + it, 32749)
    enddo
  enddo
end program cgkernel
"""
    return AppSpec(
        name="cg",
        description=(
            "CG-style iteration: local mat-vec mixing punctuated by tiny "
            "global allreduce dot products (collective-bound, "
            "latency-sensitive)"
        ),
        source=source,
        nranks=nranks,
        kind="collective",
        scheme="-",
        check_arrays=("x", "gdots"),
        params={"n": n, "steps": steps, "ndots": ndots, "stages": stages},
    )
