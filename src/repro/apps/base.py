"""Shared machinery for the workload programs.

Every app is a *generator of mini-Fortran source text* plus the metadata
the harness and tests need: how many ranks its alltoall implies, which
pattern the detector should classify it as, which arrays carry the
result (for equivalence checking), and optional externals/oracle for
programs whose producer source is unavailable (paper §3.1's
semi-automatic case).

Compute intensity is expressed as a chain of *mixing stages* — helper
scalar assignments feeding the final store.  Each stage is a couple of
integer operations, so ``stages`` scales virtual CPU cost per element
without changing the loop structure the transformation analyzes.  The
values are a deterministic integer hash, so original/transformed
equivalence is exact (no floating-point tolerance games).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.callinfo import Oracle
from ..errors import ReproError
from ..interp.procedures import ExternalRegistry

#: Multiplier/increment/modulus triples for the mixing stages — small odd
#: constants so int64 never overflows even after millions of iterations.
_STAGE_CONSTANTS: Tuple[Tuple[int, int, int], ...] = (
    (5, 1, 8191),
    (7, 3, 7919),
    (11, 5, 6151),
    (13, 7, 4093),
    (17, 11, 3079),
    (19, 13, 2053),
    (23, 17, 1543),
    (29, 19, 1021),
)


@dataclass
class AppSpec:
    """One runnable workload: source text + everything needed to use it."""

    name: str
    description: str
    source: str
    nranks: int
    kind: str  # "direct" | "indirect"
    scheme: str  # expected transformation scheme: 'A', 'B', or 'slab'
    check_arrays: Tuple[str, ...]  # arrays equivalence must compare
    dead_arrays: Tuple[str, ...] = ()  # arrays the transform legitimately kills
    externals: Optional[ExternalRegistry] = None
    oracle: Optional[Oracle] = None
    params: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nranks < 2:
            raise ReproError(
                f"app {self.name!r} needs >= 2 ranks, got {self.nranks}"
            )


def mix_stages(
    seed_expr: str, stages: int, *, result: str, indent: str = "      "
) -> str:
    """Source lines computing ``result`` from ``seed_expr`` in ``stages`` hops.

    ``stages=0`` assigns the seed directly.  Stage constants repeat after
    :data:`_STAGE_CONSTANTS` is exhausted, with the stage index folded in
    so long chains do not cycle.
    """
    if stages < 0:
        raise ReproError(f"stages must be >= 0, got {stages}")
    if stages == 0:
        return f"{indent}{result} = {seed_expr}\n"
    lines: List[str] = [f"{indent}t0 = {seed_expr}\n"]
    for k in range(1, stages + 1):
        m, c, p = _STAGE_CONSTANTS[(k - 1) % len(_STAGE_CONSTANTS)]
        lines.append(
            f"{indent}t{k} = mod(t{k - 1} * {m} + {c + k}, {p})\n"
        )
    lines.append(f"{indent}{result} = t{stages}\n")
    return "".join(lines)


def stage_decls(stages: int) -> str:
    """Declaration line for the helper scalars used by :func:`mix_stages`."""
    if stages == 0:
        return ""
    names = ", ".join(f"t{k}" for k in range(stages + 1))
    return f"  integer :: {names}\n"


def require_divisible(n: int, d: int, what: str) -> None:
    if d <= 0 or n % d != 0:
        raise ReproError(f"{what}: {n} is not divisible by {d}")
