"""Workload programs: the paper's test program plus the §2 example domains.

Each builder returns an :class:`~repro.apps.base.AppSpec` bundling the
mini-Fortran source with the metadata the harness, verifier, and tests
need.  :data:`APP_BUILDERS` maps names to builders for the CLI and the
workload ablation.
"""

from typing import Callable, Dict

from .base import AppSpec, mix_stages, stage_decls  # noqa: F401
from .cg import cg_allreduce  # noqa: F401
from .fft import fft_transpose  # noqa: F401
from .figure2 import figure2_kernel  # noqa: F401
from .halo import halo_allgather  # noqa: F401
from .indirect import indirect_external_kernel, indirect_kernel  # noqa: F401
from .lu import lu_panel  # noqa: F401
from .nodeloop import nodeloop_kernel  # noqa: F401
from .sort import sample_sort_exchange  # noqa: F401
from .stencil import adi_sweep  # noqa: F401

#: name -> zero-config builder (all builders accept keyword overrides).
#: Apps with ``kind="collective"`` carry no alltoall site — they exist
#: for the collective-algorithm ablation axis, not the pre-push pipeline.
APP_BUILDERS: Dict[str, Callable[..., AppSpec]] = {
    "figure2": figure2_kernel,
    "indirect": indirect_kernel,
    "indirect-external": indirect_external_kernel,
    "fft": fft_transpose,
    "sort": sample_sort_exchange,
    "stencil": adi_sweep,
    "lu": lu_panel,
    "nodeloop": nodeloop_kernel,
    "cg": cg_allreduce,
    "halo": halo_allgather,
}


def build_app(name: str, **overrides) -> AppSpec:
    """Instantiate a workload by name with optional parameter overrides."""
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; available: {sorted(APP_BUILDERS)}"
        ) from None
    return builder(**overrides)


__all__ = [
    "AppSpec",
    "APP_BUILDERS",
    "build_app",
    "figure2_kernel",
    "indirect_kernel",
    "indirect_external_kernel",
    "fft_transpose",
    "sample_sort_exchange",
    "adi_sweep",
    "lu_panel",
    "nodeloop_kernel",
    "cg_allreduce",
    "halo_allgather",
    "mix_stages",
    "stage_decls",
]
