"""Sample-sort key redistribution (sorting is §2's first example workload).

In a sample sort, each rank assigns every local key to a destination
bucket and exchanges buckets with ``MPI_ALLTOALL``.  Our kernel models
the *uniform-splitter* case: the bucket layout ``as(key, bucket)`` is
computed with branch-free integer hashing (data-dependent bucket indices
would violate the paper's SPMD restriction — §2 requires no branches in
the code storing into the exchanged array, and our detector enforces
it).  The last dimension is the bucket/destination dimension with one
column per rank, exercising scheme A with single-plane partitions.
"""

from __future__ import annotations

from .base import AppSpec, mix_stages, require_divisible, stage_decls


def sample_sort_exchange(
    keys_per_dest: int = 256,
    nranks: int = 8,
    steps: int = 2,
    stages: int = 3,
) -> AppSpec:
    """Build the bucket-exchange phase of a sample sort.

    ``as`` is ``(keys_per_dest, nranks)``: column ``p`` holds the keys
    this rank routes to rank ``p - 1``.  The alltoall count is
    ``keys_per_dest`` (one column per destination).
    """
    if keys_per_dest < 1:
        raise ValueError("keys_per_dest must be >= 1")
    body = mix_stages(
        "ik * 19 + ip * 257 + it * 11 + mynode() * 41",
        stages,
        result="as(ik, ip)",
        indent="        ",
    )
    source = f"""
program samplesort
  integer, parameter :: nk = {keys_per_dest}, np = {nranks}, nt = {steps}
  integer :: as(1:nk, 1:np)
  integer :: ar(1:nk, 1:np)
  integer :: it, ik, ip, ierr
{stage_decls(stages)}
  do it = 1, nt
    do ik = 1, nk
      do ip = 1, np
{body}      enddo
    enddo
    call mpi_alltoall(as, nk, 0, ar, nk, 0, 0, ierr)
  enddo
end program samplesort
"""
    return AppSpec(
        name="sort",
        description=(
            "sample-sort bucket exchange: branch-free key hashing into a "
            "(keys, destination) matrix (direct pattern, scheme A, "
            "one-plane partitions)"
        ),
        source=source,
        nranks=nranks,
        kind="direct",
        scheme="A",
        check_arrays=("ar", "as"),
        params={"keys_per_dest": keys_per_dest, "steps": steps, "stages": stages},
    )
