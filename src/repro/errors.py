"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch one type.  Sub-hierarchies mirror the pipeline stages:
front end (lex/parse), analysis, transformation, and runtime simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SourceError(ReproError):
    """An error tied to a location in user source code."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        if line:
            super().__init__(f"{message} (at line {line}, col {col})")
        else:
            super().__init__(message)


class LexError(SourceError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(SourceError):
    """Raised when the parser cannot build an AST from the token stream."""


class AnalysisError(ReproError):
    """Raised when a program cannot be analyzed (unsupported construct)."""


class NotAffineError(AnalysisError):
    """Raised when an expression is not affine in the loop/symbol variables."""


class PatternError(AnalysisError):
    """Raised when a transformation opportunity cannot be classified."""


class TransformError(ReproError):
    """Raised when a transformation cannot be applied safely."""


class InterchangeError(TransformError):
    """Raised when a requested loop interchange is illegal."""


class InterpError(ReproError):
    """Raised for runtime failures inside the AST interpreter."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        super().__init__(f"{message}" + (f" (line {line})" if line else ""))


class SimulationError(ReproError):
    """Raised for protocol violations inside the cluster simulator."""


class DeadlockError(SimulationError):
    """Raised when the simulator detects that no rank can make progress."""


class SymmetryError(SimulationError):
    """Raised when the rank-symmetry recorder cannot prove a program
    rank-symmetric (DESIGN.md §10): a rank-dependent value reached a
    place where ranks could diverge — control flow, message sizes,
    point-to-point partners — so one recorded trace cannot stand in for
    every rank."""


class EngineModeError(SimulationError):
    """Raised when ``engine_mode="replay"`` is forced on a program the
    symmetry analysis rejects.  Carries the underlying
    :class:`SymmetryError` explanation instead of silently falling back
    to full interpretation."""


class VerificationError(ReproError):
    """Raised when original and transformed programs disagree."""


class ServeError(ReproError):
    """Base class for the :mod:`repro.serve` job service: anything that
    turns into a structured ``error`` event on the wire (and back into
    an exception client-side) derives from this."""


class RequestError(ServeError):
    """A malformed or invalid service request: undecodable JSON, an
    unknown request type, a spec that fails validation, or a request
    sent to a server that is draining for shutdown."""


class OverloadError(ServeError):
    """The server refused a request for capacity reasons: admitting the
    expanded sweep would exceed the configured pending-point budget
    (DESIGN.md §11 backpressure — admission control at expansion time,
    so a queue can never grow without bound)."""


class TuneError(ReproError):
    """Raised by the :mod:`repro.tune` auto-tuning subsystem: a
    malformed search space or candidate, an unknown strategy name, a
    strategy protocol violation (e.g. proposing off-axis values), or a
    refused artifact overwrite."""
