"""repro.tune — auto-tuning search over the configuration knob space.

The paper's conclusion ("pre-push + the right collective on this
network") is one point in a space the repo can enumerate mechanically:
variant × tile size × collective algorithm × network scenario × rank
count.  This package searches that space instead of replaying the
paper's grid:

* :mod:`~repro.tune.space` — declarative :class:`SearchSpace` over the
  three registries + TransformOptions, with structural constraints and
  canonical serialization;
* :mod:`~repro.tune.strategies` — the ask/tell :class:`Strategy`
  protocol and registry (grid, random, hill-climb,
  successive-halving built in);
* :mod:`~repro.tune.driver` — :func:`tune`, evaluating through
  :meth:`Session.sweep` so the content-addressed cache memoizes every
  candidate;
* :mod:`~repro.tune.trajectory` — per-step JSONL artifacts and the
  :class:`TuneResult` summary.

See DESIGN.md §12.
"""

from .space import (
    AXIS_NAMES,
    Axis,
    SearchSpace,
    default_space,
    list_constraints,
)
from .strategies import (
    EvalResult,
    GridStrategy,
    HillClimbStrategy,
    RandomStrategy,
    Strategy,
    SuccessiveHalvingStrategy,
    get_strategy,
    list_strategies,
    register_strategy,
)
from .driver import OBJECTIVES, tune
from .trajectory import Trajectory, TrajectoryStep, TuneResult

__all__ = [
    "AXIS_NAMES",
    "Axis",
    "EvalResult",
    "GridStrategy",
    "HillClimbStrategy",
    "OBJECTIVES",
    "RandomStrategy",
    "SearchSpace",
    "Strategy",
    "SuccessiveHalvingStrategy",
    "Trajectory",
    "TrajectoryStep",
    "TuneResult",
    "default_space",
    "get_strategy",
    "list_constraints",
    "list_strategies",
    "register_strategy",
    "tune",
]
