"""Trajectory artifacts: the reproducible record of one tune run.

A tune run emits one JSONL document: a header line (search-space
canonical form + fingerprint, strategy, budget, objective, seed, engine
version) followed by one line per evaluation — candidate, objective,
cumulative best, and whether the evaluation was answered from cache.
Two runs with the same seed over a warm cache must produce
**bit-identical** JSONL; a cold and a warm run of the same command agree
on everything except the ``cache_hit`` flags (that difference is
execution provenance, not search content — :meth:`Trajectory.
search_fingerprint` hashes the flag-stripped record for exactly this
comparison).

The rendering hook (:meth:`Trajectory.render`) is the archgym
``best_fitness.py`` idea in this repo's ASCII idiom: best objective so
far as a function of evaluations spent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Union

import hashlib

from ..errors import TuneError
from ..runtime.simulator import ENGINE_VERSION
from .space import Candidate, SearchSpace

__all__ = ["TrajectoryStep", "Trajectory", "TuneResult"]

#: Format version of the trajectory JSONL document.
TRAJECTORY_VERSION = 1


def _dumps(obj: Any) -> str:
    """The one canonical JSON encoding used for every trajectory line."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TrajectoryStep:
    """One evaluation: what was tried, what it scored, where we stand."""

    step: int  # 0-based evaluation index
    candidate: Candidate
    objective: float
    best_objective: float  # cumulative best including this step
    best_candidate: Candidate
    cache_hit: bool  # True = zero simulations for this evaluation
    fingerprint: Optional[str]  # cache key of the candidate's own run

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "candidate": dict(self.candidate),
            "objective": self.objective,
            "best_objective": self.best_objective,
            "best_candidate": dict(self.best_candidate),
            "cache_hit": self.cache_hit,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrajectoryStep":
        return cls(
            step=data["step"],
            candidate=dict(data["candidate"]),
            objective=data["objective"],
            best_objective=data["best_objective"],
            best_candidate=dict(data["best_candidate"]),
            cache_hit=data["cache_hit"],
            fingerprint=data.get("fingerprint"),
        )


@dataclass
class Trajectory:
    """The full per-step record of one tune run."""

    header: Dict[str, Any]
    steps: List[TrajectoryStep] = field(default_factory=list)

    @classmethod
    def begin(
        cls,
        *,
        space: SearchSpace,
        strategy: str,
        budget: int,
        objective: str,
        seed: int,
    ) -> "Trajectory":
        return cls(
            header={
                "kind": "tune-trajectory",
                "version": TRAJECTORY_VERSION,
                "engine_version": ENGINE_VERSION,
                "space": space.to_dict(),
                "space_fingerprint": space.fingerprint(),
                "strategy": strategy,
                "budget": budget,
                "objective": objective,
                "seed": seed,
            }
        )

    # ------------------------------------------------------------- i/o

    def to_jsonl(self) -> str:
        """The canonical serialized document: header line, then one
        line per step, compact sorted-key JSON throughout — the
        bit-identity unit of the determinism contract."""
        lines = [_dumps(self.header)]
        lines.extend(_dumps(s.to_dict()) for s in self.steps)
        return "\n".join(lines) + "\n"

    def write(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    @classmethod
    def read(cls, source: Union[str, Path, IO[str]]) -> "Trajectory":
        if hasattr(source, "read"):
            text = source.read()
        else:
            text = Path(source).read_text(encoding="utf-8")
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise TuneError("empty trajectory document")
        header = json.loads(lines[0])
        if header.get("kind") != "tune-trajectory":
            raise TuneError(
                "not a tune trajectory (missing kind=tune-trajectory header)"
            )
        steps = [TrajectoryStep.from_dict(json.loads(ln)) for ln in lines[1:]]
        return cls(header=header, steps=steps)

    # ------------------------------------------------------- analysis

    def best_fitness_series(self) -> List[float]:
        """Best objective so far after each evaluation — the y-values
        of the classic best-fitness-over-evaluations curve."""
        return [s.best_objective for s in self.steps]

    def search_fingerprint(self) -> str:
        """sha-256 of the trajectory minus the ``cache_hit`` flags.

        Equal for a cold and a warm run of the same seeded command:
        cache hits change *where answers come from*, never what they
        are, so the search content must hash identically.
        """
        stripped = [self.header] + [
            {k: v for k, v in s.to_dict().items() if k != "cache_hit"}
            for s in self.steps
        ]
        return hashlib.sha256(
            "\n".join(_dumps(x) for x in stripped).encode("utf-8")
        ).hexdigest()

    def render(self, *, width: int = 50) -> str:
        """ASCII best-fitness-over-evaluations figure."""
        from ..harness.report import bar_chart

        if not self.steps:
            return "(empty trajectory)"
        series = self.best_fitness_series()
        labels = [f"eval {s.step:>3}" for s in self.steps]
        lines = [
            f"best objective over {len(series)} evaluations "
            f"(strategy={self.header.get('strategy')}, "
            f"seed={self.header.get('seed')})",
            bar_chart(labels, series, width=width),
        ]
        return "\n".join(lines)


@dataclass
class TuneResult:
    """Summary of one finished tune run."""

    best_candidate: Candidate
    best_objective: float
    evaluations: int
    simulations: int  # simulations actually executed (0 on warm cache)
    cache_hits: int  # evaluations answered without simulating
    strategy: str
    objective: str
    seed: int
    space_fingerprint: str
    trajectory: Trajectory

    def to_dict(self) -> Dict[str, Any]:
        return {
            "best_candidate": dict(self.best_candidate),
            "best_objective": self.best_objective,
            "evaluations": self.evaluations,
            "simulations": self.simulations,
            "cache_hits": self.cache_hits,
            "strategy": self.strategy,
            "objective": self.objective,
            "seed": self.seed,
            "space_fingerprint": self.space_fingerprint,
            "search_fingerprint": self.trajectory.search_fingerprint(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        cand = ", ".join(
            f"{k}={v}" for k, v in self.best_candidate.items()
        )
        return (
            f"best {self.objective}={self.best_objective:.6g} after "
            f"{self.evaluations} evaluations ({self.simulations} simulated, "
            f"{self.cache_hits} cache hits) via {self.strategy} "
            f"[seed {self.seed}]\n  {cand}"
        )
