"""The tune driver: ask → evaluate → tell over the shared sweep cache.

:func:`tune` orchestrates one search: a strategy proposes canonical
candidates, each candidate becomes a single-point
:class:`~repro.harness.sweep.SweepSpec` (via
:meth:`SearchSpace.specs_for`), and the whole batch runs through
:meth:`repro.api.Session.sweep` — so every evaluation is answered by
the content-addressed cache when it can be, and simulated (then
memoized) when it can't.  The cache *is* the search's memo table:
re-running a tune is near-free, and two strategies exploring
overlapping regions dedupe automatically (DESIGN.md §12).

Reproducibility contract: the only randomness is one
:class:`random.Random` seeded from the ``seed`` argument (falling back
to the session's seed, then 0) and handed to the strategy factory.
Same space + strategy + budget + objective + seed ⇒ bit-identical
trajectory JSONL over a warm cache, and identical
``search_fingerprint`` even against a cold one.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from ..errors import TuneError
from ..harness.sweep import SweepResult, SweepRun, SweepSpec
from .space import Candidate, SearchSpace
from .strategies import EvalResult, get_strategy
from .trajectory import Trajectory, TrajectoryStep, TuneResult

__all__ = ["tune", "OBJECTIVES"]

#: Built-in objective names (all minimized; ``speedup`` is negated).
OBJECTIVES = ("time", "speedup")

#: An evaluator runs a batch of single-point specs and returns the
#: SweepResult.  The default is ``session.sweep``; the serve layer
#: substitutes one that routes each point through its three-layer dedup.
Evaluator = Callable[[List[SweepSpec]], SweepResult]


def _resolve_objective(
    objective: Union[str, Callable[[SweepRun], float]]
) -> tuple:
    """``(name, fn, needs_baseline)`` for an objective spec.

    Built-ins: ``"time"`` minimizes the candidate's virtual completion
    time; ``"speedup"`` maximizes time(original)/time(candidate) at the
    same coordinates (implemented as minimizing its negation, so the
    driver only ever minimizes).  A callable receives the candidate's
    :class:`~repro.harness.sweep.SweepRun` and returns a float to
    minimize.
    """
    if callable(objective):
        name = getattr(objective, "__name__", "custom")
        return name, (lambda run, base: float(objective(run))), False
    if objective == "time":
        return "time", (lambda run, base: run.measurement.time), False
    if objective == "speedup":

        def fn(run: SweepRun, base: Optional[SweepRun]) -> float:
            base_time = base.measurement.time if base else run.measurement.time
            if run.measurement.time == 0:
                return 0.0 if base_time == 0 else float("-inf")
            return -(base_time / run.measurement.time)

        return "speedup", fn, True
    raise TuneError(
        f"unknown objective {objective!r}; built-ins: "
        f"{', '.join(OBJECTIVES)} (or pass a callable over SweepRun)"
    )


def tune(
    space: SearchSpace,
    *,
    session: Optional[Any] = None,
    strategy: str = "hill-climb",
    budget: int = 32,
    objective: Union[str, Callable[[SweepRun], float]] = "time",
    seed: Optional[int] = None,
    strategy_params: Optional[Mapping[str, Any]] = None,
    trajectory_path: Optional[str] = None,
    on_step: Optional[Callable[[TrajectoryStep], None]] = None,
    evaluate: Optional[Evaluator] = None,
) -> TuneResult:
    """Search ``space`` for the candidate minimizing ``objective``.

    ``budget`` caps the number of candidate evaluations (a strategy
    asking for more gets its batch truncated; one asking for nothing
    ends the run early).  ``seed`` falls back to the session's
    configured seed (``ExecutionContext.seed``), then 0, and is
    recorded in the trajectory header.  ``on_step`` fires after each
    evaluation (progress streaming); ``trajectory_path`` writes the
    JSONL artifact on completion.  ``evaluate`` overrides how spec
    batches execute — the serve layer uses it; everyone else should
    leave the default (:meth:`Session.sweep`).
    """
    if budget < 1:
        raise TuneError(f"tune budget must be >= 1, got {budget}")
    owns_session = session is None
    if owns_session:
        from ..api.session import Session

        session = Session()
    try:
        if seed is None:
            seed = getattr(session, "seed", None)
        if seed is None:
            seed = 0
        if evaluate is None:
            evaluate = session.sweep
        obj_name, obj_fn, needs_baseline = _resolve_objective(objective)
        factory = get_strategy(strategy)
        rng = random.Random(seed)
        strat = factory(space, rng, budget, **dict(strategy_params or {}))

        trajectory = Trajectory.begin(
            space=space,
            strategy=strategy,
            budget=budget,
            objective=obj_name,
            seed=seed,
        )
        history: List[EvalResult] = []
        simulations = 0
        cache_hits = 0
        best_obj: Optional[float] = None
        best_cand: Optional[Candidate] = None

        while len(history) < budget:
            proposals = strat.ask(history)
            if not proposals:
                break  # strategy is done (space exhausted)
            proposals = [space.normalize(c) for c in proposals]
            proposals = proposals[: budget - len(history)]

            # one sweep batch per round: every candidate (plus any
            # baseline) as its own single-point spec — the expansion
            # dedupes identical fingerprints within the batch and the
            # cache answers across batches and across runs
            specs: List[SweepSpec] = []
            names: List[str] = []
            for i, cand in enumerate(proposals):
                name = f"tune-{len(history) + i:04d}"
                names.append(name)
                specs.extend(
                    space.specs_for(cand, name=name, baseline=needs_baseline)
                )
            result = evaluate(specs)
            simulations += result.stats.total_simulated

            by_spec: Dict[str, SweepRun] = {}
            for run in result.runs:
                by_spec[run.axes["spec"]] = run

            told: List[EvalResult] = []
            for cand, name in zip(proposals, names):
                run = by_spec[name]
                base = by_spec.get(f"{name}-baseline")
                value = obj_fn(run, base)
                hit = run.cached and (base is None or base.cached)
                if hit:
                    cache_hits += 1
                step = len(history)
                if best_obj is None or value < best_obj:
                    best_obj, best_cand = value, cand
                res = EvalResult(
                    candidate=cand,
                    key=space.candidate_key(cand),
                    objective=value,
                    cached=hit,
                    step=step,
                )
                told.append(res)
                history.append(res)
                traj_step = TrajectoryStep(
                    step=step,
                    candidate=cand,
                    objective=value,
                    best_objective=best_obj,
                    best_candidate=best_cand,
                    cache_hit=hit,
                    fingerprint=run.fingerprint,
                )
                trajectory.steps.append(traj_step)
                if on_step is not None:
                    on_step(traj_step)
            strat.tell(told)

        if best_cand is None:
            raise TuneError(
                f"strategy {strategy!r} proposed no candidates for "
                f"space {space.fingerprint()[:12]} (empty grid?)"
            )
        if trajectory_path is not None:
            trajectory.write(trajectory_path)
        return TuneResult(
            best_candidate=best_cand,
            best_objective=best_obj,
            evaluations=len(history),
            simulations=simulations,
            cache_hits=cache_hits,
            strategy=strategy,
            objective=obj_name,
            seed=seed,
            space_fingerprint=space.fingerprint(),
            trajectory=trajectory,
        )
    finally:
        if owns_session:
            session.close()
