"""Declarative search spaces over the repo's configuration knobs.

The three registries (network scenarios, collective algorithms,
transformation variants) plus :class:`~repro.transform.options.
TransformOptions` and the rank count define a real configuration space
— the paper's conclusion is one point in it.  A :class:`SearchSpace`
names that space *declaratively*: a tuple of :class:`Axis` objects
(categorical or integer) over registry-drawn values, plus named
structural **constraints** such as "tile size only matters when the
variant tiles".  Everything is canonically serializable
(:meth:`SearchSpace.to_dict` / :meth:`SearchSpace.from_dict` /
:meth:`SearchSpace.fingerprint`), so a tune run is fingerprintable the
same way a sweep point is (DESIGN.md §12).

A **candidate** is a plain dict ``{axis name: value}``.
:meth:`SearchSpace.normalize` maps every raw candidate to its canonical
form by applying the constraints — candidates that differ only in
knobs their variant cannot express (a tile size under the ``original``
pipeline, say) collapse to one canonical candidate, which is what
makes search-loop deduplication and the sweep cache's memo table line
up: one canonical candidate, one fingerprint, one simulation ever.

:meth:`SearchSpace.specs_for` turns one candidate into single-point
:class:`~repro.harness.sweep.SweepSpec`\\ s (via
:meth:`~repro.harness.sweep.SweepSpec.single`), which is how the tune
driver evaluates candidates through :meth:`repro.api.Session.sweep` —
every evaluation hits the shared content-addressed cache.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import TuneError
from ..harness.sweep import SweepSpec
from ..runtime.collectives import (
    default_algorithm,
    list_algorithms,
    resolve_suite,
)
from ..runtime.network import list_models, resolve_model
from ..transform.options import TransformOptions
from ..transform.pipeline import list_variants, resolve_variant

__all__ = [
    "AXIS_NAMES",
    "Axis",
    "Candidate",
    "SearchSpace",
    "default_space",
    "list_constraints",
]

#: A candidate is a plain JSON-safe mapping of axis name -> value.
Candidate = Dict[str, Any]

#: The knobs a space may declare as axes, in canonical (grid) order.
#: Each maps 1:1 onto a :class:`~repro.harness.sweep.SweepSpec` axis.
AXIS_NAMES = (
    "variant",
    "tile_size",
    "interchange",
    "collective",
    "network",
    "nranks",
)

#: Value every knob takes when a space does not declare its axis.
_AXIS_DEFAULTS: Dict[str, Any] = {
    "variant": "original",
    "tile_size": "auto",
    "interchange": "auto",
    "collective": None,
    "network": "gmnet",
    "nranks": 8,
}


@dataclass(frozen=True)
class Axis:
    """One searchable knob: a name and its candidate values.

    ``kind`` is ``"categorical"`` (unordered labels — variants,
    networks, collective specs) or ``"integer"`` (ordered numeric
    values — rank counts, pure-int tile-size menus); integer axes are
    what fidelity-aware strategies like successive halving climb.
    Values must be JSON scalars (or, for ``collective``, mappings) so
    the space serializes canonically.
    """

    name: str
    values: Tuple[Any, ...]
    kind: str = "categorical"

    def __post_init__(self) -> None:
        if self.name not in AXIS_NAMES:
            raise TuneError(
                f"unknown axis {self.name!r}; searchable knobs: "
                f"{', '.join(AXIS_NAMES)}"
            )
        if not self.values:
            raise TuneError(f"axis {self.name!r} needs at least one value")
        if self.kind not in ("categorical", "integer"):
            raise TuneError(
                f"axis {self.name!r} kind must be 'categorical' or "
                f"'integer', not {self.kind!r}"
            )
        if self.kind == "integer" and not all(
            isinstance(v, int) and not isinstance(v, bool)
            for v in self.values
        ):
            raise TuneError(
                f"integer axis {self.name!r} has non-int values "
                f"{[v for v in self.values if not isinstance(v, int)]}"
            )
        if len(set(map(_value_key, self.values))) != len(self.values):
            raise TuneError(f"axis {self.name!r} has duplicate values")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "values": [
                dict(v) if isinstance(v, Mapping) else v for v in self.values
            ],
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Axis":
        unknown = set(data) - {"name", "values", "kind"}
        if unknown:
            raise TuneError(
                f"axis object has unknown keys {sorted(unknown)}"
            )
        if "name" not in data or "values" not in data:
            raise TuneError("an axis object needs 'name' and 'values'")
        return cls(
            name=data["name"],
            values=tuple(data["values"]),
            kind=data.get("kind", "categorical"),
        )


def _value_key(value: Any) -> str:
    """Stable identity of one axis value (dicts compare canonically)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _variant_has_pass(variant: str, pass_name: str) -> bool:
    pipeline = resolve_variant(variant)
    return any(p.name == pass_name for p in pipeline.passes)


# ------------------------------------------------------- constraints

#: name -> rule(candidate) -> candidate.  A constraint is a *named*
#: normalization rule so it serializes with the space; rules must be
#: idempotent and only ever collapse values toward a canonical form.
_CONSTRAINTS: Dict[str, Callable[[Candidate], Candidate]] = {}


def _constraint(name: str):
    def deco(fn: Callable[[Candidate], Candidate]):
        _CONSTRAINTS[name] = fn
        return fn

    return deco


def list_constraints() -> List[str]:
    """Sorted names of the built-in structural constraints."""
    return sorted(_CONSTRAINTS)


@_constraint("tile-size-requires-tiling")
def _tile_requires_tiling(candidate: Candidate) -> Candidate:
    """``tile_size`` collapses to ``"auto"`` when the chosen variant's
    pipeline has no ``tile`` pass — the knob cannot be expressed, so
    all its values name the same simulation."""
    if candidate.get("tile_size", "auto") != "auto" and not _variant_has_pass(
        candidate.get("variant", _AXIS_DEFAULTS["variant"]), "tile"
    ):
        candidate = dict(candidate, tile_size="auto")
    return candidate


@_constraint("interchange-requires-interchange-pass")
def _interchange_requires_pass(candidate: Candidate) -> Candidate:
    """``interchange`` collapses to ``"auto"`` when the variant's
    pipeline has no ``interchange`` pass (same argument as the tile
    rule: ``no-interchange`` under interchange="never" is still
    ``no-interchange``)."""
    if candidate.get(
        "interchange", "auto"
    ) != "auto" and not _variant_has_pass(
        candidate.get("variant", _AXIS_DEFAULTS["variant"]), "interchange"
    ):
        candidate = dict(candidate, interchange="auto")
    return candidate


DEFAULT_CONSTRAINTS: Tuple[str, ...] = (
    "tile-size-requires-tiling",
    "interchange-requires-interchange-pass",
)


# ------------------------------------------------------------- space


@dataclass(frozen=True)
class SearchSpace:
    """One declarative knob space for a single app.

    ``axes`` declare what a strategy may vary; knobs without an axis
    are pinned to their defaults (``tile_size``/``interchange`` →
    ``"auto"``, ``collective`` → registry defaults, ``network`` →
    ``"gmnet"``, ``nranks`` → 8).  ``cpu_scale``/``verify``/
    ``engine_mode`` are fixed evaluation context, not axes.  The
    declared ``constraints`` (names of built-in rules) canonicalize
    candidates; see :meth:`normalize`.
    """

    app: str
    axes: Tuple[Axis, ...]
    app_kwargs: Mapping[str, Any] = field(default_factory=dict)
    constraints: Tuple[str, ...] = DEFAULT_CONSTRAINTS
    cpu_scale: float = 1.0
    verify: bool = False
    engine_mode: Optional[str] = None

    def __post_init__(self) -> None:
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise TuneError(f"duplicate axes {sorted(names)}")
        unknown = sorted(set(self.constraints) - set(_CONSTRAINTS))
        if unknown:
            raise TuneError(
                f"unknown constraints {unknown}; built-ins: "
                f"{list_constraints()}"
            )
        # fail on unresolvable registry names now, not mid-search
        for axis in self.axes:
            if axis.name == "variant":
                for v in axis.values:
                    resolve_variant(v)
            elif axis.name == "network":
                for v in axis.values:
                    resolve_model(v)
            elif axis.name == "collective":
                for v in axis.values:
                    resolve_suite(v)
            elif axis.name == "tile_size":
                for v in axis.values:
                    TransformOptions(tile_size=v)
            elif axis.name == "interchange":
                for v in axis.values:
                    TransformOptions(interchange=v)
            elif axis.name == "nranks":
                if axis.kind != "integer":
                    raise TuneError("the nranks axis must be integer-kind")

    # ---------------------------------------------------- introspection

    def axis(self, name: str) -> Optional[Axis]:
        for axis in self.axes:
            if axis.name == name:
                return axis
        return None

    def default_value(self, name: str) -> Any:
        """The pinned value of an undeclared knob, or the first value
        of its declared axis (the deterministic search start)."""
        axis = self.axis(name)
        return axis.values[0] if axis is not None else _AXIS_DEFAULTS[name]

    def default_candidate(self) -> Candidate:
        """The deterministic starting point: every axis at its first
        declared value."""
        return self.normalize(
            {a.name: a.values[0] for a in self.axes}
        )

    # ---------------------------------------------------- normalization

    def normalize(self, candidate: Mapping[str, Any]) -> Candidate:
        """The canonical form of ``candidate``.

        Unknown keys raise; a missing declared axis takes that axis's
        first value; then every declared constraint applies in name
        order.  Two candidates with equal canonical forms name the same
        simulation, so strategies and the trajectory always speak in
        canonical candidates.

        A knob's pinned default (``"auto"``, registry default, ...) is
        always acceptable even when the axis doesn't declare it: it is
        the value constraints collapse inexpressible knobs *to*, so
        canonical forms must re-normalize to themselves.
        """
        unknown = sorted(set(candidate) - {a.name for a in self.axes})
        if unknown:
            raise TuneError(
                f"candidate has unknown axes {unknown}; declared: "
                f"{[a.name for a in self.axes]}"
            )
        full = {
            a.name: candidate.get(a.name, a.values[0]) for a in self.axes
        }
        for axis in self.axes:
            if _value_key(full[axis.name]) not in {
                _value_key(v)
                for v in axis.values + (_AXIS_DEFAULTS[axis.name],)
            }:
                raise TuneError(
                    f"candidate value {full[axis.name]!r} not on axis "
                    f"{axis.name!r} (values: {list(axis.values)})"
                )
        for name in sorted(self.constraints):
            full = _CONSTRAINTS[name](dict(full))
        return {name: full[name] for name in self._axis_order()}

    def _axis_order(self) -> List[str]:
        return [a.name for a in self.axes]

    @staticmethod
    def candidate_key(candidate: Mapping[str, Any]) -> str:
        """Stable JSON identity of one (canonical) candidate."""
        return json.dumps(
            dict(candidate), sort_keys=True, separators=(",", ":")
        )

    # ------------------------------------------------------ enumeration

    def grid(self) -> List[Candidate]:
        """Every distinct canonical candidate, in cross-product order
        (axes in declaration order, first axis outermost) — exactly
        the order a :class:`~repro.harness.sweep.SweepSpec` cross-
        product would enumerate the same values, deduplicated by
        canonical form."""
        seen: set = set()
        out: List[Candidate] = []
        for values in itertools.product(*(a.values for a in self.axes)):
            cand = self.normalize(
                dict(zip((a.name for a in self.axes), values))
            )
            key = self.candidate_key(cand)
            if key not in seen:
                seen.add(key)
                out.append(cand)
        return out

    def size(self) -> int:
        """Number of distinct canonical candidates."""
        return len(self.grid())

    def sample(self, rng) -> Candidate:
        """One uniformly drawn canonical candidate (``rng`` is a
        :class:`random.Random`; determinism is the caller's seed)."""
        return self.normalize(
            {a.name: rng.choice(a.values) for a in self.axes}
        )

    def neighbors(self, candidate: Mapping[str, Any]) -> List[Candidate]:
        """Every canonical candidate one axis move away (all alternate
        values of each axis, other axes fixed), deduplicated, the
        candidate itself excluded — the hill-climb neighborhood."""
        base = self.normalize(candidate)
        base_key = self.candidate_key(base)
        seen = {base_key}
        out: List[Candidate] = []
        for axis in self.axes:
            for value in axis.values:
                cand = self.normalize(dict(base, **{axis.name: value}))
                key = self.candidate_key(cand)
                if key not in seen:
                    seen.add(key)
                    out.append(cand)
        return out

    def axis_moves(
        self, candidate: Mapping[str, Any], name: str
    ) -> List[Candidate]:
        """The :meth:`neighbors` restricted to one axis (coordinate-
        descent's per-axis proposal set)."""
        axis = self.axis(name)
        if axis is None:
            return []
        base = self.normalize(candidate)
        seen = {self.candidate_key(base)}
        out: List[Candidate] = []
        for value in axis.values:
            cand = self.normalize(dict(base, **{name: value}))
            key = self.candidate_key(cand)
            if key not in seen:
                seen.add(key)
                out.append(cand)
        return out

    # ---------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe canonical form (the wire/spec-file format)."""
        return {
            "app": self.app,
            "app_kwargs": dict(self.app_kwargs),
            "axes": [a.to_dict() for a in self.axes],
            "constraints": list(self.constraints),
            "cpu_scale": self.cpu_scale,
            "verify": self.verify,
            "engine_mode": self.engine_mode,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpace":
        known = {
            "app",
            "app_kwargs",
            "axes",
            "constraints",
            "cpu_scale",
            "verify",
            "engine_mode",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise TuneError(
                f"search space has unknown keys {unknown}; accepted: "
                f"{sorted(known)}"
            )
        if "app" not in data or "axes" not in data:
            raise TuneError("a search space needs at least 'app' and 'axes'")
        axes = tuple(
            a if isinstance(a, Axis) else Axis.from_dict(a)
            for a in data["axes"]
        )
        kwargs: Dict[str, Any] = {"app": data["app"], "axes": axes}
        if "app_kwargs" in data:
            kwargs["app_kwargs"] = dict(data["app_kwargs"])
        if "constraints" in data:
            kwargs["constraints"] = tuple(data["constraints"])
        for key in ("cpu_scale", "verify", "engine_mode"):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)

    def canonical_params(self) -> Dict[str, Any]:
        """Alias of :meth:`to_dict` mirroring the NetworkModel /
        CostModel / TransformOptions fingerprint convention."""
        return self.to_dict()

    def fingerprint(self) -> str:
        """sha-256 of the canonical form — the tune-run identity folded
        into every trajectory header."""
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------- evaluation

    def specs_for(
        self,
        candidate: Mapping[str, Any],
        *,
        name: str,
        baseline: bool = False,
    ) -> List[SweepSpec]:
        """The single-point sweep spec(s) evaluating ``candidate``.

        The first spec is the candidate itself; with ``baseline=True``
        (speedup-style objectives) a second spec measures the
        untransformed ``original`` program at the same coordinates —
        as its own single-point spec, so the batch/cache fingerprint
        dedupe collapses repeated baselines across candidates.
        """
        cand = self.normalize(candidate)

        def single(spec_name: str, variant: str) -> SweepSpec:
            return SweepSpec.single(
                name=spec_name,
                app=self.app,
                app_kwargs=dict(self.app_kwargs),
                variant=variant,
                tile_size=cand.get("tile_size", "auto"),
                interchange=cand.get("interchange", "auto"),
                network=cand.get("network", _AXIS_DEFAULTS["network"]),
                collective=cand.get("collective"),
                nranks=cand.get("nranks", _AXIS_DEFAULTS["nranks"]),
                cpu_scale=self.cpu_scale,
                verify=self.verify,
                engine_mode=self.engine_mode,
            )

        variant = cand.get("variant", "original")
        specs = [single(name, variant)]
        if baseline and variant != "original":
            specs.append(single(f"{name}-baseline", "original"))
        return specs


def default_space(
    app: str,
    *,
    app_kwargs: Optional[Mapping[str, Any]] = None,
    networks: Sequence[Any] = ("gmnet",),
    nranks: Sequence[int] = (8,),
    variants: Optional[Sequence[str]] = None,
    tile_sizes: Optional[Sequence[Any]] = None,
    collectives: Optional[Sequence[Any]] = None,
    interchange: Sequence[str] = ("auto",),
    cpu_scale: float = 1.0,
    verify: bool = False,
    engine_mode: Optional[str] = None,
) -> SearchSpace:
    """The registry-drawn space most tune runs want.

    Axes default to everything the registries offer today: every
    registered variant, a power-of-two tile menu, and every non-default
    ``alltoall`` algorithm (the collective the §2 workloads exercise) on
    top of the registry defaults.  Network and rank count default to
    single-valued axes — pinned coordinates, not searched — so
    ``default_space("fft")`` searches variant × tile × collective at
    NP=8 on gmnet, the paper's own question.
    """
    if variants is None:
        variants = tuple(list_variants())
    if tile_sizes is None:
        tile_sizes = ("auto", 2, 4, 8, 16)
    if collectives is None:
        alltoall_default = default_algorithm("alltoall")
        collectives = (None,) + tuple(
            f"alltoall={name}"
            for name in list_algorithms("alltoall")
            if name != alltoall_default
        )
    networks = tuple(
        n if isinstance(n, str) else resolve_model(n).name for n in networks
    )
    for n in networks:
        if n not in list_models():
            resolve_model(n)  # raises the registry's own error
    axes = [
        Axis("variant", tuple(variants)),
        Axis(
            "tile_size",
            tuple(tile_sizes),
            kind=(
                "integer"
                if all(isinstance(v, int) for v in tile_sizes)
                else "categorical"
            ),
        ),
        Axis("interchange", tuple(interchange)),
        Axis("collective", tuple(collectives)),
        Axis("network", networks),
        Axis("nranks", tuple(nranks), kind="integer"),
    ]
    return SearchSpace(
        app=app,
        app_kwargs=dict(app_kwargs or {}),
        axes=tuple(axes),
        cpu_scale=cpu_scale,
        verify=verify,
        engine_mode=engine_mode,
    )
