"""Search strategies and their registry.

A strategy is an ask/tell state machine over a
:class:`~repro.tune.space.SearchSpace`:

* ``ask(history) -> [candidate, ...]`` proposes the next canonical
  candidates to evaluate.  Returning ``[]`` means the strategy is done
  (space exhausted or nothing left worth trying) — the driver stops
  early even with budget remaining.
* ``tell(results)`` feeds back the scored :class:`EvalResult`\\ s.  The
  driver may evaluate *fewer* candidates than asked (budget slicing),
  so a strategy must tolerate truncated batches: unscored proposals are
  simply never told.

Strategies register by name exactly like networks, collectives, and
variants (:func:`register_strategy` / :func:`get_strategy` /
:func:`list_strategies`), so third-party bandit/evolutionary searches
plug in without touching the driver (DESIGN.md §12).  A factory is
called as ``factory(space, rng, budget, **params)``; the ``rng`` is a
:class:`random.Random` seeded by the driver — a strategy must draw all
randomness from it (never the global ``random`` module) so that equal
seeds give bit-identical trajectories.

Built-ins: exhaustive ``grid``, seeded ``random``,
coordinate-descent ``hill-climb`` (with random restarts), and
``successive-halving`` over the ``nranks`` fidelity axis (cheap
small-rank screens promote to expensive large-rank evaluations, which
the replay engine makes affordable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence

from ..errors import TuneError
from .space import Candidate, SearchSpace

__all__ = [
    "EvalResult",
    "Strategy",
    "register_strategy",
    "get_strategy",
    "list_strategies",
    "GridStrategy",
    "RandomStrategy",
    "HillClimbStrategy",
    "SuccessiveHalvingStrategy",
]


@dataclass(frozen=True)
class EvalResult:
    """One scored candidate, as fed back to a strategy via ``tell``."""

    candidate: Candidate
    key: str  # SearchSpace.candidate_key(candidate)
    objective: float  # lower is better, always
    cached: bool  # True when no simulation ran for it
    step: int  # 0-based evaluation index in the tune run


class Strategy(Protocol):
    """The ask/tell protocol every strategy implements."""

    def ask(self, history: Sequence[EvalResult]) -> List[Candidate]:
        """Propose the next candidates; ``[]`` ends the search."""
        ...

    def tell(self, results: Sequence[EvalResult]) -> None:
        """Record scored candidates (possibly a truncated batch)."""
        ...


# --------------------------------------------------------------- registry

_STRATEGIES: Dict[str, Callable[..., Strategy]] = {}


def register_strategy(
    name: str,
    factory: Callable[..., Strategy],
    *,
    overwrite: bool = False,
) -> None:
    """Register a strategy factory under ``name``.

    ``factory(space, rng, budget, **params)`` must return an object
    implementing :class:`Strategy`.  Mirrors the network / collective /
    variant registries: re-registering an existing name raises unless
    ``overwrite=True``.
    """
    if not name or not isinstance(name, str):
        raise TuneError(f"strategy name must be a non-empty string: {name!r}")
    if name in _STRATEGIES and not overwrite:
        raise TuneError(
            f"strategy {name!r} is already registered; pass "
            f"overwrite=True to replace it"
        )
    if not callable(factory):
        raise TuneError(f"strategy factory for {name!r} is not callable")
    _STRATEGIES[name] = factory


def get_strategy(name: str) -> Callable[..., Strategy]:
    """The registered factory for ``name`` (raises listing known names)."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise TuneError(
            f"unknown strategy {name!r}; registered: {list_strategies()}"
        ) from None


def list_strategies() -> List[str]:
    """Sorted names of all registered strategies."""
    return sorted(_STRATEGIES)


# -------------------------------------------------------------- built-ins


class GridStrategy:
    """Exhaustive enumeration in :meth:`SearchSpace.grid` order — the
    same cross-product order ``expand_spec`` walks, deduplicated by
    canonical form, so a full-budget grid tune is provably the sweep
    the corresponding :class:`~repro.harness.sweep.SweepSpec` runs."""

    def __init__(self, space: SearchSpace, rng, budget: int) -> None:
        self._queue = space.grid()
        self._told = 0

    def ask(self, history: Sequence[EvalResult]) -> List[Candidate]:
        return list(self._queue[self._told:])

    def tell(self, results: Sequence[EvalResult]) -> None:
        self._told += len(results)


class RandomStrategy:
    """Seeded uniform random search without replacement.

    Proposes ``batch`` unseen candidates per round (rejection-sampling
    against everything already proposed or scored, with an exact grid
    scan as the fallback once sampling keeps colliding), so no budget
    is ever spent re-measuring a candidate the cache already holds
    *within the same run*; across runs the cache handles it.
    """

    def __init__(
        self, space: SearchSpace, rng, budget: int, *, batch: int = 8
    ) -> None:
        if batch < 1:
            raise TuneError(f"random search batch must be >= 1, got {batch}")
        self.space = space
        self.rng = rng
        self.batch = batch
        self._seen: set = set()

    def ask(self, history: Sequence[EvalResult]) -> List[Candidate]:
        out: List[Candidate] = []
        misses = 0
        while len(out) < self.batch and misses < 16 * self.batch:
            cand = self.space.sample(self.rng)
            key = self.space.candidate_key(cand)
            if key in self._seen:
                misses += 1
                continue
            self._seen.add(key)
            out.append(cand)
        if not out:
            # sampling saturated: exact sweep for any stragglers
            for cand in self.space.grid():
                key = self.space.candidate_key(cand)
                if key not in self._seen:
                    self._seen.add(key)
                    out.append(cand)
                    if len(out) == self.batch:
                        break
        return out

    def tell(self, results: Sequence[EvalResult]) -> None:
        for res in results:
            self._seen.add(res.key)


class HillClimbStrategy:
    """Coordinate-descent hill-climb with seeded random restarts.

    Starts at the space's deterministic default candidate, then sweeps
    one axis at a time (all alternate values of that axis, everything
    else fixed), moving whenever some move strictly improves the
    objective.  A full cycle through every axis with no improvement is
    a local optimum; the strategy then restarts from a random unseen
    candidate.  All already-scored candidates are answered from an
    internal memo, so the climb never re-asks the driver for a point
    it has seen — mirroring how the sweep cache answers across runs.
    """

    def __init__(self, space: SearchSpace, rng, budget: int) -> None:
        self.space = space
        self.rng = rng
        self._scores: Dict[str, float] = {}
        self._current: Optional[Candidate] = None
        self._axis_cycle = [a.name for a in space.axes if len(a.values) > 1]
        self._axis_idx = 0
        self._stalled = 0
        self._started = False
        self._exhausted = False

    def _key(self, cand: Candidate) -> str:
        return self.space.candidate_key(cand)

    def ask(self, history: Sequence[EvalResult]) -> List[Candidate]:
        if self._exhausted or not self._axis_cycle:
            return []
        while True:
            if self._current is None:
                start = self._next_start()
                if start is None:
                    self._exhausted = True
                    return []
                if self._key(start) not in self._scores:
                    return [start]
                self._current = start
                continue
            moves = self.space.axis_moves(
                self._current, self._axis_cycle[self._axis_idx]
            )
            unseen = [m for m in moves if self._key(m) not in self._scores]
            if unseen:
                return unseen
            self._advance(moves)
            if self._exhausted:
                return []

    def tell(self, results: Sequence[EvalResult]) -> None:
        for res in results:
            self._scores[res.key] = res.objective
        if self._current is None and self._started and results:
            # the start candidate just got scored; adopt it
            self._current = dict(results[0].candidate)

    def _next_start(self) -> Optional[Candidate]:
        if not self._started:
            self._started = True
            return self.space.default_candidate()
        # random restart: an unseen candidate, rejection-sampled with an
        # exact grid scan once the space is nearly covered
        for _ in range(128):
            cand = self.space.sample(self.rng)
            if self._key(cand) not in self._scores:
                return cand
        for cand in self.space.grid():
            if self._key(cand) not in self._scores:
                return cand
        return None

    def _advance(self, moves: List[Candidate]) -> None:
        """Every move of the current axis is scored: take the best one
        if it strictly improves, then rotate to the next axis (or
        restart after a full stalled cycle)."""
        cur_key = self._key(self._current)
        cur_obj = self._scores.get(cur_key, math.inf)
        best = min(
            moves,
            key=lambda m: (self._scores[self._key(m)], self._key(m)),
            default=None,
        )
        if best is not None and self._scores[self._key(best)] < cur_obj:
            self._current = best
            self._stalled = 0
        else:
            self._stalled += 1
        self._axis_idx = (self._axis_idx + 1) % len(self._axis_cycle)
        if self._stalled >= len(self._axis_cycle):
            self._current = None  # local optimum -> restart
            self._stalled = 0
            self._axis_idx = 0


class SuccessiveHalvingStrategy:
    """Successive halving over the ``nranks`` fidelity axis.

    Rank count is the cost axis — a 1024-rank evaluation costs orders
    of magnitude more than an 8-rank one even under the replay engine —
    so the classic multi-fidelity move applies: screen a wide cohort at
    the smallest rank count, promote the top ``1/eta`` fraction to the
    next rung, and only the final survivors pay full price.  Requires
    an integer ``nranks`` axis with at least two values (the rungs,
    ascending).
    """

    def __init__(
        self, space: SearchSpace, rng, budget: int, *, eta: int = 2
    ) -> None:
        axis = space.axis("nranks")
        if axis is None or len(axis.values) < 2:
            raise TuneError(
                "successive-halving needs an nranks axis with at least "
                "two values (the fidelity rungs); declare one, e.g. "
                "nranks=(4, 16, 64)"
            )
        if eta < 2:
            raise TuneError(f"successive-halving eta must be >= 2, got {eta}")
        self.space = space
        self.rng = rng
        self.eta = eta
        self._rungs = sorted(axis.values)
        self._rung_idx = 0
        # size the first cohort so the whole ladder roughly fits the
        # budget: sum_r n0/eta^r over R rungs ~= budget
        R = len(self._rungs)
        geom = sum(eta ** -r for r in range(R))
        self._cohort = self._initial_cohort(
            max(eta ** (R - 1), int(budget / geom)) if budget > 0 else 1
        )
        self._scores: Dict[str, float] = {}
        self._exhausted = False

    def _initial_cohort(self, n0: int) -> List[Candidate]:
        """``n0`` distinct candidates pinned to the lowest rung."""
        low = self._rungs[0]
        out: List[Candidate] = []
        seen: set = set()
        misses = 0
        while len(out) < n0 and misses < 16 * n0:
            cand = self.space.normalize(
                dict(self.space.sample(self.rng), nranks=low)
            )
            key = self.space.candidate_key(cand)
            if key in seen:
                misses += 1
                continue
            seen.add(key)
            out.append(cand)
        if len(out) < n0:
            for cand in self.space.grid():
                cand = self.space.normalize(dict(cand, nranks=low))
                key = self.space.candidate_key(cand)
                if key not in seen:
                    seen.add(key)
                    out.append(cand)
                    if len(out) == n0:
                        break
        return out

    def ask(self, history: Sequence[EvalResult]) -> List[Candidate]:
        while not self._exhausted:
            unseen = [
                c
                for c in self._cohort
                if self.space.candidate_key(c) not in self._scores
            ]
            if unseen:
                return unseen
            self._promote()
        return []

    def tell(self, results: Sequence[EvalResult]) -> None:
        for res in results:
            self._scores[res.key] = res.objective

    def _promote(self) -> None:
        """The whole rung is scored: keep the top ``1/eta`` fraction and
        lift the survivors to the next rank count."""
        if self._rung_idx + 1 >= len(self._rungs) or not self._cohort:
            self._exhausted = True
            return
        ranked = sorted(
            self._cohort,
            key=lambda c: (
                self._scores[self.space.candidate_key(c)],
                self.space.candidate_key(c),
            ),
        )
        keep = ranked[: max(1, math.ceil(len(ranked) / self.eta))]
        self._rung_idx += 1
        rung = self._rungs[self._rung_idx]
        promoted: List[Candidate] = []
        seen: set = set()
        for cand in keep:
            lifted = self.space.normalize(dict(cand, nranks=rung))
            key = self.space.candidate_key(lifted)
            if key not in seen:
                seen.add(key)
                promoted.append(lifted)
        self._cohort = promoted


register_strategy("grid", GridStrategy)
register_strategy("random", RandomStrategy)
register_strategy("hill-climb", HillClimbStrategy)
register_strategy("successive-halving", SuccessiveHalvingStrategy)
