"""``repro.api`` — the typed library surface of the reproduction.

One front door: construct a :class:`Session` (optionally from an
:class:`ExecutionContext`), then drive the whole pipeline through its
methods with frozen request objects::

    from repro.api import Job, Session

    session = Session(network="gmnet", cache_dir=".cache", jobs=4)
    measurement = session.measure(Job(program=source, nranks=8))
    verdict = session.verify(source)
    result = session.sweep(spec)

See :mod:`repro.api.session` for the façade and
:mod:`repro.api.context` for the request dataclasses and their
inheritance rules.
"""

from .context import (  # noqa: F401
    UNSET,
    CompareRequest,
    ExecutionContext,
    Job,
    VerifyRequest,
)
from .session import Session, VerifyResult, default_session  # noqa: F401

__all__ = [
    "Session",
    "ExecutionContext",
    "Job",
    "CompareRequest",
    "VerifyRequest",
    "VerifyResult",
    "UNSET",
    "default_session",
]
