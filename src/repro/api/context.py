"""Typed request objects of the :mod:`repro.api` façade.

Every class here is a **frozen dataclass**: a request is an immutable
value the caller builds once and hands to a :class:`~repro.api.Session`
method — there is no kwargs plumbing to thread a new axis through.  When
the pipeline grows an axis (say, a fault model), it becomes one new
field on :class:`ExecutionContext` (the session-wide default) and, if it
is overridable per call, one on the request objects — nothing else in
the repo changes.

Inheritance rules
-----------------

A per-request field set to ``None`` means *inherit the session's
:class:`ExecutionContext`*.  The one exception is ``collective``, where
``None`` is itself meaningful (the registry's default algorithms); those
fields default to the :data:`UNSET` sentinel instead, so ``None`` can
still be passed explicitly to force the registry defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from ..interp.procedures import ExternalRegistry
from ..lang.ast_nodes import SourceFile
from ..runtime.collectives import CollectiveSpec
from ..runtime.costmodel import DEFAULT_COST_MODEL, CostModel
from ..runtime.network import NetworkModel
from ..transform.options import TransformOptions
from ..transform.pipeline import Pipeline

__all__ = [
    "UNSET",
    "ExecutionContext",
    "Job",
    "CompareRequest",
    "VerifyRequest",
]


class _Unset:
    """Sentinel for 'inherit from the session' where ``None`` is taken."""

    _instance: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"

    def __bool__(self) -> bool:
        return False


#: The "inherit from the session" marker (see the module docstring).
UNSET = _Unset()

NetworkLike = Union[str, NetworkModel]
VariantLike = Union[str, Pipeline]


@dataclass(frozen=True)
class ExecutionContext:
    """Session-wide execution defaults, resolved once per Session.

    ``network`` and ``collective`` may be registry *names*; the Session
    resolves them against :mod:`repro.runtime.network` /
    :mod:`repro.runtime.collectives` at construction, paying the lookup
    once.  The network resolves to a model *instance* (immune to later
    registry mutation); the collective spec resolves to a full suite of
    algorithm *names*, whose implementations the simulator still looks
    up per run.  ``cache_dir`` (a directory path or an existing
    :class:`~repro.harness.sweep.SweepCache`) enables the
    content-addressed result cache; ``jobs`` > 1 gives the session a
    persistent process pool that is reused across calls.
    """

    network: NetworkLike = "gmnet"
    collective: CollectiveSpec = None
    cost_model: CostModel = DEFAULT_COST_MODEL
    cache_dir: Union[None, str, Path, Any] = None  # Any: a SweepCache
    jobs: Optional[int] = None
    detect_races: bool = True
    verify: bool = True
    #: default transformation variant of prepare/compare/verify/
    #: transform — a registered pipeline name or a Pipeline instance,
    #: resolved once at Session construction like ``network``
    variant: VariantLike = "prepush"
    #: simulation engine selection (DESIGN.md §10): ``"auto"`` replays
    #: one recorded trace for all ranks when the program is provably
    #: rank-symmetric and silently falls back to full per-rank
    #: interpretation otherwise; ``"replay"`` forces replay (raising
    #: :class:`~repro.errors.EngineModeError` on asymmetric programs);
    #: ``"full"`` always interprets every rank.  All three produce
    #: bit-identical results and share cache entries.
    engine_mode: str = "auto"
    #: default RNG seed for seeded workflows (today: the
    #: :mod:`repro.tune` strategy RNG).  ``None`` means "unseeded
    #: default" — consumers fall back to a fixed seed of 0 so runs stay
    #: reproducible even when nobody asked.  The simulation itself is
    #: deterministic and ignores this.
    seed: Optional[int] = None


@dataclass(frozen=True)
class Job:
    """One simulation request: a program on ``nranks`` virtual ranks.

    Only ``program`` and ``nranks`` are required; everything else
    inherits the session's :class:`ExecutionContext` (see the module
    docstring for the ``None``/``UNSET`` convention).

    ``variant`` is the one deliberate exception to the inheritance
    rule: ``None`` means *run the program exactly as given* — NOT
    "inherit the context's variant" — because a raw Job is a
    simulation request, not a workload comparison.  Set it (a
    registered pipeline name or a Pipeline) to have the session
    transform the program first; the pipeline's identity and the
    ``options`` then travel into the job's cache fingerprint.
    """

    program: Union[str, SourceFile]
    nranks: int
    network: Optional[NetworkLike] = None
    collective: Union[_Unset, CollectiveSpec] = UNSET
    cost_model: Optional[CostModel] = None
    externals: Optional[ExternalRegistry] = None
    detect_races: Optional[bool] = None
    label: str = ""
    variant: Optional[VariantLike] = None
    options: Optional[TransformOptions] = None
    #: ``None`` inherits the context's ``engine_mode``
    engine_mode: Optional[str] = None


@dataclass(frozen=True)
class CompareRequest:
    """Transform one workload and measure original vs. transformed.

    ``verify=None`` inherits the context's ``verify`` flag (§4
    equivalence check of the pair before measuring); ``variant=None``
    inherits the context's default transformation variant.  The knobs
    may be given either as one frozen
    :class:`~repro.transform.options.TransformOptions` (``options=``)
    or through the legacy ``tile_size``/``interchange`` fields — the
    Session folds the legacy pair into an options object; setting
    ``options`` *and* a non-default legacy field raises.
    """

    app: Any  # an AppSpec from repro.apps
    tile_size: Union[int, str] = "auto"
    interchange: str = "auto"
    verify: Optional[bool] = None
    network: Optional[NetworkLike] = None
    collective: Union[_Unset, CollectiveSpec] = UNSET
    cost_model: Optional[CostModel] = None
    variant: Optional[VariantLike] = None
    options: Optional[TransformOptions] = None


@dataclass(frozen=True)
class VerifyRequest:
    """Transform a source program and check §4 output equivalence.

    ``oracle`` is forwarded to the transformation pipeline for the
    semi-automatic workflow (§3.1).  ``check=True`` raises
    :class:`~repro.errors.VerificationError` on mismatch instead of
    returning a failing report.  ``variant``/``options`` follow the
    same rules as :class:`CompareRequest`.
    """

    program: Union[str, SourceFile]
    nranks: int = 8
    tile_size: Union[int, str] = "auto"
    interchange: str = "auto"
    oracle: Any = None
    network: Optional[NetworkLike] = None
    collective: Union[_Unset, CollectiveSpec] = UNSET
    cost_model: Optional[CostModel] = None
    externals: Optional[ExternalRegistry] = None
    check: bool = False
    variant: Optional[VariantLike] = None
    options: Optional[TransformOptions] = None
