"""The :class:`Session` façade — one front door to the whole pipeline.

Everything the paper's workflow does (pre-push transformation, virtual-
cluster simulation, §4 equivalence checking, declarative sweeps) is
reachable through one object::

    from repro import Job, Session

    with Session(network="gmnet", cache_dir=".cache", jobs=4) as s:
        m = s.measure(Job(program=source, nranks=8))
        result = s.verify(source)           # transform + §4 check
        table_res = s.sweep(spec)           # cached, pooled

A Session resolves registry *names* (network scenario, collective
algorithms) exactly once, at construction; owns the content-addressed
:class:`~repro.harness.sweep.SweepCache`; and lazily creates one
persistent process pool reused by every :meth:`run_many` / :meth:`sweep`
call.  That amortization is what makes the library embeddable in a
long-lived server: per-request cost is the simulation itself, not
registry lookups or pool startup.

The legacy kwargs entry points (``run_cluster``, ``measure``,
``run_pair``, ``run_sweep``) survive as deprecation shims delegating to
:func:`default_session`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Sequence, Union

from ..apps.base import AppSpec
from ..harness.runner import (
    Measurement,
    PairResult,
    PreparedApp,
    measurement_from_run,
)
from ..harness.sweep import (
    SweepCache,
    SweepResult,
    SweepSpec,
    _as_cache,
    _execute_sweep,
)
from ..interp.runner import (
    ClusterJob,
    ClusterRun,
    RunBatch,
    execute_job,
    run_many,
)
from ..errors import ReproError
from ..lang.ast_nodes import SourceFile
from ..runtime.collectives import CollectiveSpec, resolve_suite
from ..runtime.costmodel import CostModel
from ..runtime.network import NetworkModel, resolve_model
from ..transform.options import TransformOptions, fold_legacy_options
from ..transform.pipeline import (
    Pipeline,
    PipelineReport,
    resolve_variant,
    variant_identity,
    variant_label,
)
from ..transform.prepush import TransformReport
from ..verify import EquivalenceReport, verify_transform
from .context import (
    UNSET,
    CompareRequest,
    ExecutionContext,
    Job,
    NetworkLike,
    VerifyRequest,
)

__all__ = ["Session", "VerifyResult", "default_session"]

#: legal values of ``ExecutionContext.engine_mode`` / ``Job.engine_mode``
ENGINE_MODES = ("auto", "replay", "full")


@dataclasses.dataclass(frozen=True)
class VerifyResult:
    """Response of :meth:`Session.verify`: the §4 verdict plus the
    transformation that produced the checked program."""

    equivalence: EquivalenceReport
    transform: TransformReport

    @property
    def equivalent(self) -> bool:
        return self.equivalence.equivalent

    @property
    def speedup(self) -> float:
        return self.equivalence.speedup


class Session:
    """A configured execution environment for the whole pipeline.

    Construct from an :class:`~repro.api.ExecutionContext`, keyword
    overrides of one, or both (keywords win)::

        Session()                                  # all defaults
        Session(network="rdma-100g", jobs=4)
        Session(ExecutionContext(collective="bruck"), cache_dir=".c")

    Registry names in the context are resolved **here, once**: the
    resolved :class:`~repro.runtime.network.NetworkModel` instance and
    the full per-collective algorithm suite are attributes, so no
    method call pays a registry lookup for inherited fields.  For the
    network axis that also makes the session immune to later registry
    mutation (the model *instance* is stored); for the collective axis
    the suite pins algorithm **names** — which algorithm implements
    each collective — while the named implementations are still looked
    up at simulation time, so overwriting (or deleting) a registered
    algorithm does affect a live session.  Per-request overrides (a
    :class:`~repro.api.Job` naming its own network) are resolved per
    call, against the registries as they are then.

    The session owns two amortized resources: the sweep cache
    (:attr:`cache`, shared by every :meth:`sweep` call) and a lazily
    created persistent process pool (when ``jobs`` > 1), reused across
    :meth:`run_many`/:meth:`sweep` calls and released by :meth:`close`
    or the context-manager exit.
    """

    def __init__(
        self,
        context: Optional[ExecutionContext] = None,
        **overrides: Any,
    ) -> None:
        if context is None:
            context = ExecutionContext()
        if overrides:
            context = dataclasses.replace(context, **overrides)
        self.context = context
        # registry names resolve exactly once, here
        self.network: NetworkModel = resolve_model(context.network)
        self.collective_suite: Dict[str, str] = resolve_suite(
            context.collective
        )
        self.variant_pipeline: Pipeline = resolve_variant(context.variant)
        self.engine_mode: str = self._check_engine_mode(context.engine_mode)
        self.cost_model: CostModel = context.cost_model
        self.cache: Optional[SweepCache] = _as_cache(context.cache_dir)
        self.jobs: Optional[int] = context.jobs
        self.seed: Optional[int] = context.seed
        self._executor = None
        self._executor_failed = False

    # ------------------------------------------------------- resources

    def pool(self):
        """The session's persistent process pool, created on first use.

        ``None`` when the context asked for no parallelism (``jobs``
        absent or < 2) or when the pool failed once (sandboxes without
        working multiprocessing); callers then run serially.  Creation
        includes a round-trip health probe: environments that block
        process spawning typically fail at first *submit*, not at
        construction, and without the probe every later batch would
        re-submit to a dead pool.  A pool whose workers die mid-life
        (``BrokenProcessPool``) is likewise retired for good.
        """
        if self.jobs is None or self.jobs < 2 or self._executor_failed:
            return None
        if self._executor is not None and getattr(
            self._executor, "_broken", False
        ):
            self._executor.shutdown(wait=False)
            self._executor = None
            self._executor_failed = True
            return None
        if self._executor is None:
            try:
                from concurrent.futures import ProcessPoolExecutor

                executor = ProcessPoolExecutor(max_workers=self.jobs)
            except Exception:
                self._executor_failed = True
                return None
            try:
                executor.submit(int).result(timeout=60)
            except Exception:
                executor.shutdown(wait=False)
                self._executor_failed = True
                return None
            self._executor = executor
        return self._executor

    def _processes(self) -> Optional[int]:
        """The ``processes=`` fallback for :func:`run_many`: ``None``
        once the pool is retired, so batches go straight to the serial
        path instead of rebuilding a throwaway pool per call."""
        return None if self._executor_failed else self.jobs

    def close(self) -> None:
        """Release the process pool (idempotent; the session remains
        usable — a later pooled call simply recreates the pool)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------ resolution

    def _resolve_network(self, value: Optional[NetworkLike]) -> NetworkModel:
        return self.network if value is None else resolve_model(value)

    def _resolve_collective(self, value: Any) -> Dict[str, str]:
        if value is UNSET:
            return self.collective_suite
        return resolve_suite(value)

    def _resolve_cost_model(self, value: Optional[CostModel]) -> CostModel:
        return self.cost_model if value is None else value

    def _resolve_variant(self, value: Any) -> Pipeline:
        return (
            self.variant_pipeline if value is None else resolve_variant(value)
        )

    @staticmethod
    def _check_engine_mode(value: str) -> str:
        if value not in ENGINE_MODES:
            raise ReproError(
                f"unknown engine_mode {value!r} (expected one of "
                f"{', '.join(repr(m) for m in ENGINE_MODES)})"
            )
        return value

    def _resolve_engine_mode(self, value: Optional[str]) -> str:
        return (
            self.engine_mode if value is None else self._check_engine_mode(value)
        )

    @staticmethod
    def _resolve_options(request: Any) -> TransformOptions:
        """One :class:`TransformOptions` from a request's ``options``
        field or its legacy ``tile_size``/``interchange`` pair (the
        shared :func:`~repro.transform.options.fold_legacy_options`
        rule: both at once raises)."""
        return fold_legacy_options(
            request.options,
            request.tile_size,
            request.interchange,
            exc=ReproError,
        )

    def cluster_job(self, job: Job) -> ClusterJob:
        """Resolve one :class:`~repro.api.Job` against this session into
        the engine's :class:`~repro.interp.runner.ClusterJob`.

        A job naming a transformation ``variant`` is transformed here —
        the resolved program plus the pipeline's identity (which
        :func:`~repro.interp.runner.job_fingerprint` folds into the
        cache key) go into the engine job.
        """
        program = job.program
        identity = None
        if job.variant is not None:
            pipeline = resolve_variant(job.variant)
            options = (
                job.options if job.options is not None else TransformOptions()
            )
            # only .source is consumed here; skip the per-pass snapshots
            report = pipeline.run(program, options, snapshots=False)
            if not report.changed and (
                report.rejections
                or not (pipeline.partial or pipeline.empty)
            ):
                # the caller asked for a transformation and none
                # happened — either a full-rewrite variant found
                # nothing, or a site was outright rejected; running
                # the original instead would silently measure the
                # wrong program
                raise ReproError(
                    f"variant {pipeline.name or 'pipeline'!r} "
                    f"transformed nothing in job "
                    f"{job.label or job.nranks!r}:\n  "
                    + "\n  ".join(
                        r.reason for r in report.rejections
                    )
                )
            program = report.source
            identity = variant_identity(pipeline, options)
        elif job.options is not None:
            raise ReproError(
                "Job.options only configures a transformation; set "
                "Job.variant to name the pipeline it applies to"
            )
        return ClusterJob(
            program=program,
            nranks=job.nranks,
            network=self._resolve_network(job.network),
            cost_model=self._resolve_cost_model(job.cost_model),
            detect_races=(
                self.context.detect_races
                if job.detect_races is None
                else job.detect_races
            ),
            externals=job.externals,
            label=job.label,
            collective=self._resolve_collective(job.collective),
            variant=identity,
            engine_mode=self._resolve_engine_mode(job.engine_mode),
        )

    # ------------------------------------------------------- execution

    def run(self, job: Job) -> ClusterRun:
        """Simulate one :class:`~repro.api.Job`; the raw per-rank result."""
        return execute_job(self.cluster_job(job))

    def run_many(self, jobs: Sequence[Job]) -> RunBatch:
        """Simulate independent jobs, sharded over the session pool."""
        executor = self.pool()
        return run_many(
            [self.cluster_job(j) for j in jobs],
            processes=self._processes(),
            executor=executor,
        )

    def measure(self, job: Job) -> Measurement:
        """Simulate one job and fold its stats into a
        :class:`~repro.harness.runner.Measurement`."""
        resolved = self.cluster_job(job)
        run = execute_job(resolved)
        return measurement_from_run(
            run,
            network=resolved.network,
            label=job.label,
            collective=resolved.collective,
        )

    def transform(
        self,
        program: Union[str, SourceFile],
        *,
        variant: Union[None, str, Pipeline] = None,
        options: Optional[TransformOptions] = None,
        oracle: Any = None,
        snapshots: bool = True,
    ) -> PipelineReport:
        """Run a transformation pipeline over a bare program.

        ``variant=None`` inherits the session's default
        (``ExecutionContext.variant``, resolved at construction); the
        returned :class:`~repro.transform.pipeline.PipelineReport`
        carries the per-pass chain and — unless ``snapshots=False`` —
        the intermediate program texts.
        """
        pipeline = self._resolve_variant(variant)
        return pipeline.run(
            program,
            options if options is not None else TransformOptions(),
            oracle=oracle,
            snapshots=snapshots,
        )

    def prepare(
        self, request: Union[CompareRequest, AppSpec]
    ) -> PreparedApp:
        """Transform (and optionally §4-check) one workload for reuse
        across measurements — the cached half of :meth:`compare`.

        The returned :class:`~repro.harness.runner.PreparedApp` exposes
        the full per-pass report chain on ``.transform`` (a
        :class:`~repro.transform.pipeline.PipelineReport`) instead of
        discarding it.
        """
        request = self._as_compare(request)
        pipeline = self._resolve_variant(request.variant)
        return PreparedApp(
            request.app,
            options=self._resolve_options(request),
            variant=pipeline,
            verify=(
                self.context.verify
                if request.verify is None
                else request.verify
            ),
            cost_model=self._resolve_cost_model(request.cost_model),
        )

    def compare(
        self, request: Union[CompareRequest, AppSpec]
    ) -> PairResult:
        """Measure one workload original vs. pre-pushed on one network."""
        request = self._as_compare(request)
        prepared = self.prepare(request)
        return prepared.run_on(
            self._resolve_network(request.network),
            collective=self._resolve_collective(request.collective),
        )

    def verify(
        self, request: Union[VerifyRequest, str, SourceFile]
    ) -> VerifyResult:
        """Transform a program and check §4 output equivalence.

        Accepts a bare program (source text or AST) as shorthand for
        ``VerifyRequest(program=...)`` with its defaults.  Raises
        :class:`~repro.errors.VerificationError` when nothing in the
        program is transformable (there would be nothing to verify).
        """
        if not isinstance(request, VerifyRequest):
            request = VerifyRequest(program=request)
        equivalence, report = verify_transform(
            request.program,
            request.nranks,
            options=self._resolve_options(request),
            variant=self._resolve_variant(request.variant),
            oracle=request.oracle,
            network=self._resolve_network(request.network),
            cost_model=self._resolve_cost_model(request.cost_model),
            externals=request.externals,
            collective=self._resolve_collective(request.collective),
            check=request.check,
        )
        return VerifyResult(equivalence=equivalence, transform=report)

    def sweep(
        self, specs: Union[SweepSpec, Sequence[SweepSpec]]
    ) -> SweepResult:
        """Run declarative sweep specs through this session's cache and
        pool (see :mod:`repro.harness.sweep`).  A warm cache performs
        zero simulations; repeated calls reuse the same pool.

        Specs that leave ``engine_mode`` unset (``None``) inherit the
        session's; a spec naming its own mode keeps it.  Either way the
        cache keys are unaffected (all modes are bit-identical)."""
        if isinstance(specs, SweepSpec):
            specs = [specs]
        specs = [
            s
            if s.engine_mode is not None
            else dataclasses.replace(s, engine_mode=self.engine_mode)
            for s in specs
        ]
        executor = self.pool()
        return _execute_sweep(
            specs,
            jobs=self._processes(),
            cache=self.cache,
            executor=executor,
        )

    def tune(
        self,
        space: Any,
        *,
        strategy: str = "hill-climb",
        budget: int = 32,
        objective: Any = "time",
        seed: Optional[int] = None,
        strategy_params: Optional[Dict[str, Any]] = None,
        trajectory_path: Optional[str] = None,
        on_step: Optional[Any] = None,
    ) -> "Any":
        """Search a :class:`~repro.tune.SearchSpace` through this
        session's cache and pool (see :mod:`repro.tune`).

        Every candidate evaluation goes through :meth:`sweep`, so the
        content-addressed cache memoizes the search: re-running a tune
        over a warm cache performs zero simulations and — with the same
        ``seed`` (defaulting to ``ExecutionContext.seed``, then 0) —
        reproduces the trajectory bit-identically.  Returns a
        :class:`~repro.tune.TuneResult`.
        """
        from ..tune.driver import tune as _tune

        return _tune(
            space,
            session=self,
            strategy=strategy,
            budget=budget,
            objective=objective,
            seed=seed,
            strategy_params=strategy_params,
            trajectory_path=trajectory_path,
            on_step=on_step,
        )

    # --------------------------------------------------------- helpers

    @staticmethod
    def _as_compare(
        request: Union[CompareRequest, AppSpec]
    ) -> CompareRequest:
        if isinstance(request, AppSpec):
            return CompareRequest(app=request)
        return request

    def __repr__(self) -> str:
        pool = "up" if self._executor is not None else "down"
        return (
            f"Session(network={self.network.name!r}, "
            f"collective={self.collective_suite!r}, "
            f"variant={variant_label(self.variant_pipeline)!r}, "
            f"engine={self.engine_mode!r}, "
            f"cache={'on' if self.cache else 'off'}, "
            f"jobs={self.jobs}, pool={pool})"
        )


_default: Optional[Session] = None


def default_session() -> Session:
    """The lazily-created shared Session the deprecation shims delegate
    to: default context, no cache, no pool."""
    global _default
    if _default is None:
        _default = Session()
    return _default
