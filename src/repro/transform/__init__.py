"""Source-to-source pre-push transformation (the paper's Compuniformer).

Submodules
----------
``tiling``       tile geometry and the K heuristic
``layout``       static geometry of one alltoall site
``names``        fresh generated-variable names per site
``commgen``      the Figure 4 pairwise communication generator
``direct``       §3.3 direct-pattern analysis + code generation
``indirect``     §3.4 copy-loop elimination
``interchange``  §3.5 node-loop interchange
``prepush``      §3.6 whole-program rewrite (:class:`Compuniformer`)
``options``      the frozen :class:`TransformOptions` knob object
``pipeline``     composable pass pipeline + the variant registry
"""

from .commgen import figure4_loop, peer_from_expr, peer_to_expr  # noqa: F401
from .direct import DirectPlan, analyze_direct  # noqa: F401
from .indirect import IndirectPlan, analyze_indirect  # noqa: F401
from .interchange import (  # noqa: F401
    apply_interchange,
    interchange_legal,
    scalars_privatizable,
)
from .layout import SiteLayout, resolve_layout  # noqa: F401
from .names import SiteNames  # noqa: F401
from .naming import NamePool  # noqa: F401
from .options import (  # noqa: F401
    DEFAULT_TRANSFORM_OPTIONS,
    TransformOptions,
)
from .pipeline import (  # noqa: F401
    CommGenPass,
    IndirectElimPass,
    InterchangePass,
    Pass,
    PassReport,
    PassResult,
    Pipeline,
    PipelineReport,
    TilePass,
    get_variant,
    list_variants,
    register_variant,
    resolve_variant,
    variant_label,
)
from .prepush import (  # noqa: F401
    AUTO,
    Compuniformer,
    SiteReport,
    TransformReport,
    prepush,
)
from .tiling import Tiling, choose_tile_size, divisors, overlap_headroom  # noqa: F401

__all__ = [
    "AUTO",
    "Compuniformer",
    "TransformReport",
    "SiteReport",
    "prepush",
    "TransformOptions",
    "DEFAULT_TRANSFORM_OPTIONS",
    "Pass",
    "PassReport",
    "PassResult",
    "Pipeline",
    "PipelineReport",
    "InterchangePass",
    "TilePass",
    "CommGenPass",
    "IndirectElimPass",
    "register_variant",
    "get_variant",
    "list_variants",
    "resolve_variant",
    "variant_label",
    "Tiling",
    "choose_tile_size",
    "divisors",
    "overlap_headroom",
    "SiteLayout",
    "resolve_layout",
    "SiteNames",
    "NamePool",
    "DirectPlan",
    "analyze_direct",
    "IndirectPlan",
    "analyze_indirect",
    "interchange_legal",
    "apply_interchange",
    "scalars_privatizable",
    "figure4_loop",
    "peer_to_expr",
    "peer_from_expr",
]
