"""Direct-pattern pre-push transformation (paper §3.3, Figures 2 and 4).

The send array is written by one assignment inside the nest ℓ.  The
outermost loop is tiled by ``K``: a guard at the end of its body fires
every K-th iteration, waits for the previous tile's receives, and issues
the asynchronous sends/receives for the subregion the tile finalized.

Two communication schemes (§3.5):

* **Scheme A** (node loop inside the tiled loop): each tile finalizes a
  slice of *every* partition, so the guard runs the paper's Figure 4
  pairwise loop — one isend/irecv per peer per tile.
* **Scheme B** (node loop *is* the tiled loop, e.g. the 1-D kernel of
  Figure 2): each tile finalizes one contiguous block living inside a
  single partition; all ranks send that block to its owner, and the owner
  posts the matching receives (the congestion-prone case the paper
  describes, exercised by Ablation E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import TransformError
from ..analysis.affine import Affine, try_affine
from ..analysis.deps import collect_write_refs
from ..analysis.patterns import Opportunity
from ..lang import builder as b
from ..lang.ast_nodes import ArrayRef, DoLoop, Expr, IntLit, Slice, Stmt
from .layout import SiteLayout
from .names import SiteNames


@dataclass(frozen=True)
class DimAccess:
    """How one array dimension is indexed by the (single) write reference:
    ``coeff * var + offset`` with ``coeff`` in {-1, 0, +1}."""

    var: Optional[str]  # None = constant subscript
    coeff: int
    offset: int


@dataclass
class DirectPlan:
    """Everything needed to emit code for a direct-pattern site."""

    scheme: str  # 'A' or 'B'
    tile_var: str
    tile_lo: int
    tile_hi: int
    tile_size: int
    ntiles: int
    leftover: int
    accesses: List[DimAccess]
    tiled_dim: int  # which As dimension the tiled loop drives
    other: int  # product of extents of dims that are neither tiled nor last
    elems_per_tile_per_partition: int  # scheme A message size
    block_elems: int  # scheme B message size (per full tile)


def analyze_direct(
    opp: Opportunity, layout: SiteLayout, tile_size: int
) -> DirectPlan:
    """Validate the site and compute the tiling/communication geometry."""
    params = opp.params
    nest = opp.nest
    specs = nest.specs(params)

    writes = collect_write_refs([nest.root], opp.send_array, specs, params)
    if len(writes) != 1:
        raise TransformError(
            f"{len(writes)} write references to {opp.send_array!r} in the "
            f"nest; the transformation handles exactly one"
        )
    ref = writes[0].ref

    loop_vars = set(nest.loop_vars)
    bounds: Dict[str, Tuple[int, int]] = {}
    for spec in specs:
        if not (spec.lo.is_constant and spec.hi.is_constant):
            raise TransformError(
                f"bounds of loop {spec.var!r} are not compile-time constants"
            )
        bounds[spec.var] = (spec.lo.const, spec.hi.const)

    accesses: List[DimAccess] = []
    seen_vars: set = set()
    for dim_index, sub in enumerate(ref.subs):
        a = try_affine(sub, params)
        if a is None:
            raise TransformError(
                f"subscript {dim_index + 1} of the write to "
                f"{opp.send_array!r} is not affine"
            )
        driving = [v for v in a.variables if v in loop_vars]
        foreign = [v for v in a.variables if v not in loop_vars]
        if foreign:
            raise TransformError(
                f"subscript {dim_index + 1} references {foreign[0]!r}, which "
                f"is neither a loop variable nor a constant"
            )
        if len(driving) == 0:
            accesses.append(DimAccess(var=None, coeff=0, offset=a.const))
            continue
        if len(driving) > 1:
            raise TransformError(
                f"subscript {dim_index + 1} couples loop variables "
                f"{driving}; coupled subscripts are outside the supported "
                f"pattern"
            )
        v = driving[0]
        c = a.coeff(v)
        if abs(c) != 1:
            raise TransformError(
                f"subscript {dim_index + 1} strides by {c}; only unit "
                f"strides cover the array densely"
            )
        if v in seen_vars:
            raise TransformError(
                f"loop variable {v!r} drives two subscripts (diagonal "
                f"access); unsupported"
            )
        seen_vars.add(v)
        accesses.append(DimAccess(var=v, coeff=c, offset=a.const))

    # --- coverage: the nest must finalize the whole array -------------------
    for dim_index, (acc, (dlo, dhi)) in enumerate(zip(accesses, layout.dims)):
        if acc.var is None:
            if dlo != dhi or acc.offset != dlo:
                raise TransformError(
                    f"dimension {dim_index + 1} of {opp.send_array!r} is not "
                    f"fully written by the nest (constant subscript)"
                )
            continue
        vlo, vhi = bounds[acc.var]
        if acc.coeff == 1:
            span = (vlo + acc.offset, vhi + acc.offset)
        else:
            span = (acc.offset - vhi, acc.offset - vlo)
        if span != (dlo, dhi):
            raise TransformError(
                f"dimension {dim_index + 1} of {opp.send_array!r}: the nest "
                f"writes [{span[0]}, {span[1]}] but the array spans "
                f"[{dlo}, {dhi}]; pre-pushing would send stale elements the "
                f"original code would have finalized"
            )

    # --- choose the tiled loop: the outermost ------------------------------
    tiled = nest.loops[0]
    tile_var = tiled.var
    tile_lo, tile_hi = bounds[tile_var]
    trip = tile_hi - tile_lo + 1
    if not 1 <= tile_size <= trip:
        raise TransformError(
            f"tile size {tile_size} outside [1, {trip}] for loop "
            f"{tile_var!r}"
        )
    tiled_dims = [i for i, acc in enumerate(accesses) if acc.var == tile_var]
    if not tiled_dims:
        raise TransformError(
            f"outermost loop {tile_var!r} does not index "
            f"{opp.send_array!r}; every tile would rewrite the whole array"
        )
    tiled_dim = tiled_dims[0]
    if accesses[tiled_dim].coeff != 1:
        raise TransformError(
            f"outermost loop {tile_var!r} traverses dimension "
            f"{tiled_dim + 1} in reverse; unsupported"
        )

    node_acc = accesses[-1]
    scheme = "B" if tiled_dim == layout.rank - 1 else "A"

    if scheme == "A":
        if node_acc.var is None:
            raise TransformError(
                "the partitioned (last) dimension has a constant subscript"
            )
        # message per peer per tile: K * (other full extents) * planes
        other = 1
        for i, acc in enumerate(accesses):
            if i in (tiled_dim, layout.rank - 1):
                continue
            other *= layout.extents[i]
        per_part = tile_size * other * layout.planes_per_partition
        plan = DirectPlan(
            scheme="A",
            tile_var=tile_var,
            tile_lo=tile_lo,
            tile_hi=tile_hi,
            tile_size=tile_size,
            ntiles=trip // tile_size,
            leftover=trip % tile_size,
            accesses=accesses,
            tiled_dim=tiled_dim,
            other=other,
            elems_per_tile_per_partition=per_part,
            block_elems=0,
        )
    else:
        planes = layout.planes_per_partition
        if planes % tile_size != 0:
            raise TransformError(
                f"tile size {tile_size} does not divide the partition "
                f"thickness {planes}; a tile would straddle two destination "
                f"partitions"
            )
        block = tile_size * layout.lead
        plan = DirectPlan(
            scheme="B",
            tile_var=tile_var,
            tile_lo=tile_lo,
            tile_hi=tile_hi,
            tile_size=tile_size,
            ntiles=trip // tile_size,
            leftover=trip % tile_size,
            accesses=accesses,
            tiled_dim=tiled_dim,
            other=1,
            elems_per_tile_per_partition=0,
            block_elems=block,
        )
    return plan


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def _tile_range_exprs(
    acc: DimAccess, tile_var_expr: Expr, k: int
) -> Tuple[Expr, Expr]:
    """Section bounds of the tiled dimension for the tile ending at the
    current value of the tile variable: [tv + off - K + 1, tv + off]."""
    hi = b.add(tile_var_expr, acc.offset)
    lo = b.add(tile_var_expr, acc.offset - k + 1)
    return lo, hi


def _dim_section(
    acc: DimAccess,
    dim_bounds: Tuple[int, int],
    tile_var_expr: Optional[Expr],
    k: int,
    dim_is_tiled: bool,
) -> Expr:
    if dim_is_tiled:
        assert tile_var_expr is not None
        lo, hi = _tile_range_exprs(acc, tile_var_expr, k)
        return Slice(lo=lo, hi=hi)
    dlo, dhi = dim_bounds
    return Slice(lo=IntLit(value=dlo), hi=IntLit(value=dhi))


def gen_comm_block_a(
    plan: DirectPlan,
    layout: SiteLayout,
    names: SiteNames,
    tile_end_expr: Expr,
    k: int,
    tag_expr: Expr,
    *,
    wait_first: bool = True,
) -> List[Stmt]:
    """Paper Figure 4: pairwise exchange of this tile's per-partition slices.

    ``tile_end_expr`` is the value of the tile variable at the last
    iteration of the tile; ``k`` the (possibly leftover-sized) tile extent.
    """
    planes = layout.planes_per_partition
    count = k * plan.other * planes

    def sections(array: str, peer_expr: Expr) -> ArrayRef:
        subs: List[Expr] = []
        for i, acc in enumerate(plan.accesses):
            if i == layout.rank - 1:
                start = b.add(
                    IntLit(value=layout.last_lo),
                    b.mul(peer_expr, planes),
                )
                end = b.add(
                    b.add(IntLit(value=layout.last_lo), b.mul(peer_expr, planes)),
                    planes - 1,
                )
                subs.append(Slice(lo=start, hi=end))
            else:
                subs.append(
                    _dim_section(
                        acc,
                        layout.dims[i],
                        b.clone_expr(tile_end_expr),
                        k,
                        dim_is_tiled=(i == plan.tiled_dim),
                    )
                )
        return ArrayRef(name=array, subs=subs)

    from .commgen import figure4_loop, wait_previous_tile

    body: List[Stmt] = []
    if wait_first:
        body.extend(wait_previous_tile(names))
    body.append(
        figure4_loop(
            names,
            layout.nprocs,
            lambda peer: sections(layout.as_name, peer),
            lambda peer: sections(layout.ar_name, peer),
            count,
            tag_expr,
        )
    )

    # self partition: local copy loops
    body.append(b.comment(" self partition"))
    body.extend(
        _self_copy_loops(plan, layout, names, tile_end_expr, k)
    )
    return body


def _self_copy_loops(
    plan: DirectPlan,
    layout: SiteLayout,
    names: SiteNames,
    tile_end_expr: Expr,
    k: int,
) -> List[Stmt]:
    """Nested loops copying this tile's own-partition slice As -> Ar."""
    planes = layout.planes_per_partition
    idx_vars = names.copy_vars(layout.rank)
    subs: List[Expr] = [b.var(v) for v in idx_vars]
    assign = b.assign(
        ArrayRef(name=layout.ar_name, subs=[b.clone_expr(s) for s in subs]),
        ArrayRef(name=layout.as_name, subs=subs),
    )
    body: List[Stmt] = [assign]
    # build loops innermost-dimension-first so output is column-major order
    for i in range(layout.rank):
        var = idx_vars[i]
        if i == layout.rank - 1:
            start = b.add(
                IntLit(value=layout.last_lo), b.mul(b.var(names.me), planes)
            )
            end = b.add(
                b.add(
                    IntLit(value=layout.last_lo),
                    b.mul(b.var(names.me), planes),
                ),
                planes - 1,
            )
        elif i == plan.tiled_dim:
            start, end = _tile_range_exprs(
                plan.accesses[i], b.clone_expr(tile_end_expr), k
            )
        else:
            dlo, dhi = layout.dims[i]
            start, end = IntLit(value=dlo), IntLit(value=dhi)
        body = [b.do(var, start, end, body)]
    return body


def gen_comm_block_b(
    plan: DirectPlan,
    layout: SiteLayout,
    names: SiteNames,
    tile_end_expr: Expr,
    k: int,
    tag_expr: Expr,
    *,
    wait_first: bool = True,
) -> List[Stmt]:
    """Scheme B: every rank sends the tile's block to its owning node."""
    acc = plan.accesses[-1]
    planes = layout.planes_per_partition
    count = k * layout.lead

    block_start_idx = b.add(tile_end_expr, acc.offset - k + 1)  # last-dim lo

    def start_ref(array: str, last_start: Expr) -> ArrayRef:
        """Element-start reference (Fortran sequence association, Fig. 4)."""
        subs: List[Expr] = []
        for i in range(layout.rank - 1):
            subs.append(IntLit(value=layout.dims[i][0]))
        subs.append(last_start)
        return ArrayRef(name=array, subs=subs)

    body: List[Stmt] = []
    if wait_first:
        body.append(b.comment(" wait for comm of prev. tile to complete"))
        body.append(b.call("mpi_waitall_recvs", b.var(names.ierr)))
    # owner of the block (0-based partition index)
    body.append(
        b.assign(
            b.var(names.to),
            b.div(b.sub(b.clone_expr(block_start_idx), layout.last_lo), planes),
        )
    )
    send = b.call(
        "mpi_isend",
        start_ref(layout.as_name, b.clone_expr(block_start_idx)),
        count,
        names.to,
        tag_expr,
        names.ierr,
    )
    body.append(
        b.if_(b.ne(b.var(names.to), b.var(names.me)), [send])
    )
    # owner posts receives from every peer and copies its own block
    recv_last_start = b.add(
        b.add(
            IntLit(value=layout.last_lo),
            b.mul(b.var(names.from_), planes),
        ),
        b.sub(
            b.sub(b.clone_expr(block_start_idx), layout.last_lo),
            b.mul(b.var(names.me), planes),
        ),
    )
    recv_loop = b.do(
        names.j,
        1,
        layout.nprocs - 1,
        [
            b.assign(
                b.var(names.from_),
                b.mod(
                    b.sub(b.add(layout.nprocs, names.me), names.j),
                    layout.nprocs,
                ),
            ),
            b.call(
                "mpi_irecv",
                start_ref(layout.ar_name, recv_last_start),
                count,
                names.from_,
                b.clone_expr(tag_expr),
                names.ierr,
            ),
        ],
    )
    self_copy = _self_copy_block_b(plan, layout, names, block_start_idx, k)
    body.append(
        b.if_(
            b.eq(b.var(names.to), b.var(names.me)),
            [recv_loop] + self_copy,
        )
    )
    return body


def _self_copy_block_b(
    plan: DirectPlan,
    layout: SiteLayout,
    names: SiteNames,
    block_start_idx: Expr,
    k: int,
) -> List[Stmt]:
    idx_vars = names.copy_vars(layout.rank)
    subs: List[Expr] = [b.var(v) for v in idx_vars]
    assign = b.assign(
        ArrayRef(name=layout.ar_name, subs=[b.clone_expr(s) for s in subs]),
        ArrayRef(name=layout.as_name, subs=subs),
    )
    body: List[Stmt] = [assign]
    for i in range(layout.rank):
        var = idx_vars[i]
        if i == layout.rank - 1:
            start = b.clone_expr(block_start_idx)
            end = b.add(b.clone_expr(block_start_idx), k - 1)
        else:
            dlo, dhi = layout.dims[i]
            start, end = IntLit(value=dlo), IntLit(value=dhi)
        body = [b.do(var, start, end, body)]
    return body
