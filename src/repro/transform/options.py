"""The one frozen options object every transformation path shares.

Before this module existed, ``tile_size`` / ``interchange`` were loose
keyword arguments threaded separately through ``Compuniformer``,
``PreparedApp``, the request dataclasses, and the sweep expansion — and
the sweep cache had to hash each one ad hoc.  :class:`TransformOptions`
collapses them into a single immutable value with a
``canonical_params()`` serialization, exactly like
:meth:`~repro.runtime.network.NetworkModel.canonical_params` and
:meth:`~repro.runtime.costmodel.CostModel.canonical_params`: the same
object configures a :class:`~repro.transform.pipeline.Pipeline` run and
feeds the content-addressed sweep-cache fingerprint
(:func:`~repro.interp.runner.job_fingerprint`), so the two can never
disagree about what was requested.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Union

from ..errors import TransformError

#: Accepted ``tile_size`` sentinel asking for the built-in heuristic.
AUTO = "auto"


@dataclass(frozen=True)
class TransformOptions:
    """Knobs of one transformation run, validated at construction.

    ``tile_size``
        Iterations per tile (the paper's K), or :data:`AUTO` for the
        heuristic in :func:`repro.transform.tiling.choose_tile_size`.
    ``interchange``
        ``"auto"`` interchanges the node loop inward when it is
        outermost and legal (§3.5); ``"never"`` keeps the original loop
        order (Ablation E measures the congestion cost).
    ``max_sites``
        Transform at most this many sites (``None`` = all).
    """

    tile_size: Union[int, str] = AUTO
    interchange: str = "auto"
    max_sites: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.tile_size, str) and self.tile_size != AUTO:
            raise TransformError(
                f"tile_size must be a positive int or {AUTO!r}"
            )
        if isinstance(self.tile_size, int) and self.tile_size < 1:
            raise TransformError(
                f"tile_size {self.tile_size} must be >= 1"
            )
        if self.interchange not in ("auto", "never"):
            raise TransformError(
                f"interchange must be 'auto' or 'never', "
                f"not {self.interchange!r}"
            )
        if self.max_sites is not None and self.max_sites < 1:
            raise TransformError(
                f"max_sites {self.max_sites} must be >= 1 or None"
            )

    def canonical_params(self) -> Dict[str, Union[str, int, None]]:
        """Stable, JSON-safe mapping of every option — field name →
        scalar, no derived values — for the sweep-cache fingerprint
        (DESIGN.md §7/§9).  Two options objects are fingerprint-equal
        exactly when every field matches."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: The all-defaults options every entry point shares.
DEFAULT_TRANSFORM_OPTIONS = TransformOptions()


def fold_legacy_options(
    options: Optional[TransformOptions],
    tile_size: Union[None, int, str] = None,
    interchange: Optional[str] = None,
    *,
    exc: type = TransformError,
) -> TransformOptions:
    """One :class:`TransformOptions` from either form of the knobs.

    The single copy of the folding rule every entry point
    (``Session``, ``PreparedApp``, ``verify_transform``) shares:
    ``options`` wins when it is the only source; giving ``options``
    *and* a non-default legacy ``tile_size``/``interchange`` raises
    ``exc`` — silently preferring one source would run a different
    transformation than the caller asked for.  ``None`` and ``"auto"``
    both mean "legacy knob not given".
    """
    legacy_given = tile_size not in (None, AUTO) or interchange not in (
        None,
        "auto",
    )
    if options is not None:
        if legacy_given:
            raise exc(
                "options= already carries the transformation knobs; "
                "drop the legacy tile_size=/interchange= arguments"
            )
        return options
    return TransformOptions(
        tile_size=AUTO if tile_size is None else tile_size,
        interchange=interchange or "auto",
    )
