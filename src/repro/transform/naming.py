"""Fresh-name generation for inserted variables.

Generated helper variables (``pp_me``, ``pp_j``, tile counters, copy-loop
indices...) must not collide with names the program already uses.  The
``pp_`` prefix follows the tool's name ("pre-push").
"""

from __future__ import annotations

from typing import Set

from ..lang.ast_nodes import (
    ArrayRef,
    FuncCall,
    SourceFile,
    Unit,
    VarRef,
)
from ..lang.symtab import build_symtab


class NamePool:
    """Allocates identifiers unused by the unit."""

    def __init__(self, unit: Unit, prefix: str = "pp_") -> None:
        self.prefix = prefix
        self.used: Set[str] = set()
        table = build_symtab(unit)
        self.used.update(table.symbols)
        self.used.update(table.externals)
        for node in unit.walk():
            if isinstance(node, (VarRef, ArrayRef, FuncCall)):
                self.used.add(node.name)

    def fresh(self, hint: str) -> str:
        """A new name like ``pp_<hint>`` (numbered on collision)."""
        base = f"{self.prefix}{hint}"
        if base not in self.used:
            self.used.add(base)
            return base
        i = 2
        while f"{base}{i}" in self.used:
            i += 1
        name = f"{base}{i}"
        self.used.add(name)
        return name

    def reserve(self, name: str) -> None:
        self.used.add(name)
