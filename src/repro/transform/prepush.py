"""Whole-program pre-push transformation — the **Compuniformer** (§3.6).

Drives the full pipeline on a parsed program:

1. detect transformation opportunities (§3.1–§3.2, ``repro.analysis.patterns``),
2. resolve each site's static geometry (``repro.transform.layout``),
3. optionally interchange the node loop inward when it is outermost and
   the dependences permit (§3.5, ``repro.transform.interchange``),
4. pick or validate the tile size K (``repro.transform.tiling``),
5. rewrite the program following the paper's five steps:

   1. insert the communication code at the end of the body of ℓ
      (guarded to fire every K-th iteration),
   2. insert a blocking wait for the previous tile's receives before it,
   3. insert code after ℓ to exchange leftover elements when K does not
      divide the trip count,
   4. insert a wait for the last blocks before the site of C,
   5. remove C, the original ``MPI_ALLTOALL``.

The entry points are :class:`Compuniformer` (configurable) and the
convenience function :func:`prepush` (one call: text in, text out).
Transformation never mutates the caller's AST — it deep-copies first —
and unsuitable sites are reported, not raised, mirroring the paper's
semi-automatic workflow.

The site-level building blocks (:func:`resolve_tile_size`,
:func:`try_interchange`, :func:`direct_rewrite`,
:func:`indirect_rewrite`, :func:`insert_prolog`) are module-level
functions shared with the composable pass pipeline
(:mod:`repro.transform.pipeline`): the registered ``"prepush"``
pipeline and this monolithic driver run the *same* code generators, so
their outputs cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple, Union

from ..errors import TransformError
from ..analysis.callinfo import Oracle
from ..analysis.loops import loop_chain
from ..analysis.patterns import (
    ALLTOALL_NAMES,
    Opportunity,
    PatternKind,
    Rejection,
    find_opportunities,
)
from ..lang import builder as b
from ..lang.ast_nodes import (
    Expr,
    IntLit,
    Program,
    SourceFile,
    Stmt,
    Subroutine,
    Unit,
)
from ..lang.parser import parse
from ..lang.unparser import unparse
from ..lang.visitor import clone, index_of
from .commgen import final_wait
from .direct import DirectPlan, analyze_direct, gen_comm_block_a, gen_comm_block_b
from .indirect import (
    IndirectPlan,
    analyze_indirect,
    expand_temp_decl,
    gen_send_wait,
    gen_slab_comm,
    gen_slot_assign,
    redirect_producer,
)
from .interchange import apply_interchange, interchange_legal
from .layout import SiteLayout, resolve_layout
from .names import SiteNames
from .naming import NamePool
from .options import AUTO  # noqa: F401  (re-exported; the historic home)
from .tiling import Tiling, choose_tile_size


@dataclass
class SiteReport:
    """What was done to one transformed communication site."""

    unit: str
    send_array: str
    recv_array: str
    kind: PatternKind
    scheme: str  # 'A' (Fig. 4 pairwise), 'B' (owner block), 'slab' (indirect)
    tile_size: int
    trip: int
    ntiles: int
    leftover: int
    interchanged: bool = False
    #: arrays made dead by the rewrite (indirect: As is never written again)
    dead_arrays: Tuple[str, ...] = ()
    notes: List[str] = field(default_factory=list)

    @property
    def comm_rounds(self) -> int:
        """Communication blocks issued per execution of the original C."""
        return self.ntiles + (1 if self.leftover else 0)


@dataclass
class TransformReport:
    """Result of running the Compuniformer over a program."""

    source: SourceFile
    sites: List[SiteReport]
    rejections: List[Rejection]

    @property
    def transformed(self) -> bool:
        return bool(self.sites)

    @property
    def dead_arrays(self) -> Tuple[str, ...]:
        out: List[str] = []
        for s in self.sites:
            out.extend(s.dead_arrays)
        return tuple(out)

    def unparse(self) -> str:
        """The transformed program as Fortran source text."""
        return unparse(self.source)

    def describe(self) -> str:
        """Human-readable summary (what the semi-automatic tool prints)."""
        lines: List[str] = []
        for s in self.sites:
            lines.append(
                f"[{s.unit}] {s.kind.value} pattern on {s.send_array!r} -> "
                f"{s.recv_array!r}: scheme {s.scheme}, K={s.tile_size} "
                f"({s.ntiles} tiles"
                + (f" + leftover {s.leftover}" if s.leftover else "")
                + ")"
                + (" [interchanged]" if s.interchanged else "")
            )
            lines.extend(f"    note: {n}" for n in s.notes)
        for r in self.rejections:
            lines.append(f"rejected alltoall site: {r.reason}")
        if not lines:
            lines.append("no transformable communication sites found")
        return "\n".join(lines)


class Compuniformer:
    """Source-to-source pre-push transformer for mini-Fortran MPI programs.

    Parameters
    ----------
    tile_size:
        Iterations per tile (the paper's K), or ``"auto"`` for the
        heuristic in :func:`repro.transform.tiling.choose_tile_size`.
    oracle:
        Answers "does procedure P mutate argument i?" for procedures whose
        source is unavailable — the paper's semi-automatic user query
        (§3.1).  ``None`` applies the conservative rules only.
    interchange:
        ``"auto"`` interchanges the node loop inward when it is outermost
        and legal (§3.5); ``"never"`` keeps the original loop order (used
        by Ablation E to measure the congestion cost).
    alltoall_names:
        Call names treated as the target collective.
    """

    def __init__(
        self,
        tile_size: Union[int, str] = AUTO,
        *,
        oracle: Optional[Oracle] = None,
        interchange: str = "auto",
        alltoall_names: Sequence[str] = ALLTOALL_NAMES,
        max_sites: Optional[int] = None,
    ) -> None:
        if isinstance(tile_size, str) and tile_size != AUTO:
            raise TransformError(
                f"tile_size must be a positive int or {AUTO!r}"
            )
        if isinstance(tile_size, int) and tile_size < 1:
            raise TransformError(f"tile_size {tile_size} must be >= 1")
        if interchange not in ("auto", "never"):
            raise TransformError(
                f"interchange must be 'auto' or 'never', not {interchange!r}"
            )
        self.tile_size = tile_size
        self.oracle = oracle
        self.interchange = interchange
        self.alltoall_names = tuple(alltoall_names)
        self.max_sites = max_sites

    # ------------------------------------------------------------ public api

    def transform(
        self, program: Union[str, SourceFile]
    ) -> TransformReport:
        """Transform every eligible site; returns a report with a new AST."""
        source = clone(program) if isinstance(program, SourceFile) else parse(program)
        sites: List[SiteReport] = []
        rejections: List[Rejection] = []
        pools: dict = {}
        failed: Set[int] = set()  # ids of call nodes we could not transform

        while self.max_sites is None or len(sites) < self.max_sites:
            opp = self._next_opportunity(source, rejections, failed)
            if opp is None:
                break
            pool = pools.setdefault(id(opp.unit), NamePool(opp.unit))
            try:
                sites.append(self._apply(opp, pool))
            except TransformError as exc:
                failed.add(id(opp.call))
                rejections.append(
                    Rejection(
                        call=opp.call,
                        call_index=opp.call_index,
                        reason=str(exc),
                    )
                )
        return TransformReport(
            source=source, sites=sites, rejections=_dedupe(rejections)
        )

    def transform_text(self, text: str) -> str:
        """Convenience: text in, transformed text out (no report)."""
        return self.transform(text).unparse()

    # ----------------------------------------------------------- opportunity

    def _next_opportunity(
        self,
        source: SourceFile,
        rejections: List[Rejection],
        failed: Set[int],
    ) -> Optional[Opportunity]:
        """First untried opportunity across all program units."""
        for unit in source.units:
            result = find_opportunities(
                source,
                unit=unit,
                oracle=self.oracle,
                alltoall_names=self.alltoall_names,
            )
            for r in result.rejections:
                rejections.append(r)
            for opp in result.opportunities:
                if id(opp.call) not in failed:
                    return opp
        return None

    # ----------------------------------------------------------------- apply

    def _apply(self, opp: Opportunity, pool: NamePool) -> SiteReport:
        layout = resolve_layout(opp)
        names = SiteNames.allocate(opp.unit, pool)
        if opp.kind is PatternKind.DIRECT:
            report = self._apply_direct(opp, layout, names)
        else:
            report = self._apply_indirect(opp, layout, names)
        self._insert_prolog(opp.unit, names)
        return report

    def _insert_prolog(self, unit: Unit, names: SiteNames) -> None:
        insert_prolog(unit, names)

    # ---------------------------------------------------------------- direct

    def _resolve_tile_size(
        self, trip: int, must_divide: int = 0
    ) -> int:
        return resolve_tile_size(self.tile_size, trip, must_divide)

    def _apply_direct(
        self, opp: Opportunity, layout: SiteLayout, names: SiteNames
    ) -> SiteReport:
        # probe the geometry with K=1 (always legal) to learn the scheme
        probe = analyze_direct(opp, layout, tile_size=1)
        interchanged = False
        if (
            probe.scheme == "B"
            and layout.rank >= 2
            and self.interchange == "auto"
        ):
            interchanged = self._try_interchange(opp, probe)
            if interchanged:
                probe = analyze_direct(opp, layout, tile_size=1)

        trip = probe.tile_hi - probe.tile_lo + 1
        must_divide = (
            layout.planes_per_partition if probe.scheme == "B" else 0
        )
        k = self._resolve_tile_size(trip, must_divide)
        plan = analyze_direct(opp, layout, tile_size=k)
        tiling = Tiling(plan.tile_lo, plan.tile_hi, k)
        direct_rewrite(opp, layout, names, plan, k, tiling)

        return SiteReport(
            unit=opp.unit.name,
            send_array=opp.send_array,
            recv_array=opp.recv_array,
            kind=PatternKind.DIRECT,
            scheme=plan.scheme,
            tile_size=k,
            trip=trip,
            ntiles=tiling.ntiles,
            leftover=tiling.leftover,
            interchanged=interchanged,
            notes=list(opp.notes),
        )

    def _try_interchange(self, opp: Opportunity, probe: DirectPlan) -> bool:
        return try_interchange(opp, probe)

    # -------------------------------------------------------------- indirect

    def _apply_indirect(
        self, opp: Opportunity, layout: SiteLayout, names: SiteNames
    ) -> SiteReport:
        assert opp.copy_loop is not None and opp.temp_array is not None
        probe = analyze_indirect(opp, layout, tile_size=1)
        k = self._resolve_tile_size(probe.trip)
        plan = analyze_indirect(opp, layout, tile_size=k)
        names.need_indirect()
        indirect_rewrite(opp, layout, names, plan, k)

        return SiteReport(
            unit=opp.unit.name,
            send_array=opp.send_array,
            recv_array=opp.recv_array,
            kind=PatternKind.INDIRECT,
            scheme="slab",
            tile_size=k,
            trip=plan.trip,
            ntiles=plan.ntiles,
            leftover=plan.leftover,
            dead_arrays=(opp.send_array,),
            notes=list(opp.notes)
            + [
                f"copy loop over {opp.copy_map.trip_count} elements removed"
                if opp.copy_map
                else "copy loop removed"
            ],
        )


# ---------------------------------------------------------------------------
# shared site-level building blocks (used by this driver AND the pass
# pipeline in repro.transform.pipeline — one copy of every code generator)
# ---------------------------------------------------------------------------


def resolve_tile_size(
    tile_size: Union[int, str], trip: int, must_divide: int = 0
) -> int:
    """The requested K validated against one site's geometry (§3.6)."""
    if tile_size == AUTO:
        return choose_tile_size(trip, must_divide=must_divide)
    k = int(tile_size)
    if k > trip:
        raise TransformError(
            f"requested tile size {k} exceeds the {trip}-iteration trip "
            f"count"
        )
    if must_divide and must_divide % k != 0:
        raise TransformError(
            f"requested tile size {k} does not divide the partition "
            f"thickness {must_divide} (scheme B requirement)"
        )
    return k


def try_interchange(opp: Opportunity, probe: DirectPlan) -> bool:
    """§3.5: move the node loop inward when it is outermost and legal.

    Mutates the nest headers in place on success (and refreshes
    ``opp.nest``/``opp.notes``); returns whether the interchange
    happened.
    """
    nest = opp.nest
    if nest.depth < 2:
        return False
    # find an inner loop driving a non-last dimension of the write
    target = None
    for d, acc in enumerate(probe.accesses[:-1]):
        if acc.var is None:
            continue
        for qi, loop in enumerate(nest.loops):
            if qi > 0 and loop.var == acc.var:
                target = qi
                break
        if target is not None:
            break
    if target is None:
        return False
    legal, _reason = interchange_legal(nest, 0, target, opp.params)
    if not legal:
        return False
    opp.nest = apply_interchange(nest, 0, target)
    opp.notes.append(
        f"interchanged loops 1 and {target + 1} to move the node loop "
        f"inward (§3.5)"
    )
    return True


def direct_rewrite(
    opp: Opportunity,
    layout: SiteLayout,
    names: SiteNames,
    plan: DirectPlan,
    k: int,
    tiling: Tiling,
) -> None:
    """§3.6 steps 1–5 for one direct site (the AST mutation itself)."""
    tiled_loop = opp.nest.loops[0]
    tv = plan.tile_var
    ordinal = _ordinal_expr(tv, plan.tile_lo)  # 1-based iteration count
    gen = gen_comm_block_a if plan.scheme == "A" else gen_comm_block_b

    # §3.6 steps 1+2: guarded per-tile communication at the end of ℓ's
    # tiled-loop body, preceded by the previous-tile wait
    comm = gen(
        plan,
        layout,
        names,
        tile_end_expr=b.var(tv),
        k=k,
        tag_expr=b.div(_ordinal_expr(tv, plan.tile_lo), k),
        wait_first=True,
    )
    guard = b.if_(b.eq(b.mod(ordinal, k), 0), comm)
    tiled_loop.body.append(guard)

    # §3.6 steps 3+4+5 at the site of C
    post: List[Stmt] = []
    if tiling.leftover:
        lo, hi = tiling.leftover_range()
        post.append(
            b.comment(" exchange leftover elements (l mod K)")
        )
        post.extend(
            gen(
                plan,
                layout,
                names,
                tile_end_expr=IntLit(value=hi),
                k=tiling.leftover,
                tag_expr=IntLit(value=tiling.ntiles + 1),
                wait_first=True,
            )
        )
    post.extend(final_wait(names))
    _replace_call(opp, post)


def indirect_rewrite(
    opp: Opportunity,
    layout: SiteLayout,
    names: SiteNames,
    plan: IndirectPlan,
    k: int,
) -> None:
    """§3.4 copy-loop elimination for one indirect site (the mutation)."""
    outer = opp.nest.root

    # remove the copy loop ℓcp (§3.4: the aggregation is unnecessary)
    cp_index = index_of(outer.body, opp.copy_loop)
    if cp_index < 0:
        raise TransformError("copy loop vanished before transformation")
    del outer.body[cp_index]

    # At gains a 2K-slot dimension (two banks, double buffering); the
    # producer now fills slab `slot`
    expand_temp_decl(opp.unit, opp.temp_array, 2 * k)
    redirect_producer(opp, names)

    # before the producer: the cyclic slot index
    prod_index = index_of(outer.body, opp.producer_call)
    if prod_index < 0:
        raise TransformError("producer call vanished before transformation")
    outer.body.insert(prod_index, gen_slot_assign(plan, names))

    # end-of-tile guard: wait for the *previous* tile's sends (their
    # bank is rewritten starting next iteration), then send this
    # tile's K slabs from the current bank
    ordinal = _ordinal_expr(plan.outer_var, plan.outer_lo)
    first_global = b.sub(
        _ordinal_expr(plan.outer_var, plan.outer_lo), k - 1
    )
    # bank offset of tile t = mod(t - 1, 2) * K, with t = ordinal / K
    bank = b.mul(
        b.mod(b.sub(b.div(_ordinal_expr(plan.outer_var, plan.outer_lo), k), 1), 2),
        k,
    )
    comm = gen_send_wait(names) + gen_slab_comm(
        plan,
        layout,
        names,
        opp,
        slots=k,
        first_global_expr=first_global,
        slot_base_expr=bank,
    )
    outer.body.append(b.if_(b.eq(b.mod(ordinal, k), 0), comm))

    # leftover slabs + final wait at the site of C; C removed
    post: List[Stmt] = []
    if plan.leftover:
        post.append(b.comment(" exchange leftover slabs"))
        post.extend(
            gen_slab_comm(
                plan,
                layout,
                names,
                opp,
                slots=plan.leftover,
                first_global_expr=IntLit(
                    value=plan.trip - plan.leftover + 1
                ),
                slot_base_expr=IntLit(value=(plan.ntiles % 2) * k),
            )
        )
    post.extend(final_wait(names))
    _replace_call(opp, post)


def insert_prolog(unit: Unit, names: SiteNames) -> None:
    """Declare generated variables and initialize ``me = mynode()``."""
    unit.decls.extend(names.declarations())
    unit.body.insert(
        0, b.assign(b.var(names.me), b.call_expr("mynode"))
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _ordinal_expr(var: str, lo: int) -> Expr:
    """1-based iteration ordinal ``var - lo + 1`` (folds to ``var`` at lo=1)."""
    if lo == 1:
        return b.var(var)
    return b.add(b.sub(b.var(var), lo), 1)


def _replace_call(opp: Opportunity, replacement: List[Stmt]) -> None:
    """§3.6 step 5: splice ``replacement`` where the original C stood."""
    body = opp.body
    ci = index_of(body, opp.call)
    if ci < 0:
        raise TransformError(
            "the original communication call vanished before transformation"
        )
    body[ci : ci + 1] = replacement


def _dedupe(rejections: List[Rejection]) -> List[Rejection]:
    """Drop repeated rejections of the same call node (the scan loop
    re-discovers them on every pass)."""
    seen: Set[Tuple[int, str]] = set()
    out: List[Rejection] = []
    for r in rejections:
        key = (id(r.call), r.reason)
        if key not in seen:
            seen.add(key)
            out.append(r)
    return out


def prepush(
    program: Union[str, SourceFile],
    tile_size: Union[int, str] = AUTO,
    **kwargs,
) -> TransformReport:
    """One-call convenience wrapper around :class:`Compuniformer`."""
    return Compuniformer(tile_size=tile_size, **kwargs).transform(program)
