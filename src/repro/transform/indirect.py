"""Indirect-pattern transformation: copy-loop elimination (paper §3.4, Fig. 3).

The nest's outer loop calls a producer ``P(..., At)`` and then copies
``At`` into a slab of ``As`` (the copy loop ℓcp).  The pattern detector
already verified the copy is a flat-order-preserving full-buffer copy and
that slabs tile ``As`` contiguously.  The transformation then:

1. deletes ℓcp,
2. expands ``At`` with a tile dimension of extent **2K** — two banks of K
   slots used alternately by consecutive tiles (double buffering) — and
   redirects the producer call to ``At(1, slot)`` (Fortran sequence
   association), so K outer iterations fill K distinct slabs before any
   must be sent,
3. sends each slab directly to the partition owner — ``At -> Ar`` by the
   transitivity argument of §3.4 — with the receive placed where the
   alltoall would have put the corresponding ``As`` slab,
4. waits for the *previous* tile's sends at the point the current tile's
   sends are issued.  The send buffers live in ``At`` (unlike the direct
   pattern, where finalized ``As`` elements are immutable), so a slot may
   only be rewritten after its transfer completes; with two banks the
   wait for bank ``b``'s transfers happens one full tile of computation
   after they were issued, which is what lets them overlap.  A single
   bank would force the wait immediately after the issue — correct, but
   with zero overlap.

Because each slab is destined for exactly one partition, the traffic
shape is the paper's congested case (§3.5): every rank sends tile ``t``
to the same owner.  The slab's global index is the message tag, unique
per C execution, so SPMD lockstep pairs messages deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import TransformError
from ..analysis.affine import Affine, try_affine
from ..analysis.patterns import Opportunity
from ..lang import builder as b
from ..lang.ast_nodes import (
    ArrayRef,
    DimSpec,
    Expr,
    IntLit,
    Stmt,
    TypeDecl,
    VarRef,
)
from .layout import SiteLayout
from .names import SiteNames


@dataclass
class IndirectPlan:
    """Geometry of a verified indirect site."""

    outer_var: str
    outer_lo: int
    outer_hi: int
    trip: int
    tile_size: int
    ntiles: int
    leftover: int
    slab: int  # elements per slab (== At size)
    slabs_per_partition: int
    planes_per_slab: int  # last-dimension thickness of one slab
    at_rank: int  # rank of At before expansion


def analyze_indirect(
    opp: Opportunity, layout: SiteLayout, tile_size: int
) -> IndirectPlan:
    assert opp.copy_map is not None and opp.temp_array is not None
    params = opp.params
    cm = opp.copy_map
    outer = opp.nest.root
    lo = try_affine(outer.lo, params)
    hi = try_affine(outer.hi, params)
    if (
        lo is None
        or hi is None
        or not lo.is_constant
        or not hi.is_constant
    ):
        raise TransformError("outer loop bounds are not compile-time constants")
    outer_lo, outer_hi = lo.const, hi.const
    trip = outer_hi - outer_lo + 1

    S = cm.slab_size
    base = cm.as_flat_base
    # slabs must tile As contiguously in iteration order from element 0
    if base.coeff(opp.nest.root.var) != S:
        raise TransformError(
            f"slabs advance by {base.coeff(opp.nest.root.var)} elements per "
            f"outer iteration but each slab holds {S}; slabs do not tile "
            f"{opp.send_array!r} contiguously"
        )
    start = base.evaluate({opp.nest.root.var: outer_lo})
    if start != 0:
        raise TransformError(
            f"the first slab starts at flat offset {start}, not 0"
        )
    if S * trip != layout.total:
        raise TransformError(
            f"{trip} slabs of {S} elements cover {S * trip} elements but "
            f"{opp.send_array!r} holds {layout.total}"
        )
    if layout.part % S != 0:
        raise TransformError(
            f"partition size {layout.part} is not a whole number of slabs "
            f"({S} elements each); a slab would straddle two destinations"
        )
    if S % layout.lead != 0:
        raise TransformError(
            f"slab size {S} is not a whole number of last-dimension planes "
            f"({layout.lead} elements each); the receive side cannot be "
            f"addressed with sequence association"
        )
    if not 1 <= tile_size <= trip:
        raise TransformError(
            f"tile size {tile_size} outside [1, {trip}]"
        )
    symtab = opp.symtab
    assert symtab is not None
    at_sym = symtab.require(opp.temp_array)
    if at_sym.rank != 1:
        raise TransformError(
            f"temporary array {opp.temp_array!r} has rank {at_sym.rank}; "
            f"the expansion handles the paper's rank-1 temporaries"
        )
    return IndirectPlan(
        outer_var=outer.var,
        outer_lo=outer_lo,
        outer_hi=outer_hi,
        trip=trip,
        tile_size=tile_size,
        ntiles=trip // tile_size,
        leftover=trip % tile_size,
        slab=S,
        slabs_per_partition=layout.part // S,
        planes_per_slab=S // layout.lead,
        at_rank=at_sym.rank,
    )


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def expand_temp_decl(unit, at_name: str, slots: int) -> None:
    """Append a slot dimension of extent ``slots`` (= 2K) to At's decl."""
    for decl in unit.decls:
        if not isinstance(decl, TypeDecl):
            continue
        for ent in decl.entities:
            if ent.name == at_name:
                ent.dims = list(ent.dims) + [
                    DimSpec(lo=IntLit(value=1), hi=IntLit(value=slots))
                ]
                return
    raise TransformError(f"declaration of {at_name!r} not found")


def redirect_producer(opp: Opportunity, names: SiteNames) -> None:
    """Rewrite ``call p(..., at)`` to ``call p(..., at(1, slot))``.

    ``at(1, slot)`` is an element-start actual: by Fortran sequence
    association the producer's rank-1 dummy overlays slab ``slot`` of the
    expanded storage.
    """
    assert opp.producer_call is not None and opp.temp_array is not None
    for i, arg in enumerate(opp.producer_call.args):
        if isinstance(arg, (VarRef, ArrayRef)) and arg.name == opp.temp_array:
            opp.producer_call.args[i] = ArrayRef(
                name=opp.temp_array,
                subs=[IntLit(value=1), b.var(names.slot)],
            )
            return
    raise TransformError(f"producer call does not pass {opp.temp_array!r}")


def gen_slot_assign(plan: IndirectPlan, names: SiteNames) -> Stmt:
    """``slot = mod(rv - rlo, 2K) + 1`` — cycle through both banks."""
    return b.assign(
        b.var(names.slot),
        b.add(
            b.mod(
                b.sub(plan.outer_var, plan.outer_lo), 2 * plan.tile_size
            ),
            1,
        ),
    )


def gen_send_wait(names: SiteNames) -> List[Stmt]:
    """Wait (at tile-end, before issuing this tile's sends) for the sends
    issued by the previous tile — they used the other bank, whose slots
    the producer starts rewriting next iteration."""
    return [
        b.comment(" wait for the previous tile's sends (bank reuse)"),
        b.call("mpi_waitall_sends", b.var(names.ierr)),
    ]


def gen_slab_comm(
    plan: IndirectPlan,
    layout: SiteLayout,
    names: SiteNames,
    opp: Opportunity,
    *,
    slots: int,
    first_global_expr: Expr,
    slot_base_expr: Expr,
) -> List[Stmt]:
    """The per-slab send/recv/self-copy loop over ``slots`` tile slots.

    ``first_global_expr`` is the global (1-based) index of the slab in
    the tile's first slot; ``slot_base_expr`` is the bank offset (0 or K)
    the tile's slots live at within the double-buffered storage.
    """
    at_name = opp.temp_array
    assert at_name is not None
    S = plan.slab
    spp = plan.slabs_per_partition
    pps = plan.planes_per_slab

    s_var, g_var = names.slot_loop, names.g
    assert s_var is not None and g_var is not None

    # g = first_global + (s - 1)
    g_assign = b.assign(
        b.var(g_var),
        b.add(b.clone_expr(first_global_expr), b.sub(s_var, 1)),
    )
    to_assign = b.assign(
        b.var(names.to), b.div(b.sub(g_var, 1), spp)
    )

    def at_start(slot_expr: Expr) -> ArrayRef:
        subs: List[Expr] = [IntLit(value=1) for _ in range(plan.at_rank)]
        subs.append(b.add(b.clone_expr(slot_base_expr), slot_expr))
        return ArrayRef(name=at_name, subs=subs)

    send = b.call(
        "mpi_isend", at_start(b.var(s_var)), S, names.to, g_var, names.ierr
    )

    # receive side: owner posts NP-1 receives into Ar
    # Ar last-dim start = last_lo + (from*spp + (g-1 - me*spp)) * pps
    recv_last = b.add(
        IntLit(value=layout.last_lo),
        b.mul(
            b.add(
                b.mul(b.var(names.from_), spp),
                b.sub(b.sub(g_var, 1), b.mul(b.var(names.me), spp)),
            ),
            pps,
        ),
    )
    ar_start_subs: List[Expr] = [
        IntLit(value=layout.dims[i][0]) for i in range(layout.rank - 1)
    ]
    recv = b.call(
        "mpi_irecv",
        ArrayRef(name=layout.ar_name, subs=ar_start_subs + [recv_last]),
        S,
        names.from_,
        b.var(g_var),
        names.ierr,
    )
    recv_loop = b.do(
        names.j,
        1,
        layout.nprocs - 1,
        [
            b.assign(
                b.var(names.from_),
                b.mod(
                    b.sub(b.add(layout.nprocs, names.me), names.j),
                    layout.nprocs,
                ),
            ),
            recv,
        ],
    )

    self_copy = _gen_self_copy(plan, layout, names, at_name, slot_base_expr)

    slab_body: List[Stmt] = [
        g_assign,
        to_assign,
        b.if_(b.ne(b.var(names.to), b.var(names.me)), [send]),
        b.if_(
            b.eq(b.var(names.to), b.var(names.me)),
            [recv_loop] + self_copy,
        ),
    ]
    return [b.do(s_var, 1, slots, slab_body)]


def _gen_self_copy(
    plan: IndirectPlan,
    layout: SiteLayout,
    names: SiteNames,
    at_name: str,
    slot_base_expr: Expr,
) -> List[Stmt]:
    """Own slab: Ar(plane indices of slab g) = At(flat order, bank + s)."""
    assert names.q is not None and names.g is not None
    q_var = names.q
    idx_vars = names.copy_vars(layout.rank)
    # last-dim plane range of slab g: last_lo + (g-1)*pps .. + pps - 1
    last_start = b.add(
        IntLit(value=layout.last_lo),
        b.mul(b.sub(b.var(names.g), 1), plan.planes_per_slab),
    )
    at_subs: List[Expr] = [
        b.var(q_var),
        b.add(b.clone_expr(slot_base_expr), b.var(names.slot_loop)),
    ]
    assign = b.assign(
        ArrayRef(
            name=layout.ar_name, subs=[b.var(v) for v in idx_vars]
        ),
        ArrayRef(name=at_name, subs=at_subs),
    )
    body: List[Stmt] = [b.assign(b.var(q_var), b.add(q_var, 1)), assign]
    for i in range(layout.rank):
        var = idx_vars[i]
        if i == layout.rank - 1:
            start = last_start
            end = b.add(b.clone_expr(last_start), plan.planes_per_slab - 1)
        else:
            dlo, dhi = layout.dims[i]
            start, end = IntLit(value=dlo), IntLit(value=dhi)
        body = [b.do(var, start, end, body)]
    return [b.assign(b.var(q_var), 0)] + body
