"""Tiling geometry: splitting a loop's iteration range into tiles of K.

The pre-push transformation restructures the computation loop "into
blocks, or tiles, in which each tile executes only part of the iteration
space" (paper §2).  This module owns the arithmetic — tile ranges, counts,
the leftover block when K does not divide the trip count (§3.6 step 3) —
and the tile-size heuristic used when the caller asks for ``K="auto"``
(the paper defers optimal-K selection to [3]; the heuristic here is the
balanced-overhead rule of thumb the harness sweep in Ablation A
validates).

All ranges are inclusive ``(lo, hi)`` pairs in loop-index space, matching
Fortran DO semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import TransformError


@dataclass(frozen=True)
class Tiling:
    """A tiling of the inclusive iteration range ``[lo, hi]`` by ``k``."""

    lo: int
    hi: int
    k: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise TransformError(
                f"empty iteration range [{self.lo}, {self.hi}] cannot be tiled"
            )
        if not 1 <= self.k <= self.trip:
            raise TransformError(
                f"tile size {self.k} outside [1, {self.trip}] for range "
                f"[{self.lo}, {self.hi}]"
            )

    @property
    def trip(self) -> int:
        """Total number of iterations."""
        return self.hi - self.lo + 1

    @property
    def ntiles(self) -> int:
        """Number of *full* tiles of ``k`` iterations."""
        return self.trip // self.k

    @property
    def leftover(self) -> int:
        """Iterations not covered by full tiles (0 when ``k`` divides)."""
        return self.trip % self.k

    @property
    def nblocks(self) -> int:
        """Full tiles plus the leftover block if any."""
        return self.ntiles + (1 if self.leftover else 0)

    def tile_range(self, t: int) -> Tuple[int, int]:
        """Inclusive iteration range of full tile ``t`` (0-based)."""
        if not 0 <= t < self.ntiles:
            raise TransformError(
                f"tile index {t} outside [0, {self.ntiles})"
            )
        start = self.lo + t * self.k
        return start, start + self.k - 1

    def leftover_range(self) -> Tuple[int, int]:
        """Inclusive range of the leftover block (raises when none)."""
        if not self.leftover:
            raise TransformError("tiling has no leftover block")
        return self.lo + self.ntiles * self.k, self.hi

    def ranges(self) -> List[Tuple[int, int]]:
        """All block ranges in execution order (full tiles, then leftover).

        Invariant (tested property-based): the ranges are disjoint,
        ordered, and their union is exactly ``[lo, hi]``.
        """
        out = [self.tile_range(t) for t in range(self.ntiles)]
        if self.leftover:
            out.append(self.leftover_range())
        return out

    def tile_of(self, iteration: int) -> int:
        """0-based block index containing ``iteration``."""
        if not self.lo <= iteration <= self.hi:
            raise TransformError(
                f"iteration {iteration} outside [{self.lo}, {self.hi}]"
            )
        return min((iteration - self.lo) // self.k, self.nblocks - 1)

    def is_tile_end(self, iteration: int) -> bool:
        """True when ``iteration`` is the last iteration of a full tile.

        This is the guard the generated code evaluates:
        ``mod(iteration - lo + 1, k) == 0``.
        """
        return (iteration - self.lo + 1) % self.k == 0


def divisors(n: int) -> List[int]:
    """All positive divisors of ``n``, ascending."""
    if n <= 0:
        raise TransformError(f"divisors of non-positive {n}")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def choose_tile_size(
    trip: int,
    *,
    must_divide: int = 0,
    messages_target: int = 8,
) -> int:
    """Heuristic K: balance per-message overhead against overlap granularity.

    A tiny K sends many small messages (overhead-bound); a huge K leaves
    no computation to hide the last transfers behind (the paper's Figure 1
    experiments and Ablation A trace the resulting U-shaped curve).  The
    heuristic aims for about ``messages_target`` tiles, i.e.
    ``K ≈ trip / messages_target``, clamped to ``[1, trip]``.

    ``must_divide`` (scheme B: the partition thickness in iterations)
    restricts K to divisors of that value so no tile straddles two
    destination partitions; we pick the divisor closest to the unconstrained
    choice.
    """
    if trip < 1:
        raise TransformError(f"cannot tile {trip} iterations")
    want = max(1, min(trip, round(trip / max(1, messages_target))))
    if must_divide <= 0:
        return want
    if must_divide < 1:
        raise TransformError(f"invalid divisibility constraint {must_divide}")
    candidates = [d for d in divisors(must_divide) if d <= trip]
    if not candidates:
        raise TransformError(
            f"no tile size <= {trip} divides the partition thickness "
            f"{must_divide}"
        )
    return min(candidates, key=lambda d: (abs(d - want), d))


def comm_rounds(trip: int, k: int) -> int:
    """How many communication blocks a tiling emits (tiles + leftover)."""
    return Tiling(1, trip, k).nblocks


def overlap_headroom(
    compute_per_tile: float, wire_per_tile: float, ntiles: int
) -> float:
    """Idealized fraction of wire time hidden behind computation.

    With perfect offload and ``ntiles`` tiles, every tile's transfer except
    the last overlaps the following tile's compute; the exposed time is
    ``max(0, wire - compute)`` per interior tile plus the full last wire.
    Returns the hidden fraction in [0, 1].  Used by tests as an upper bound
    the simulator must respect, and by documentation examples.
    """
    if ntiles < 1 or wire_per_tile <= 0:
        return 0.0
    hidden = (ntiles - 1) * min(wire_per_tile, compute_per_tile)
    return hidden / (ntiles * wire_per_tile)
