"""Loop interchange (paper §3.5).

When the *node loop* (the loop traversing the send array's last, i.e.
partitioned, dimension) is outermost, tiling it would make every tile's
messages target a single node and congest its NIC.  The paper's remedy is
to interchange the node loop inward when data dependences permit.

Legality is the textbook condition [Allen & Kennedy]: interchanging loops
``p`` and ``q`` of a perfect nest is legal iff no dependence direction
vector, after permuting positions ``p`` and ``q``, becomes lexicographically
negative (its first non-'=' entry a '>').  With only '<', '=' and '*'
entries produced by our analysis, the check is: a vector forbids the swap
when the permuted vector could have '>' before any '<'; '*' entries are
treated conservatively.

Scalars assigned and read inside the nest body (index helpers like
``tx``) would defeat a naive dependence test; they are *privatizable*
when every read in an iteration is preceded lexically by a write in the
same innermost body, which is checked here.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import InterchangeError
from ..lang.ast_nodes import (
    ArrayRef,
    Assign,
    CallStmt,
    DoLoop,
    Expr,
    Stmt,
    VarRef,
)
from ..lang.visitor import walk
from ..analysis.deps import LoopSpec, all_dependence_directions
from ..analysis.loops import NestInfo


def arrays_accessed(body: Sequence[Stmt]) -> List[str]:
    """Names of all arrays referenced anywhere under ``body``."""
    names: Set[str] = set()
    for s in body:
        for node in walk(s):
            if isinstance(node, ArrayRef):
                names.add(node.name)
    return sorted(names)


def scalars_privatizable(nest: NestInfo) -> Tuple[bool, str]:
    """Are all scalars written in the innermost body written-before-read?

    Returns (ok, offending name).  Loop variables are excluded.  Scalars
    read before any write in the same iteration carry values across
    iterations and block interchange.
    """
    body = nest.innermost.body
    loop_vars = set(nest.loop_vars)
    written: Set[str] = set()
    for s in body:
        reads: List[str] = []
        if isinstance(s, Assign):
            for node in walk(s.rhs):
                if isinstance(node, VarRef):
                    reads.append(node.name)
            if isinstance(s.lhs, ArrayRef):
                for sub in s.lhs.subs:
                    for node in walk(sub):
                        if isinstance(node, VarRef):
                            reads.append(node.name)
        elif isinstance(s, CallStmt):
            for a in s.args:
                for node in walk(a):
                    if isinstance(node, VarRef):
                        reads.append(node.name)
        for name in reads:
            if name in loop_vars or name in written:
                continue
            # a scalar read that is never written in the body is a nest
            # constant: harmless
            if _scalar_written_in(body, name):
                return False, name
        if isinstance(s, Assign) and isinstance(s.lhs, VarRef):
            written.add(s.lhs.name)
    return True, ""


def _scalar_written_in(body: Sequence[Stmt], name: str) -> bool:
    for s in body:
        if isinstance(s, Assign) and isinstance(s.lhs, VarRef):
            if s.lhs.name == name:
                return True
    return False


def interchange_legal(
    nest: NestInfo,
    p: int,
    q: int,
    params: Optional[Mapping[str, int]] = None,
) -> Tuple[bool, str]:
    """May loops at positions ``p`` and ``q`` (outermost-first) be swapped?

    Returns (legal, reason-if-not).
    """
    if p == q:
        return True, ""
    if p > q:
        p, q = q, p
    # require the nest to be perfectly nested down to loop q so the swap is
    # purely a header exchange
    for loop in nest.loops[:q]:
        if len(loop.body) != 1 or not isinstance(loop.body[0], DoLoop):
            return False, "nest is not perfectly nested down to the inner loop"

    ok, scalar = scalars_privatizable(nest)
    if not ok:
        return False, f"scalar {scalar!r} carries values across iterations"

    try:
        specs = nest.specs(params)
    except Exception as exc:  # NotAffineError
        return False, f"loop bounds not analyzable: {exc}"

    # bounds must not depend on the loop variables being moved across
    for idx in (p, q):
        spec = specs[idx]
        between = {specs[k].var for k in range(p, q + 1) if k != idx}
        if spec.lo.depends_on_any(between) or spec.hi.depends_on_any(between):
            return False, "triangular loop bounds prevent interchange"

    arrays = arrays_accessed([nest.root])
    vectors = all_dependence_directions([nest.root], arrays, specs, params)
    for vec in vectors:
        permuted = list(vec)
        permuted[p], permuted[q] = permuted[q], permuted[p]
        for entry in permuted:
            if entry == "=":
                continue
            if entry == "<":
                break  # lexicographically positive: fine
            # '>' cannot be produced directly, but '*' may hide one
            return False, (
                "a dependence direction vector becomes (or may become) "
                "lexicographically negative after interchange"
            )
    return True, ""


def apply_interchange(nest: NestInfo, p: int, q: int) -> NestInfo:
    """Swap the headers of loops ``p`` and ``q`` in place.

    The loop *bodies* stay attached to their structural positions; only
    (var, lo, hi, step) move, which is the standard header-exchange
    formulation for perfect nests.  Returns a refreshed NestInfo.
    """
    loops = nest.loops
    if not (0 <= p < len(loops) and 0 <= q < len(loops)):
        raise InterchangeError(f"loop positions {p}, {q} out of range")
    a, b = loops[p], loops[q]
    a.var, b.var = b.var, a.var
    a.lo, b.lo = b.lo, a.lo
    a.hi, b.hi = b.hi, a.hi
    a.step, b.step = b.step, a.step
    from ..analysis.loops import loop_chain

    return loop_chain(nest.root)
