"""Replacement communication code preserving MPI_ALLTOALL semantics (§3.5).

The paper's Figure 4 replaces the collective with a pairwise loop::

    do j = 1,NP-1
      to = mod(mynum+j,NP)
      call mpi_isend(As(...,(to-1)*(NP/SZ)),...)
      from = mod(NP+mynum-j,NP)
      call mpi_irecv(Ar(...,(from-1)*(NP/SZ)),...)
    enddo

Every rank sends its ``j``-th partition clockwise and receives
counter-clockwise, so in each round the traffic forms a perfect matching
— no two messages contend for the same NIC.  This staggering is what
"preserves the ... efficiency of MPI_ALLTOALL" (§3.5): the naive
``do to = 0, NP-1`` order would aim every rank's first message at rank 0.

:func:`figure4_loop` builds that loop generically; the per-scheme code
generators supply callbacks that produce the buffer arguments for a given
peer expression (scheme A sections the arrays per partition; other
callers may pass element-start references using sequence association).
"""

from __future__ import annotations

from typing import Callable, List

from ..lang import builder as b
from ..lang.ast_nodes import DoLoop, Expr, Stmt
from .names import SiteNames

#: Builds the send (or receive) buffer argument for the peer whose rank is
#: given by the expression argument.
BufferFn = Callable[[Expr], Expr]


def peer_to_expr(names: SiteNames, nprocs: int) -> Expr:
    """``mod(me + j, NP)`` — the round-``j`` destination (Figure 4)."""
    return b.mod(b.add(names.me, names.j), nprocs)


def peer_from_expr(names: SiteNames, nprocs: int) -> Expr:
    """``mod(NP + me - j, NP)`` — the round-``j`` source (Figure 4)."""
    return b.mod(b.sub(b.add(nprocs, names.me), names.j), nprocs)


def figure4_loop(
    names: SiteNames,
    nprocs: int,
    send_buffer: BufferFn,
    recv_buffer: BufferFn,
    count: int,
    tag_expr: Expr,
) -> DoLoop:
    """The staggered pairwise exchange of Figure 4, as an AST loop.

    ``send_buffer``/``recv_buffer`` receive the peer-rank expression
    (``to`` / ``from`` variable references) and return the first argument
    of the isend/irecv.  ``tag_expr`` is cloned for the receive so send
    and receive never share AST nodes.
    """
    inner: List[Stmt] = [
        b.assign(b.var(names.to), peer_to_expr(names, nprocs)),
        b.call(
            "mpi_isend",
            send_buffer(b.var(names.to)),
            count,
            names.to,
            tag_expr,
            names.ierr,
        ),
        b.assign(b.var(names.from_), peer_from_expr(names, nprocs)),
        b.call(
            "mpi_irecv",
            recv_buffer(b.var(names.from_)),
            count,
            names.from_,
            b.clone_expr(tag_expr),
            names.ierr,
        ),
    ]
    return b.do(names.j, 1, nprocs - 1, inner)


def wait_previous_tile(names: SiteNames) -> List[Stmt]:
    """§3.6 step 2: block until the previous tile's receives completed.

    Sends need not be waited per tile — finalized elements are never
    rewritten (that is what the output-dependence analysis guaranteed), so
    send buffers stay valid; all outstanding requests drain at the final
    ``mpi_waitall`` (§3.6 step 4).
    """
    return [
        b.comment(" wait for comm of prev. tile to complete"),
        b.call("mpi_waitall_recvs", b.var(names.ierr)),
    ]


def final_wait(names: SiteNames) -> List[Stmt]:
    """§3.6 step 4: wait for the last blocks (and drain pending sends)."""
    return [
        b.comment(" wait for the last blocks of data"),
        b.call("mpi_waitall", b.var(names.ierr)),
    ]
