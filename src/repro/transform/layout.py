"""Constant layout facts of a transformation site.

The code generator works with compile-time-constant array bounds and
partition sizes (the test programs declare ``nx``, ``np`` etc. as
``parameter`` constants — and the generated code then hardwires the same
constants the original program already committed to).  This module folds
an :class:`~repro.analysis.patterns.Opportunity` into a
:class:`SiteLayout`, rejecting sites whose geometry is not statically
known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import TransformError
from ..analysis.affine import to_affine, try_affine
from ..analysis.patterns import Opportunity


@dataclass(frozen=True)
class SiteLayout:
    """Numeric geometry of one alltoall site."""

    as_name: str
    ar_name: str
    dims: Tuple[Tuple[int, int], ...]  # inclusive (lo, hi) per dimension
    nprocs: int
    part: int  # elements per partition = total // nprocs

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def extents(self) -> Tuple[int, ...]:
        return tuple(hi - lo + 1 for lo, hi in self.dims)

    @property
    def total(self) -> int:
        n = 1
        for e in self.extents:
            n *= e
        return n

    @property
    def last_lo(self) -> int:
        return self.dims[-1][0]

    @property
    def last_extent(self) -> int:
        lo, hi = self.dims[-1]
        return hi - lo + 1

    @property
    def planes_per_partition(self) -> int:
        """Last-dimension thickness of one partition (in index planes)."""
        return self.last_extent // self.nprocs

    @property
    def lead(self) -> int:
        """Product of all extents except the last (elements per plane)."""
        return self.total // self.last_extent


def resolve_layout(opp: Opportunity) -> SiteLayout:
    """Fold the site's arrays and counts to constants, with validation."""
    symtab = opp.symtab
    assert symtab is not None
    params = opp.params

    def fold_dims(name: str) -> Tuple[Tuple[int, int], ...]:
        sym = symtab.require(name)
        out: List[Tuple[int, int]] = []
        for d in sym.dims:
            lo = try_affine(d.lo, params)
            hi = try_affine(d.hi, params)
            if (
                lo is None
                or hi is None
                or not lo.is_constant
                or not hi.is_constant
            ):
                raise TransformError(
                    f"bounds of {name!r} are not compile-time constants; "
                    f"the code generator requires static geometry"
                )
            out.append((lo.const, hi.const))
        return tuple(out)

    as_dims = fold_dims(opp.send_array)
    ar_dims = fold_dims(opp.recv_array)

    count = try_affine(opp.send_count_expr, params)  # type: ignore[arg-type]
    if count is None or not count.is_constant or count.const <= 0:
        raise TransformError(
            "the alltoall element count is not a positive compile-time "
            "constant"
        )
    part = count.const

    total = 1
    for lo, hi in as_dims:
        total *= hi - lo + 1
    ar_total = 1
    for lo, hi in ar_dims:
        ar_total *= hi - lo + 1
    if ar_total != total:
        raise TransformError(
            f"send array {opp.send_array!r} ({total} elements) and receive "
            f"array {opp.recv_array!r} ({ar_total} elements) differ in size"
        )
    if total % part != 0:
        raise TransformError(
            f"alltoall count {part} does not divide the buffer size {total}"
        )
    nprocs = total // part
    if nprocs < 2:
        raise TransformError(
            f"alltoall implies {nprocs} rank(s); nothing to transform"
        )
    last_extent = as_dims[-1][1] - as_dims[-1][0] + 1
    if last_extent % nprocs != 0:
        raise TransformError(
            f"last dimension extent {last_extent} of {opp.send_array!r} is "
            f"not divisible by {nprocs} ranks; MPI_ALLTOALL partitions the "
            f"last dimension"
        )
    return SiteLayout(
        as_name=opp.send_array,
        ar_name=opp.recv_array,
        dims=as_dims,
        nprocs=nprocs,
        part=part,
    )
