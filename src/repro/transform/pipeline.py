"""Composable transform-pass pipeline and the variant registry.

The paper's transformation used to be one monolithic
:class:`~repro.transform.prepush.Compuniformer` rewrite, and the
harness hardcoded exactly two variants ("original" vs "prepush").
This module decomposes the rewrite into discrete **passes** over the
program AST — the shape proven by pass-based compiler frameworks —
and makes the compiler the repo's third pluggable registry, after
network scenarios (:mod:`repro.runtime.network`) and collective
algorithms (:mod:`repro.runtime.collectives`):

* a :class:`Pass` is one named, self-contained phase with
  ``applicable(program, state)`` and ``apply(program, options, state)``
  returning a :class:`PassResult` (the rewritten AST plus a per-pass
  :class:`PassReport`);
* a :class:`Pipeline` chains passes, capturing an inspectable
  source-text snapshot after every pass, and returns a
  :class:`PipelineReport` — a drop-in
  :class:`~repro.transform.prepush.TransformReport` extended with the
  per-pass chain;
* the **variant registry** (:func:`register_variant` /
  :func:`get_variant` / :func:`list_variants`) names pipelines so the
  harness, the sweep engine, and the CLI can select transformation
  variants the same way they select networks and collectives.

Built-in variants
-----------------

``original``
    The empty pipeline: the program unchanged (the baseline arm of
    every comparison).
``prepush``
    ``interchange → tile → commgen → indirect-elim`` — the full §3
    transformation.  Its output is **bit-identical** to the legacy
    :class:`~repro.transform.prepush.Compuniformer`: both run the same
    shared site-level code generators
    (:func:`~repro.transform.prepush.direct_rewrite` et al.), and the
    golden parity suite asserts text equality across every workload.
``tile-only``
    ``tile → commgen``: direct sites get the tiled early-push rewrite,
    but the node loop is never interchanged and indirect sites are
    left untouched (isolates the benefit of tiling alone).
``no-interchange``
    ``tile → commgen → indirect-elim``: the full rewrite minus §3.5 —
    equivalent to ``Compuniformer(interchange="never")`` (Ablation E's
    congested arm).
``prepush-schemeB-off``
    The full pipeline, but sites whose resolved plan is scheme B keep
    their original alltoall (ablates the owner-block codegen path).

Pass ordering note: the registered ``prepush`` pipeline runs
``interchange`` *before* ``tile`` because the tile size of a scheme-B
site depends on the post-interchange geometry (K must divide the
partition thickness only while the site *stays* scheme B); resolving K
first would pick a different tile size than the monolithic driver.

Writing a third-party pass
--------------------------

Any object with a ``name`` string, ``applicable(program, state) ->
bool``, and ``apply(program, options, state) -> PassResult`` is a
pass; an optional ``config() -> dict`` of JSON-safe scalars feeds the
sweep cache fingerprint (passes with knobs MUST implement it, or two
differently-configured pipelines would collide in the cache).  See
DESIGN.md §9 for the full protocol and the fingerprint rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from ..errors import TransformError
from ..analysis.callinfo import Oracle
from ..analysis.patterns import (
    ALLTOALL_NAMES,
    Opportunity,
    PatternKind,
    Rejection,
    find_opportunities,
)
from ..lang.ast_nodes import CallStmt, SourceFile
from ..lang.parser import parse
from ..lang.unparser import unparse
from ..lang.visitor import clone, walk
from .direct import DirectPlan, analyze_direct
from .indirect import IndirectPlan, analyze_indirect
from .layout import SiteLayout, resolve_layout
from .names import SiteNames
from .naming import NamePool
from .options import DEFAULT_TRANSFORM_OPTIONS, TransformOptions
from .prepush import (
    SiteReport,
    TransformReport,
    _dedupe,
    direct_rewrite,
    indirect_rewrite,
    insert_prolog,
    resolve_tile_size,
    try_interchange,
)
from .tiling import Tiling

__all__ = [
    "Pass",
    "PassReport",
    "PassResult",
    "PassSnapshot",
    "Pipeline",
    "PipelineReport",
    "PipelineState",
    "SitePlan",
    "CommGenPass",
    "IndirectElimPass",
    "InterchangePass",
    "TilePass",
    "register_variant",
    "get_variant",
    "list_variants",
    "resolve_variant",
    "variant_label",
    "variant_identity",
]


def has_candidate_sites(
    program: SourceFile,
    alltoall_names: Sequence[str] = ALLTOALL_NAMES,
) -> bool:
    """Cheap applicability screen: does any unit call the collective?"""
    names = {n.lower() for n in alltoall_names}
    for node in walk(program):
        if isinstance(node, CallStmt) and node.name.lower() in names:
            return True
    return False


# ---------------------------------------------------------------- reports


@dataclass
class PassReport:
    """What one pass did to the program."""

    name: str
    #: sites this pass rewrote (rewrite passes only)
    sites: List[SiteReport] = field(default_factory=list)
    #: sites this pass could not handle (carried into the final report)
    rejections: List[Rejection] = field(default_factory=list)
    #: free-form diagnostics (planned geometry, skipped sites, ...)
    notes: List[str] = field(default_factory=list)
    changed: bool = False
    skipped: bool = False  # applicable() said no; apply() never ran

    def describe(self) -> str:
        status = (
            "skipped (not applicable)"
            if self.skipped
            else ("changed program" if self.changed else "no change")
        )
        lines = [f"pass {self.name}: {status}"]
        for s in self.sites:
            lines.append(
                f"  [{s.unit}] {s.kind.value} {s.send_array!r} -> "
                f"{s.recv_array!r}: scheme {s.scheme}, K={s.tile_size}"
            )
        lines.extend(f"  note: {n}" for n in self.notes)
        lines.extend(f"  rejected: {r.reason}" for r in self.rejections)
        return "\n".join(lines)


@dataclass
class PassResult:
    """Return value of :meth:`Pass.apply`."""

    program: SourceFile
    report: PassReport
    changed: bool = False


@dataclass
class PassSnapshot:
    """The program text after one pass ran (inspectable intermediate)."""

    pass_name: str
    text: str
    changed: bool


@runtime_checkable
class Pass(Protocol):
    """One named transformation phase (see the module docstring)."""

    name: str

    def applicable(
        self, program: SourceFile, state: "PipelineState"
    ) -> bool:
        """Cheap screen; ``apply`` is skipped (and recorded as skipped)
        when this returns False.  ``state`` carries run-scoped
        configuration such as the accepted alltoall call names."""
        ...

    def apply(
        self,
        program: SourceFile,
        options: TransformOptions,
        state: "PipelineState",
    ) -> PassResult:
        """Run the pass.  May mutate ``program`` in place (the pipeline
        cloned the caller's AST already) and must return it inside a
        :class:`PassResult`."""
        ...


# ------------------------------------------------------------- site plans


@dataclass
class SitePlan:
    """One fully-resolved transformation plan for one site.

    Computed once per pipeline run (lazily, by the first pass that
    needs it) so every rewrite pass agrees on layouts, tile sizes, and
    generated names — exactly the quantities the monolithic driver
    resolved per site.
    """

    opp: Opportunity
    layout: SiteLayout
    names: SiteNames
    kind: PatternKind
    plan: Union[DirectPlan, IndirectPlan]
    tile_size: int
    trip: int
    tiling: Optional[Tiling] = None  # direct sites only
    interchanged: bool = False
    applied: bool = False  # set by the pass that rewrites the site
    #: the SiteReport of the rewrite, once applied
    report: Optional[SiteReport] = None

    @property
    def scheme(self) -> str:
        return "slab" if self.kind is PatternKind.INDIRECT else self.plan.scheme


@dataclass
class SitePlans:
    sites: List[SitePlan]
    rejections: List[Rejection]


@dataclass
class PipelineState:
    """Shared scratch space of one pipeline run.

    Carries the lazily-computed :class:`SitePlans` (so ``tile``,
    ``commgen`` and ``indirect-elim`` agree on geometry and names) and
    the §3.5 interchange record (keyed by the identity of each nest's
    root loop, which survives header swaps).
    """

    oracle: Optional[Oracle] = None
    alltoall_names: Tuple[str, ...] = ALLTOALL_NAMES
    plans: Optional[SitePlans] = None
    #: id(nest root DoLoop) -> the §3.5 note recorded when it was swapped
    interchange_notes: Dict[int, str] = field(default_factory=dict)

    def ensure_plans(
        self, program: SourceFile, options: TransformOptions
    ) -> SitePlans:
        """Compute (once) the per-site plans on the current AST.

        Must run *after* any pass that reshapes loop nests
        (``interchange``): plans capture post-interchange geometry,
        which is what tile-size resolution legally depends on.
        """
        if self.plans is None:
            self.plans = _plan_sites(program, options, self)
        return self.plans


def _plan_sites(
    source: SourceFile, options: TransformOptions, state: PipelineState
) -> SitePlans:
    """Discover and plan every transformable site, in discovery order.

    Mirrors the monolithic driver's processing order (units in program
    order, opportunities in scan order) including its name-allocation
    sequence: names are drawn from the per-unit pool *before* tile-size
    resolution, so a site rejected for an illegal K still consumes its
    names — keeping generated identifiers identical to the legacy path.
    """
    sites: List[SitePlan] = []
    rejections: List[Rejection] = []
    pools: dict = {}

    def full() -> bool:
        return (
            options.max_sites is not None
            and len(sites) >= options.max_sites
        )

    for unit in source.units:
        if full():
            break
        result = find_opportunities(
            source,
            unit=unit,
            oracle=state.oracle,
            alltoall_names=state.alltoall_names,
        )
        rejections.extend(result.rejections)
        for opp in result.opportunities:
            if full():
                break
            pool = pools.setdefault(id(opp.unit), NamePool(opp.unit))
            try:
                sites.append(_plan_site(opp, pool, options, state))
            except TransformError as exc:
                rejections.append(
                    Rejection(
                        call=opp.call,
                        call_index=opp.call_index,
                        reason=str(exc),
                    )
                )
    return SitePlans(sites=sites, rejections=_dedupe(rejections))


def _plan_site(
    opp: Opportunity,
    pool: NamePool,
    options: TransformOptions,
    state: PipelineState,
) -> SitePlan:
    layout = resolve_layout(opp)
    names = SiteNames.allocate(opp.unit, pool)
    if opp.kind is PatternKind.DIRECT:
        probe = analyze_direct(opp, layout, tile_size=1)
        note = state.interchange_notes.get(id(opp.nest.root))
        if note is not None:
            opp.notes.append(note)
        trip = probe.tile_hi - probe.tile_lo + 1
        must_divide = (
            layout.planes_per_partition if probe.scheme == "B" else 0
        )
        k = resolve_tile_size(options.tile_size, trip, must_divide)
        plan = analyze_direct(opp, layout, tile_size=k)
        return SitePlan(
            opp=opp,
            layout=layout,
            names=names,
            kind=PatternKind.DIRECT,
            plan=plan,
            tile_size=k,
            trip=trip,
            tiling=Tiling(plan.tile_lo, plan.tile_hi, k),
            interchanged=note is not None,
        )
    probe = analyze_indirect(opp, layout, tile_size=1)
    k = resolve_tile_size(options.tile_size, probe.trip)
    plan = analyze_indirect(opp, layout, tile_size=k)
    names.need_indirect()
    return SitePlan(
        opp=opp,
        layout=layout,
        names=names,
        kind=PatternKind.INDIRECT,
        plan=plan,
        tile_size=k,
        trip=plan.trip,
    )


def _plannable_direct(
    probe: DirectPlan, layout: SiteLayout, options: TransformOptions
) -> int:
    """1 when the planner would accept this (post-interchange) direct
    site, 0 when it would reject it — the InterchangePass budget must
    march in step with ``_plan_sites``'s ``max_sites`` accounting."""
    try:
        trip = probe.tile_hi - probe.tile_lo + 1
        must = layout.planes_per_partition if probe.scheme == "B" else 0
        resolve_tile_size(options.tile_size, trip, must)
    except TransformError:
        return 0
    return 1


def _plannable_indirect(
    opp: Opportunity, options: TransformOptions
) -> int:
    """Indirect twin of :func:`_plannable_direct`."""
    try:
        layout = resolve_layout(opp)
        probe = analyze_indirect(opp, layout, tile_size=1)
        resolve_tile_size(options.tile_size, probe.trip)
    except TransformError:
        return 0
    return 1


# ------------------------------------------------------------ the passes


class InterchangePass:
    """§3.5: move outermost node loops inward where legal.

    Runs before planning so tile sizes are resolved against the
    post-interchange geometry (see the module docstring).  A no-op when
    ``options.interchange == "never"``.
    """

    name = "interchange"

    def applicable(
        self, program: SourceFile, state: "PipelineState"
    ) -> bool:
        return has_candidate_sites(program, state.alltoall_names)

    def apply(
        self,
        program: SourceFile,
        options: TransformOptions,
        state: PipelineState,
    ) -> PassResult:
        report = PassReport(name=self.name)
        if options.interchange == "never":
            report.notes.append(
                "disabled by options.interchange='never'"
            )
            return PassResult(program, report)
        if state.plans is not None:
            raise TransformError(
                "the interchange pass must run before any pass that "
                "planned tile geometry (plans capture post-interchange "
                "loop order)"
            )
        changed = False
        seen = 0  # sites that will consume the planner's max_sites cap
        for unit in program.units:
            result = find_opportunities(
                program,
                unit=unit,
                oracle=state.oracle,
                alltoall_names=state.alltoall_names,
            )
            for opp in result.opportunities:
                # honor max_sites: a site the planner will never rewrite
                # must not have its loop nest silently reshaped either.
                # The budget counts the sites the planner will *accept*
                # (its rejections do not consume the cap), so the
                # accept/reject decision is re-derived here per site.
                if (
                    options.max_sites is not None
                    and seen >= options.max_sites
                ):
                    break
                if opp.kind is not PatternKind.DIRECT:
                    if options.max_sites is not None:
                        seen += _plannable_indirect(opp, options)
                    continue
                try:
                    layout = resolve_layout(opp)
                    probe = analyze_direct(opp, layout, tile_size=1)
                except TransformError:
                    continue  # the planner will reject it with a reason
                if probe.scheme == "B" and layout.rank >= 2:
                    if try_interchange(opp, probe):
                        note = opp.notes[-1]
                        state.interchange_notes[id(opp.nest.root)] = note
                        report.notes.append(f"[{opp.unit.name}] {note}")
                        changed = True
                        probe = analyze_direct(opp, layout, tile_size=1)
                if options.max_sites is not None:
                    seen += _plannable_direct(probe, layout, options)
        report.changed = changed
        return PassResult(program, report, changed=changed)


class TilePass:
    """Resolve the tile geometry (the paper's K) for every site.

    An analysis pass: it computes and publishes the shared
    :class:`SitePlans` without touching the AST, so the rewrite passes
    (and the caller, through the pass report) can inspect the resolved
    K, scheme, and trip count of every site.
    """

    name = "tile"

    def applicable(
        self, program: SourceFile, state: "PipelineState"
    ) -> bool:
        return has_candidate_sites(program, state.alltoall_names)

    def apply(
        self,
        program: SourceFile,
        options: TransformOptions,
        state: PipelineState,
    ) -> PassResult:
        plans = state.ensure_plans(program, options)
        report = PassReport(name=self.name)
        for sp in plans.sites:
            report.notes.append(
                f"[{sp.opp.unit.name}] {sp.kind.value} site on "
                f"{sp.opp.send_array!r}: scheme {sp.scheme}, "
                f"K={sp.tile_size} over trip {sp.trip}"
            )
        return PassResult(program, report)


class CommGenPass:
    """§3.6 rewrite of planned *direct* sites (schemes A and B).

    ``skip_scheme_b=True`` leaves scheme-B sites untransformed (their
    original alltoall stays), ablating the owner-block codegen path.
    """

    name = "commgen"

    def __init__(self, *, skip_scheme_b: bool = False) -> None:
        self.skip_scheme_b = skip_scheme_b

    def config(self) -> Dict[str, Any]:
        return {"skip_scheme_b": self.skip_scheme_b}

    def applicable(
        self, program: SourceFile, state: "PipelineState"
    ) -> bool:
        return has_candidate_sites(program, state.alltoall_names)

    def apply(
        self,
        program: SourceFile,
        options: TransformOptions,
        state: PipelineState,
    ) -> PassResult:
        def skip(sp: SitePlan, report: PassReport) -> bool:
            if self.skip_scheme_b and sp.scheme == "B":
                report.notes.append(
                    f"[{sp.opp.unit.name}] scheme-B site on "
                    f"{sp.opp.send_array!r} left untransformed "
                    f"(skip_scheme_b)"
                )
                return True
            return False

        return _rewrite_planned_sites(
            program,
            options,
            state,
            pass_name=self.name,
            kind=PatternKind.DIRECT,
            rewrite=lambda sp: direct_rewrite(
                sp.opp, sp.layout, sp.names, sp.plan,
                sp.tile_size, sp.tiling,
            ),
            site_report=lambda sp: SiteReport(
                unit=sp.opp.unit.name,
                send_array=sp.opp.send_array,
                recv_array=sp.opp.recv_array,
                kind=PatternKind.DIRECT,
                scheme=sp.plan.scheme,
                tile_size=sp.tile_size,
                trip=sp.trip,
                ntiles=sp.tiling.ntiles,
                leftover=sp.tiling.leftover,
                interchanged=sp.interchanged,
                notes=list(sp.opp.notes),
            ),
            skip=skip,
        )


class IndirectElimPass:
    """§3.4 copy-loop elimination of planned *indirect* sites."""

    name = "indirect-elim"

    def applicable(
        self, program: SourceFile, state: "PipelineState"
    ) -> bool:
        return has_candidate_sites(program, state.alltoall_names)

    def apply(
        self,
        program: SourceFile,
        options: TransformOptions,
        state: PipelineState,
    ) -> PassResult:
        return _rewrite_planned_sites(
            program,
            options,
            state,
            pass_name=self.name,
            kind=PatternKind.INDIRECT,
            rewrite=lambda sp: indirect_rewrite(
                sp.opp, sp.layout, sp.names, sp.plan, sp.tile_size
            ),
            site_report=lambda sp: SiteReport(
                unit=sp.opp.unit.name,
                send_array=sp.opp.send_array,
                recv_array=sp.opp.recv_array,
                kind=PatternKind.INDIRECT,
                scheme="slab",
                tile_size=sp.tile_size,
                trip=sp.plan.trip,
                ntiles=sp.plan.ntiles,
                leftover=sp.plan.leftover,
                dead_arrays=(sp.opp.send_array,),
                notes=list(sp.opp.notes)
                + [
                    f"copy loop over {sp.opp.copy_map.trip_count} "
                    f"elements removed"
                    if sp.opp.copy_map
                    else "copy loop removed"
                ],
            ),
        )


def _rewrite_planned_sites(
    program: SourceFile,
    options: TransformOptions,
    state: PipelineState,
    *,
    pass_name: str,
    kind: PatternKind,
    rewrite,
    site_report,
    skip=None,
) -> PassResult:
    """The shared rewrite-pass skeleton of CommGenPass/IndirectElimPass.

    Walks the planned sites of ``kind``, applies ``rewrite(sp)`` (a
    :class:`TransformError` becomes a :class:`Rejection`, the site is
    left alone), inserts the prolog, and records ``site_report(sp)`` on
    both the plan and the pass report.  ``skip(sp, report)`` may veto a
    site (returning True) after noting why.
    """
    plans = state.ensure_plans(program, options)
    report = PassReport(name=pass_name)
    for sp in plans.sites:
        if sp.kind is not kind or sp.applied:
            continue
        if skip is not None and skip(sp, report):
            continue
        try:
            rewrite(sp)
        except TransformError as exc:
            report.rejections.append(
                Rejection(
                    call=sp.opp.call,
                    call_index=sp.opp.call_index,
                    reason=str(exc),
                )
            )
            continue
        insert_prolog(sp.opp.unit, sp.names)
        sp.applied = True
        sp.report = site_report(sp)
        report.sites.append(sp.report)
    report.changed = bool(report.sites)
    return PassResult(program, report, changed=report.changed)


# ------------------------------------------------------------- pipeline


@dataclass
class PipelineReport(TransformReport):
    """A :class:`~repro.transform.prepush.TransformReport` that also
    carries the per-pass chain and the intermediate snapshots.

    Being a subclass, everything downstream of the legacy report —
    ``.sites``, ``.rejections``, ``.unparse()``, ``.dead_arrays`` —
    works unchanged; ``.passes`` / ``.snapshots`` add the pipeline's
    inspectability.
    """

    pipeline: str = ""
    options: TransformOptions = DEFAULT_TRANSFORM_OPTIONS
    passes: List[PassReport] = field(default_factory=list)
    snapshots: List[PassSnapshot] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        """Did any pass change the program?

        Wider than :attr:`transformed` (which means "a communication
        site was rewritten"): a pipeline of analysis/interchange-style
        passes can change the program without producing a
        :class:`SiteReport`, and such a program still needs §4
        verification and must not be reported as "unchanged".
        """
        return bool(self.sites) or any(p.changed for p in self.passes)

    def describe_passes(self) -> str:
        """The per-pass report chain, human-readable (CLI ``--report``)."""
        header = f"pipeline {self.pipeline or '<anonymous>'}"
        if not self.passes:
            return f"{header}: empty (program unchanged)"
        return "\n".join([header] + [p.describe() for p in self.passes])


class Pipeline:
    """An ordered chain of passes, runnable as one transformation.

    ``Pipeline(())`` is the identity transformation (the ``original``
    variant).  :meth:`run` clones/parses the input program, threads one
    :class:`PipelineState` through the passes, snapshots the program
    text after each pass, and folds the per-pass reports into a
    :class:`PipelineReport`.
    """

    def __init__(
        self,
        passes: Sequence[Pass] = (),
        *,
        name: str = "",
        partial: bool = False,
    ) -> None:
        for p in passes:
            for attr in ("name", "applicable", "apply"):
                if not hasattr(p, attr):
                    raise TransformError(
                        f"{p!r} is not a transform pass (missing "
                        f"{attr!r}; see repro.transform.pipeline.Pass)"
                    )
        self.passes: Tuple[Pass, ...] = tuple(passes)
        self.name = name
        #: a deliberately *partial* transformation: leaving a program
        #: unchanged is an expected outcome (measure it as-is), not a
        #: failure.  Full-rewrite pipelines keep the default False, so
        #: a workload none of their passes could rewrite raises instead
        #: of silently reporting speedup 1.0.
        self.partial = partial

    @property
    def empty(self) -> bool:
        return not self.passes

    def identity(self) -> Dict[str, Any]:
        """Canonical JSON-safe identity of this pipeline: its name plus
        each pass's name and configuration.  This is what
        :func:`~repro.interp.runner.job_fingerprint` hashes, so two
        pipelines differing in any pass or knob can never share a
        sweep-cache entry."""
        return {
            "name": self.name,
            "passes": [
                {"pass": p.name, **_pass_config(p)} for p in self.passes
            ],
        }

    def run(
        self,
        program: Union[str, SourceFile],
        options: Optional[TransformOptions] = None,
        *,
        oracle: Optional[Oracle] = None,
        alltoall_names: Sequence[str] = ALLTOALL_NAMES,
        snapshots: bool = True,
    ) -> PipelineReport:
        """Run every pass in order; never mutates the caller's AST."""
        if options is None:
            options = DEFAULT_TRANSFORM_OPTIONS
        source = (
            clone(program)
            if isinstance(program, SourceFile)
            else parse(program)
        )
        state = PipelineState(
            oracle=oracle, alltoall_names=tuple(alltoall_names)
        )
        pass_reports: List[PassReport] = []
        snaps: List[PassSnapshot] = []
        for p in self.passes:
            if not p.applicable(source, state):
                pass_reports.append(
                    PassReport(name=p.name, skipped=True)
                )
                continue
            result = p.apply(source, options, state)
            source = result.program
            pass_reports.append(result.report)
            if snapshots:
                snaps.append(
                    PassSnapshot(
                        pass_name=p.name,
                        text=unparse(source),
                        changed=result.changed,
                    )
                )
        # aggregate rewritten sites in *discovery* order (the plan
        # order the legacy monolith reports), not pass order — the two
        # differ when direct and indirect sites interleave; sites from
        # third-party passes that bypass the planner follow after
        planned = (
            [sp.report for sp in state.plans.sites if sp.report is not None]
            if state.plans is not None
            else []
        )
        planned_ids = {id(r) for r in planned}
        sites = planned + [
            s
            for pr in pass_reports
            for s in pr.sites
            if id(s) not in planned_ids
        ]
        rejections = list(
            state.plans.rejections if state.plans is not None else []
        )
        for pr in pass_reports:
            rejections.extend(pr.rejections)
        return PipelineReport(
            source=source,
            sites=sites,
            rejections=_dedupe(rejections),
            pipeline=self.name,
            options=options,
            passes=pass_reports,
            snapshots=snaps,
        )

    def __repr__(self) -> str:
        chain = " -> ".join(p.name for p in self.passes) or "(empty)"
        return f"Pipeline({self.name!r}: {chain})"


def _pass_config(p: Pass) -> Dict[str, Any]:
    config = getattr(p, "config", None)
    return dict(config()) if callable(config) else {}


# ------------------------------------------------------------- registry


_VARIANTS: Dict[str, Pipeline] = {}


def register_variant(
    name: str, pipeline: Pipeline, *, overwrite: bool = False
) -> Pipeline:
    """Register ``pipeline`` as a named transformation variant.

    Names are the currency of the harness: a registered variant is
    selectable by every ``variant=`` knob (``SweepSpec.variants``,
    :class:`repro.api.CompareRequest`, ``--variant`` on the CLI).
    Registering an existing name raises unless ``overwrite=True`` —
    silently replacing a variant would change what cached sweep keys
    mean.
    """
    if not isinstance(name, str) or not name:
        raise TransformError(
            f"variant name must be a non-empty string, got {name!r}"
        )
    if not isinstance(pipeline, Pipeline):
        raise TransformError(
            f"variant {name!r} must be a Pipeline, got "
            f"{type(pipeline).__name__}"
        )
    if name in _VARIANTS and not overwrite:
        raise TransformError(
            f"variant {name!r} is already registered "
            f"(pass overwrite=True to replace it)"
        )
    if not pipeline.name:
        pipeline.name = name
    _VARIANTS[name] = pipeline
    return pipeline


def get_variant(name: str) -> Pipeline:
    """The registered pipeline, or :class:`TransformError` naming the
    available variants."""
    try:
        return _VARIANTS[name]
    except KeyError:
        raise TransformError(
            f"unknown variant {name!r}; registered: {list_variants()}"
        ) from None


def list_variants() -> List[str]:
    """Sorted names of every registered variant."""
    return sorted(_VARIANTS)


def resolve_variant(variant: Union[str, Pipeline]) -> Pipeline:
    """A registry name or a Pipeline instance → the Pipeline."""
    if isinstance(variant, Pipeline):
        return variant
    if isinstance(variant, str):
        return get_variant(variant)
    raise TransformError(
        f"variant must be a registered name or a Pipeline, got "
        f"{type(variant).__name__}"
    )


def variant_label(variant: Union[str, Pipeline]) -> str:
    """The axis label of a variant (its registry name, or the
    pipeline's own name for unregistered instances)."""
    if isinstance(variant, str):
        return variant
    if isinstance(variant, Pipeline):
        return variant.name or "<pipeline>"
    raise TransformError(
        f"variant must be a registered name or a Pipeline, got "
        f"{type(variant).__name__}"
    )


def variant_identity(
    variant: Union[str, Pipeline], options: TransformOptions
) -> Dict[str, Any]:
    """The JSON-safe provenance dict a transformed
    :class:`~repro.interp.runner.ClusterJob` carries into
    :func:`~repro.interp.runner.job_fingerprint`: pipeline identity
    (name + passes + per-pass config) plus the canonical transform
    options."""
    return {
        "pipeline": resolve_variant(variant).identity(),
        "options": options.canonical_params(),
    }


# built-in variants ---------------------------------------------------------

register_variant("original", Pipeline((), name="original"))
register_variant(
    "prepush",
    Pipeline(
        (InterchangePass(), TilePass(), CommGenPass(), IndirectElimPass()),
        name="prepush",
    ),
)
register_variant(
    "tile-only",
    Pipeline((TilePass(), CommGenPass()), name="tile-only", partial=True),
)
register_variant(
    "no-interchange",
    Pipeline(
        (TilePass(), CommGenPass(), IndirectElimPass()),
        name="no-interchange",
    ),
)
register_variant(
    "prepush-schemeB-off",
    Pipeline(
        (
            InterchangePass(),
            TilePass(),
            CommGenPass(skip_scheme_b=True),
            IndirectElimPass(),
        ),
        name="prepush-schemeB-off",
        partial=True,
    ),
)
