"""Per-site generated-variable names and their declarations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..lang.ast_nodes import TypeDecl, Unit
from ..lang import builder as b
from ..lang.symtab import build_symtab
from .naming import NamePool


@dataclass
class SiteNames:
    """Fresh names used by the code generated for one site."""

    me: str
    j: str
    to: str
    from_: str
    ierr: str
    ierr_is_new: bool
    _pool: NamePool = field(repr=False, default=None)  # type: ignore[assignment]
    _copy_vars: List[str] = field(default_factory=list)
    slot: Optional[str] = None
    slot_loop: Optional[str] = None
    g: Optional[str] = None
    q: Optional[str] = None

    @staticmethod
    def allocate(unit: Unit, pool: NamePool) -> "SiteNames":
        table = build_symtab(unit)
        ierr_sym = table.lookup("ierr")
        reuse = (
            ierr_sym is not None
            and not ierr_sym.is_array
            and ierr_sym.base_type == "integer"
            and not ierr_sym.is_parameter
        )
        return SiteNames(
            me=pool.fresh("me"),
            j=pool.fresh("j"),
            to=pool.fresh("to"),
            from_=pool.fresh("from"),
            ierr="ierr" if reuse else pool.fresh("ierr"),
            ierr_is_new=not reuse,
            _pool=pool,
        )

    def copy_vars(self, rank: int) -> List[str]:
        """Loop indices for generated copy nests (allocated on demand)."""
        while len(self._copy_vars) < rank:
            self._copy_vars.append(
                self._pool.fresh(f"c{len(self._copy_vars) + 1}")
            )
        return self._copy_vars[:rank]

    def need_indirect(self) -> None:
        if self.slot is None:
            self.slot = self._pool.fresh("slot")
            self.slot_loop = self._pool.fresh("s")
            self.g = self._pool.fresh("g")
            self.q = self._pool.fresh("q")

    def declarations(self) -> List[TypeDecl]:
        """Integer declarations for every allocated generated name."""
        names = [self.me, self.j, self.to, self.from_]
        if self.ierr_is_new:
            names.append(self.ierr)
        names.extend(self._copy_vars)
        for extra in (self.slot, self.slot_loop, self.g, self.q):
            if extra is not None:
                names.append(extra)
        return [b.int_decl(*names)]
