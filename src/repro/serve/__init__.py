"""``repro.serve`` — the async sweep service (DESIGN.md §11).

An asyncio job-queue server over the :class:`~repro.api.Session` façade
and the shared content-addressed :class:`~repro.harness.sweep.SweepCache`:
queues, shards, deduplicates, and streams sweep work for many concurrent
clients.  Start one with ``compuniformer serve``, talk to it with
``compuniformer submit`` or the clients here::

    from repro.serve import ServeClient, ThreadedServer

    with ThreadedServer(cache_dir=".cache", jobs=4) as ts:
        with ServeClient(port=ts.port) as client:
            result = client.sweep(spec)

See :mod:`repro.serve.protocol` for the wire format,
:mod:`repro.serve.server` for coalescing/backpressure/drain semantics,
and :mod:`repro.serve.client` for the sync/async clients.
"""

from ..errors import OverloadError, RequestError, ServeError  # noqa: F401
from .client import AsyncServeClient, ServeClient  # noqa: F401
from .protocol import PROTOCOL_VERSION  # noqa: F401
from .server import ServeStats, SweepServer, ThreadedServer  # noqa: F401

__all__ = [
    "PROTOCOL_VERSION",
    "ServeClient",
    "AsyncServeClient",
    "SweepServer",
    "ThreadedServer",
    "ServeStats",
    "ServeError",
    "RequestError",
    "OverloadError",
]
