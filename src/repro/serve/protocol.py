"""Wire protocol of the sweep service (DESIGN.md §11).

One JSON object per line (UTF-8, ``\\n``-terminated) in both
directions.  Requests reuse the repo's existing JSON schemas as the
payload language — a ``sweep`` request carries
:meth:`repro.harness.sweep.SweepSpec.to_dict` objects verbatim, so any
spec file the ``compuniformer sweep --spec`` path accepts can be
submitted to a server unchanged.

Client → server (every request names a ``type`` and a client-chosen
``id`` echoed on every event it provokes):

``sweep``     ``{"type": "sweep", "id": ..., "spec": {...}}`` or
              ``{"specs": [{...}, ...]}`` — SweepSpec schema
``compare``   ``{"type": "compare", "id": ..., "app": "fft",
              "app_kwargs": {...}, "network": ..., ...}``
``verify``    ``{"type": "verify", "id": ..., "program": "...",
              "nranks": 8, ...}``
``tune``      ``{"type": "tune", "id": ..., "space": {...}, "strategy":
              "hill-climb", "budget": 40, "objective": "time",
              "seed": 7}`` — the ``space`` payload is
              :meth:`repro.tune.SearchSpace.to_dict`; the server runs
              the search with every candidate evaluation flowing
              through its three-layer dedup
``status``    server statistics (never queued; answered immediately)
``shutdown``  ``{"drain": true}`` — ask the server to stop

Server → client events (``event`` discriminates):

``accepted``  the request passed validation and admission control;
              carries the expanded ``points``/``verifications`` counts
``point``     one sweep point finished: ``axes``, its measurement
              ``source`` (``cache``/``peer``/``coalesced``/
              ``simulated``), completion ``seq`` of ``total``
``step``      one tune evaluation finished: the
              :meth:`repro.tune.TrajectoryStep.to_dict` fields
              (candidate, objective, cumulative best, cache_hit)
``result``    the terminal success event; carries the full response
              payload (for sweeps: the
              :meth:`~repro.harness.sweep.SweepResult.to_json` shape)
``error``     the terminal failure event; ``error`` names a
              :mod:`repro.errors` class the client re-raises

Exactly one terminal event (``result`` or ``error``) ends every
request; requests on one connection are handled strictly in order, so
concurrency comes from opening more connections.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..errors import OverloadError, RequestError, ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_MESSAGE_BYTES",
    "REQUEST_TYPES",
    "ServeRequest",
    "encode_message",
    "decode_message",
    "parse_request",
    "event",
    "error_event",
    "exception_from_event",
]

#: bumped on incompatible wire changes; servers refuse newer clients
PROTOCOL_VERSION = 1

#: per-line ceiling (program texts ride in requests; 16 MiB is far
#: above any registered app and bounds a malicious/broken peer)
MAX_MESSAGE_BYTES = 16 * 1024 * 1024

REQUEST_TYPES = ("sweep", "compare", "verify", "tune", "status", "shutdown")

#: wire name → exception class for terminal ``error`` events
_ERROR_TYPES = {
    "RequestError": RequestError,
    "OverloadError": OverloadError,
    "ServeError": ServeError,
}


@dataclass(frozen=True)
class ServeRequest:
    """One decoded, shape-validated request (body still uninterpreted)."""

    type: str
    id: str
    body: Mapping[str, Any] = field(default_factory=dict)


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One wire line: compact JSON + newline (sorted keys, so identical
    payloads are byte-identical on the wire)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Decode one wire line into a JSON object, or raise
    :class:`~repro.errors.RequestError`."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict):
        raise RequestError(
            f"a message must be a JSON object, got {type(message).__name__}"
        )
    return message


def parse_request(message: Mapping[str, Any]) -> ServeRequest:
    """Validate the request envelope (type/id/version) into a
    :class:`ServeRequest`; the body keys stay with the handler."""
    rtype = message.get("type")
    if rtype not in REQUEST_TYPES:
        raise RequestError(
            f"unknown request type {rtype!r} "
            f"(expected one of {', '.join(REQUEST_TYPES)})"
        )
    version = message.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise RequestError(
            f"protocol version {version!r} not supported "
            f"(server speaks {PROTOCOL_VERSION})"
        )
    request_id = message.get("id", "")
    if not isinstance(request_id, str):
        raise RequestError("request 'id' must be a string")
    body = {
        k: v
        for k, v in message.items()
        if k not in ("type", "id", "protocol")
    }
    return ServeRequest(type=rtype, id=request_id, body=body)


def event(kind: str, request_id: str, **fields: Any) -> Dict[str, Any]:
    """One server event addressed to the request that provoked it."""
    message = {"event": kind, "id": request_id}
    message.update(fields)
    return message


def error_event(request_id: str, exc: BaseException) -> Dict[str, Any]:
    """The terminal ``error`` event for ``exc``.

    Serve-layer errors keep their class name so the client re-raises
    the same type; anything else is wrapped as a generic ``ServeError``
    with the original class named in the message — internal exception
    taxonomy is not part of the wire contract.
    """
    if isinstance(exc, (RequestError, OverloadError)):
        name = type(exc).__name__
        text = str(exc)
    elif isinstance(exc, ServeError):
        name = "ServeError"
        text = str(exc)
    else:
        name = "ServeError"
        text = f"{type(exc).__name__}: {exc}"
    return event("error", request_id, error=name, message=text)


def exception_from_event(message: Mapping[str, Any]) -> ServeError:
    """The client-side inverse of :func:`error_event`."""
    cls = _ERROR_TYPES.get(str(message.get("error")), ServeError)
    return cls(str(message.get("message", "unspecified server error")))
