"""Clients for the sweep service — sync and async.

:class:`ServeClient` speaks the line-delimited JSON protocol
(:mod:`repro.serve.protocol`) over a plain blocking socket: one
connection, one outstanding request at a time (the server's per-
connection ordering guarantee makes anything fancier pointless — open
more clients for concurrency).  :class:`AsyncServeClient` is the same
surface on asyncio streams for callers already inside an event loop.

Both raise the server's structured errors as the matching local
exception types (:class:`~repro.errors.RequestError`,
:class:`~repro.errors.OverloadError`, :class:`~repro.errors.ServeError`)
and surface streamed progress through an optional ``on_event`` callback::

    with ServeClient(port=port) as client:
        result = client.sweep(spec, on_event=lambda e: print(e["event"]))
        warm = client.sweep(spec)           # zero simulations server-side
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Callable, Dict, Mapping, Optional, Union

from ..errors import ServeError
from ..harness.sweep import SweepSpec
from .protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    encode_message,
    exception_from_event,
)

__all__ = ["ServeClient", "AsyncServeClient"]

OnEvent = Optional[Callable[[Dict[str, Any]], None]]

_ids = itertools.count(1)


def _request_payload(
    rtype: str, request_id: str, body: Mapping[str, Any]
) -> Dict[str, Any]:
    message = {"type": rtype, "id": request_id, "protocol": PROTOCOL_VERSION}
    message.update(body)
    return message


def _spec_body(spec: Union[SweepSpec, Mapping[str, Any]]) -> Dict[str, Any]:
    if isinstance(spec, SweepSpec):
        return {"spec": spec.to_dict()}
    if isinstance(spec, Mapping):
        return {"spec": dict(spec)}
    if isinstance(spec, (list, tuple)):
        return {
            "specs": [
                s.to_dict() if isinstance(s, SweepSpec) else dict(s)
                for s in spec
            ]
        }
    raise TypeError(
        f"spec must be a SweepSpec, a to_dict() mapping, or a list of "
        f"them, got {type(spec).__name__}"
    )


def _tune_body(
    space: Any,
    *,
    strategy: str,
    budget: int,
    objective: str,
    seed: Optional[int],
    strategy_params: Optional[Mapping[str, Any]],
) -> Dict[str, Any]:
    if hasattr(space, "to_dict"):
        space = space.to_dict()
    if not isinstance(space, Mapping):
        raise TypeError(
            f"space must be a SearchSpace or its to_dict() mapping, "
            f"got {type(space).__name__}"
        )
    body: Dict[str, Any] = {
        "space": dict(space),
        "strategy": strategy,
        "budget": budget,
        "objective": objective,
    }
    if seed is not None:
        body["seed"] = seed
    if strategy_params:
        body["strategy_params"] = dict(strategy_params)
    return body


class _EventPump:
    """Shared request/response logic: feed events until the terminal
    one, dispatching progress to ``on_event``."""

    @staticmethod
    def finish(message: Dict[str, Any], on_event: OnEvent) -> Optional[Dict]:
        """Returns the result payload on the terminal event, ``None``
        to keep reading; raises the mapped exception on ``error``."""
        kind = message.get("event")
        if kind == "error":
            raise exception_from_event(message)
        if on_event is not None and kind not in ("result",):
            on_event(message)
        if kind == "result":
            return message
        return None


class ServeClient:
    """Blocking client over one socket connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------ verbs

    def sweep(
        self,
        spec: Union[SweepSpec, Mapping[str, Any], list, tuple],
        *,
        on_event: OnEvent = None,
    ) -> Dict[str, Any]:
        """Submit sweep spec(s); returns the
        :meth:`~repro.harness.sweep.SweepResult.to_json`-shaped result."""
        return self._request("sweep", _spec_body(spec), on_event)["result"]

    submit = sweep  # the CLI verb's name

    def compare(self, app: str, **body: Any) -> Dict[str, Any]:
        return self._request("compare", dict(body, app=app), None)["result"]

    def verify(self, program: str, **body: Any) -> Dict[str, Any]:
        return self._request("verify", dict(body, program=program), None)[
            "result"
        ]

    def tune(
        self,
        space: Union[Mapping[str, Any], Any],
        *,
        strategy: str = "hill-climb",
        budget: int = 32,
        objective: str = "time",
        seed: Optional[int] = None,
        strategy_params: Optional[Mapping[str, Any]] = None,
        on_event: OnEvent = None,
    ) -> Dict[str, Any]:
        """Run a server-side tune over ``space`` (a
        :class:`repro.tune.SearchSpace` or its ``to_dict()`` mapping);
        per-evaluation ``step`` events stream to ``on_event``.  Returns
        the :meth:`~repro.tune.TuneResult.to_dict` payload plus the
        full ``trajectory``."""
        return self._request(
            "tune", _tune_body(
                space,
                strategy=strategy,
                budget=budget,
                objective=objective,
                seed=seed,
                strategy_params=strategy_params,
            ), on_event
        )["result"]

    def status(self) -> Dict[str, Any]:
        return self._request("status", {}, None)["result"]

    def shutdown(self, *, drain: bool = True) -> Dict[str, Any]:
        """Ask the server to stop (drain by default); closes this
        client's connection afterwards (the server hangs up)."""
        try:
            return self._request("shutdown", {"drain": drain}, None)["result"]
        finally:
            self.close()

    # ------------------------------------------------------- transport

    def _request(
        self, rtype: str, body: Mapping[str, Any], on_event: OnEvent
    ) -> Dict[str, Any]:
        request_id = f"c{next(_ids)}"
        self._sock.sendall(
            encode_message(_request_payload(rtype, request_id, body))
        )
        while True:
            line = self._reader.readline(MAX_MESSAGE_BYTES)
            if not line:
                raise ServeError(
                    "server closed the connection before the terminal "
                    "event (crashed or shut down without drain?)"
                )
            message = _decode_event(line)
            if message.get("id") not in ("", request_id):
                continue  # stale event from an aborted earlier request
            terminal = _EventPump.finish(message, on_event)
            if terminal is not None:
                return terminal

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncServeClient:
    """The same verb surface on asyncio streams.

    Build with :meth:`connect`::

        client = await AsyncServeClient.connect(port=port)
        result = await client.sweep(spec)
        await client.close()
    """

    def __init__(self, reader, writer, host: str, port: int) -> None:
        self._reader = reader
        self._writer = writer
        self.host = host
        self.port = port

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "AsyncServeClient":
        import asyncio

        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_MESSAGE_BYTES
        )
        return cls(reader, writer, host, port)

    async def sweep(
        self,
        spec: Union[SweepSpec, Mapping[str, Any], list, tuple],
        *,
        on_event: OnEvent = None,
    ) -> Dict[str, Any]:
        response = await self._request("sweep", _spec_body(spec), on_event)
        return response["result"]

    submit = sweep

    async def compare(self, app: str, **body: Any) -> Dict[str, Any]:
        response = await self._request("compare", dict(body, app=app), None)
        return response["result"]

    async def verify(self, program: str, **body: Any) -> Dict[str, Any]:
        response = await self._request(
            "verify", dict(body, program=program), None
        )
        return response["result"]

    async def tune(
        self,
        space: Union[Mapping[str, Any], Any],
        *,
        strategy: str = "hill-climb",
        budget: int = 32,
        objective: str = "time",
        seed: Optional[int] = None,
        strategy_params: Optional[Mapping[str, Any]] = None,
        on_event: OnEvent = None,
    ) -> Dict[str, Any]:
        response = await self._request(
            "tune", _tune_body(
                space,
                strategy=strategy,
                budget=budget,
                objective=objective,
                seed=seed,
                strategy_params=strategy_params,
            ), on_event
        )
        return response["result"]

    async def status(self) -> Dict[str, Any]:
        return (await self._request("status", {}, None))["result"]

    async def shutdown(self, *, drain: bool = True) -> Dict[str, Any]:
        try:
            response = await self._request(
                "shutdown", {"drain": drain}, None
            )
            return response["result"]
        finally:
            await self.close()

    async def _request(
        self, rtype: str, body: Mapping[str, Any], on_event: OnEvent
    ) -> Dict[str, Any]:
        request_id = f"c{next(_ids)}"
        self._writer.write(
            encode_message(_request_payload(rtype, request_id, body))
        )
        await self._writer.drain()
        while True:
            line = await self._reader.readline()
            if not line:
                raise ServeError(
                    "server closed the connection before the terminal "
                    "event (crashed or shut down without drain?)"
                )
            message = _decode_event(line)
            if message.get("id") not in ("", request_id):
                continue
            terminal = _EventPump.finish(message, on_event)
            if terminal is not None:
                return terminal

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _decode_event(line: bytes) -> Dict[str, Any]:
    import json

    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServeError(f"undecodable server event: {exc}") from None
    if not isinstance(message, dict) or "event" not in message:
        raise ServeError(f"malformed server event: {line[:200]!r}")
    return message
