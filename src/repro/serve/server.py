"""The asyncio sweep service (DESIGN.md §11).

:class:`SweepServer` puts a job server in front of the
:class:`~repro.api.Session` façade so the reproduction behaves as shared
infrastructure rather than a per-process convenience: many concurrent
clients submit sweep/compare/verify requests as JSON
(:mod:`repro.serve.protocol`), the server expands and fingerprints their
points, **coalesces** concurrent identical work so each fingerprint is
simulated at most once cluster-wide, shards the live simulations across
the session's persistent process pool, and streams per-point progress
events back to each subscriber.

Deduplication happens at three layers, cheapest first:

1. the content-addressed :class:`~repro.harness.sweep.SweepCache` —
   previously simulated fingerprints are served without any work;
2. an in-process map of in-flight fingerprints to futures — a request
   arriving while an identical point simulates *subscribes* to the
   running simulation instead of starting its own;
3. the cache's cross-process claim markers
   (:meth:`~repro.harness.sweep.SweepCache.claim`) — a second *server*
   sharing the cache directory waits for the claiming peer's entry to
   land instead of duplicating the simulation.

Backpressure is admission control at expansion time: a sweep whose
expanded point count would push the server past ``max_pending_points``
is refused with a structured :class:`~repro.errors.OverloadError`
before any simulation starts, so the queue can never grow without
bound.  :meth:`SweepServer.shutdown` with ``drain=True`` stops
accepting work, lets every in-flight request finish and stream its
terminal event, then releases the executor and (when the server created
it) the session.

:class:`ThreadedServer` runs the whole service on a background thread
with its own event loop — how the benchmarks, the tests, and any
synchronous embedder host a server in-process.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..api.context import UNSET, CompareRequest, VerifyRequest
from ..api.session import Session
from ..apps import build_app
from ..errors import OverloadError, ReproError, RequestError
from ..harness.runner import Measurement, measurement_from_run
from ..harness.sweep import (
    CLAIM_STALE_AFTER,
    SweepCache,
    SweepPoint,
    SweepSpec,
    _Verification,
    expand_spec,
)
from ..interp.runner import ClusterJob, execute_job, job_fingerprint
from ..runtime.simulator import ENGINE_VERSION
from .protocol import (
    PROTOCOL_VERSION,
    MAX_MESSAGE_BYTES,
    ServeRequest,
    decode_message,
    encode_message,
    error_event,
    event,
    parse_request,
)

__all__ = ["ServeStats", "SweepServer", "ThreadedServer"]


@dataclasses.dataclass
class ServeStats:
    """Lifetime accounting of one server (the ``status`` verb payload).

    ``dedup_ratio`` — measurement simulations actually run divided by
    sweep points requested — is the service's headline number: 1.0
    means every requested point cost a simulation; anything below means
    the cache, the in-flight coalescing, or a peer's claim absorbed the
    difference.
    """

    requests: int = 0
    sweeps: int = 0
    compares: int = 0
    verifies: int = 0
    tunes: int = 0
    errors: int = 0
    rejected: int = 0
    points_requested: int = 0
    simulations: int = 0
    verify_simulations: int = 0
    cache_hits: int = 0
    peer_served: int = 0
    coalesced: int = 0
    verify_checks: int = 0
    verify_hits: int = 0

    @property
    def dedup_ratio(self) -> float:
        if not self.points_requested:
            return 1.0
        return self.simulations / self.points_requested

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["dedup_ratio"] = self.dedup_ratio
        return data


class SweepServer:
    """An asyncio job-queue server over one :class:`~repro.api.Session`.

    ``session=None`` builds a private session from the remaining
    keywords (``cache_dir``/``jobs``/``engine_mode`` and friends are
    forwarded to :class:`~repro.api.ExecutionContext`) and closes it on
    shutdown; a caller-supplied session is shared and left open.
    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).

    One connection handles its requests strictly in order (the
    protocol's framing guarantee); concurrency comes from concurrent
    connections, whose simulations all flow through one executor and
    one in-flight fingerprint map.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending_points: int = 4096,
        peer_wait_timeout: float = CLAIM_STALE_AFTER,
        peer_poll: float = 0.05,
        executor_workers: Optional[int] = None,
        **session_kwargs: Any,
    ) -> None:
        if session is not None and session_kwargs:
            raise ReproError(
                f"session and session keywords "
                f"{sorted(session_kwargs)} are mutually exclusive"
            )
        self._owns_session = session is None
        self.session = session or Session(**session_kwargs)
        self.host = host
        self.port = port
        self.max_pending_points = max_pending_points
        self.peer_wait_timeout = peer_wait_timeout
        self.peer_poll = peer_poll
        self.executor_workers = executor_workers
        self.stats = ServeStats()

        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread_executor = None
        #: fingerprint -> future of (base Measurement, source) for every
        #: measurement simulation currently in flight (layer 2 dedup)
        self._inflight: Dict[str, "asyncio.Future"] = {}
        #: verification key -> future (same shape, verify verdicts)
        self._inflight_verify: Dict[str, "asyncio.Future"] = {}
        self._conn_tasks: set = set()
        self._active_requests = 0
        self._pending_points = 0
        self._draining = False
        self._idle: Optional[asyncio.Event] = None
        self._closed: Optional[asyncio.Event] = None

    # -------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind and start accepting connections (returns immediately)."""
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.host,
            port=self.port,
            limit=MAX_MESSAGE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` completes."""
        if self._server is None:
            await self.start()
        await self._closed.wait()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def shutdown(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop the server (idempotent).

        The §11 drain contract: stop accepting connections, refuse new
        requests on existing connections (structured
        :class:`~repro.errors.RequestError`), wait until every admitted
        request has streamed its terminal event (bounded by
        ``timeout``), then close connections and release the executor
        and owned session.  ``drain=False`` cancels in-flight work
        instead of waiting.
        """
        if self._draining and self._closed is not None:
            await self._closed.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._idle is not None:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._thread_executor is not None:
            self._thread_executor.shutdown(wait=True)
            self._thread_executor = None
        if self._owns_session:
            self.session.close()
        if self._closed is not None:
            self._closed.set()

    # -------------------------------------------------------- executors

    def _executor_for(self, job: ClusterJob):
        """Where one simulation runs: the session's shared persistent
        process pool when it has one and the job can cross a process
        boundary, otherwise a lazily-created thread pool (correct
        either way; the thread pool trades parallelism for
        availability in sandboxes without multiprocessing)."""
        if job.externals is None:
            pool = self.session.pool()
            if pool is not None:
                return pool
        if self._thread_executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._thread_executor = ThreadPoolExecutor(
                max_workers=self.executor_workers or 4,
                thread_name_prefix="repro-serve",
            )
        return self._thread_executor

    async def _run_job(self, job: ClusterJob):
        return await self._loop.run_in_executor(
            self._executor_for(job), execute_job, job
        )

    # ------------------------------------------------------ connections

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        send_lock = asyncio.Lock()

        async def send(message: Mapping[str, Any]) -> None:
            async with send_lock:
                writer.write(encode_message(message))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break
                stop = await self._serve_one(line, send)
                if stop:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError, OSError):
                pass

    async def _serve_one(self, line: bytes, send) -> bool:
        """Handle one request line; True stops the connection loop."""
        self.stats.requests += 1
        try:
            request = parse_request(decode_message(line))
        except RequestError as exc:
            self.stats.errors += 1
            await send(error_event("", exc))
            return False
        if self._draining and request.type not in ("status",):
            self.stats.errors += 1
            await send(
                error_event(
                    request.id,
                    RequestError(
                        "server is draining for shutdown and not "
                        "accepting new work"
                    ),
                )
            )
            return False
        self._active_requests += 1
        self._idle.clear()
        try:
            if request.type == "sweep":
                await self._handle_sweep(request, send)
            elif request.type == "compare":
                await self._handle_compare(request, send)
            elif request.type == "verify":
                await self._handle_verify(request, send)
            elif request.type == "tune":
                await self._handle_tune(request, send)
            elif request.type == "status":
                await self._handle_status(request, send)
            elif request.type == "shutdown":
                await self._handle_shutdown(request, send)
                return True
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self.stats.errors += 1
            if isinstance(exc, OverloadError):
                self.stats.rejected += 1
            try:
                await send(error_event(request.id, exc))
            except (ConnectionError, OSError):
                return True
        finally:
            self._active_requests -= 1
            if self._active_requests == 0:
                self._idle.set()
        return False

    # ----------------------------------------------------------- verbs

    @staticmethod
    def _reject_unknown(body: Mapping[str, Any], known: Tuple[str, ...]):
        unknown = sorted(set(body) - set(known))
        if unknown:
            raise RequestError(
                f"unknown request keys {unknown}; accepted: {sorted(known)}"
            )

    def _parse_specs(self, body: Mapping[str, Any]) -> List[SweepSpec]:
        self._reject_unknown(body, ("spec", "specs"))
        if ("spec" in body) == ("specs" in body):
            raise RequestError(
                "a sweep request carries exactly one of 'spec' "
                "(one object) or 'specs' (a non-empty list)"
            )
        raw = body.get("specs", [body.get("spec")])
        if not isinstance(raw, list) or not raw:
            raise RequestError("'specs' must be a non-empty list")
        specs = []
        for item in raw:
            if not isinstance(item, dict):
                raise RequestError(
                    f"each spec must be a JSON object "
                    f"(got {type(item).__name__})"
                )
            try:
                spec = SweepSpec.from_dict(item)
            except ReproError as exc:
                raise RequestError(f"invalid sweep spec: {exc}") from None
            except (TypeError, ValueError) as exc:
                raise RequestError(f"invalid sweep spec: {exc}") from None
            if spec.engine_mode is None:
                spec = dataclasses.replace(
                    spec, engine_mode=self.session.engine_mode
                )
            specs.append(spec)
        return specs

    async def _handle_sweep(self, request: ServeRequest, send) -> None:
        self.stats.sweeps += 1
        specs = self._parse_specs(request.body)
        try:
            points, verifications = await asyncio.to_thread(
                self._expand, specs
            )
        except ReproError as exc:
            raise RequestError(f"sweep expansion failed: {exc}") from None

        # admission control (§11 backpressure): refuse before simulating
        if self._pending_points + len(points) > self.max_pending_points:
            raise OverloadError(
                f"sweep expands to {len(points)} points but the server "
                f"already has {self._pending_points} pending of a "
                f"{self.max_pending_points}-point budget; retry later "
                f"or split the spec"
            )
        self._pending_points += len(points)
        self.stats.points_requested += len(points)
        self.stats.verify_checks += len(verifications)
        try:
            await send(
                event(
                    "accepted",
                    request.id,
                    points=len(points),
                    verifications=len(verifications),
                )
            )
            req_stats = {
                "points": len(points),
                "simulated": 0,
                "cache_hits": 0,
                "peer_served": 0,
                "coalesced": 0,
                "verify_checks": len(verifications),
                "verify_hits": 0,
                "verify_simulated": 0,
            }
            results: List[Optional[Tuple[Measurement, str, bool]]] = [
                None
            ] * len(points)
            done = 0
            done_lock = asyncio.Lock()

            source_keys = {
                "simulated": "simulated",
                "cache": "cache_hits",
                "peer": "peer_served",
                "coalesced": "coalesced",
            }

            async def one_point(index: int, point: SweepPoint) -> None:
                nonlocal done
                measurement, source, cached = await self._obtain_point(point)
                results[index] = (measurement, source, cached)
                req_stats[source_keys[source]] += 1
                async with done_lock:
                    done += 1
                    seq = done
                await send(
                    event(
                        "point",
                        request.id,
                        seq=seq,
                        total=len(points),
                        index=index,
                        axes=point.axes,
                        source=source,
                        time=measurement.time,
                    )
                )

            async def one_verify(ver: _Verification) -> None:
                outcome = await self._obtain_verify(ver)
                if outcome == "cache":
                    req_stats["verify_hits"] += 1
                    self.stats.verify_hits += 1
                elif outcome == "simulated":
                    req_stats["verify_simulated"] += 2

            await asyncio.gather(
                *(one_verify(v) for v in verifications),
                *(one_point(i, p) for i, p in enumerate(points)),
            )
        finally:
            self._pending_points -= len(points)

        runs = []
        for point, outcome in zip(points, results):
            measurement, _source, cached = outcome
            runs.append(
                {
                    "axes": point.axes,
                    "cached": cached,
                    "fingerprint": point.fingerprint,
                    "measurement": measurement.to_dict(),
                }
            )
        await send(
            event(
                "result",
                request.id,
                result={
                    "engine": ENGINE_VERSION,
                    "specs": [s.to_dict() for s in specs],
                    "stats": req_stats,
                    "runs": runs,
                },
            )
        )

    def _expand(
        self, specs: List[SweepSpec]
    ) -> Tuple[List[SweepPoint], List[_Verification]]:
        """Expand + fingerprint every point (runs on a worker thread:
        expansion transforms programs, which is CPU work the event loop
        must not absorb)."""
        points: List[SweepPoint] = []
        verifications: List[_Verification] = []
        for spec in specs:
            pts, vers = expand_spec(spec)
            points.extend(pts)
            verifications.extend(vers)
        for point in points:
            point.fingerprint = (
                job_fingerprint(point.job())
                if point.externals is None
                else None
            )
        return points, verifications

    # ------------------------------------------------- point dedup core

    async def _obtain_point(
        self, point: SweepPoint
    ) -> Tuple[Measurement, str, bool]:
        """One measurement, deduplicated: ``(measurement, source,
        cached)`` where ``source`` names the layer that produced it and
        ``cached`` matches the :class:`~repro.harness.sweep.SweepRun`
        flag a direct session sweep would report (served from the
        shared cache rather than simulated by anyone this round)."""
        fp = point.fingerprint
        if fp is None:  # externals: uncacheable, uncoalesceable
            run = await self._run_job(point.job())
            self.stats.simulations += 1
            return (
                measurement_from_run(
                    run,
                    network=point.network,
                    label=point.label,
                    collective=point.collective,
                ),
                "simulated",
                False,
            )
        holder = self._inflight.get(fp)
        if holder is not None:
            # layer 2: subscribe to the in-flight identical simulation
            self.stats.coalesced += 1
            base, base_source = await holder
            return (
                dataclasses.replace(base, label=point.label),
                "coalesced",
                base_source in ("cache", "peer"),
            )
        future = self._loop.create_future()
        self._inflight[fp] = future
        try:
            base, source = await self._materialize(point, fp)
        except BaseException as exc:
            self._inflight.pop(fp, None)
            future.set_exception(exc)
            future.exception()  # a lone holder must not warn on GC
            raise
        future.set_result((base, source))
        self._inflight.pop(fp, None)
        return (
            dataclasses.replace(base, label=point.label),
            source,
            source in ("cache", "peer"),
        )

    async def _materialize(
        self, point: SweepPoint, fp: str
    ) -> Tuple[Measurement, str]:
        """Produce the base (label-less) measurement for ``fp`` via the
        cheapest layer: cache entry, a claiming peer's entry, or a
        simulation of our own (claimed cross-process first)."""
        cache = self.session.cache
        claimed = False
        if cache is not None:
            measurement = self._from_cache(cache, fp)
            if measurement is not None:
                self.stats.cache_hits += 1
                return measurement, "cache"
            claimed = cache.claim(fp)
            if not claimed:
                # layer 3: a peer process claimed this fingerprint
                measurement = await self._await_peer(cache, fp)
                if measurement is not None:
                    self.stats.peer_served += 1
                    return measurement, "peer"
                # peer crashed or stalled: take over (an unclaimed
                # duplicate simulation is still correct, just wasteful)
                claimed = cache.claim(fp)
        try:
            run = await self._run_job(
                dataclasses.replace(point.job(), label="")
            )
        except BaseException:
            if claimed:
                cache.release(fp)
            raise
        self.stats.simulations += 1
        measurement = measurement_from_run(
            run, network=point.network, collective=point.collective
        )
        if cache is not None:
            cache.put(
                fp,
                {
                    "kind": "measurement",
                    "inputs": dict(point.axes),
                    "measurement": measurement.to_dict(),
                },
            )
        return measurement, "simulated"

    def _from_cache(
        self, cache: SweepCache, fp: str
    ) -> Optional[Measurement]:
        payload = cache.get(fp)
        if payload is None or payload.get("kind") != "measurement":
            return None
        try:
            measurement = Measurement.from_dict(payload["measurement"])
        except (TypeError, ValueError, KeyError):
            cache.stats.corrupt += 1
            return None
        cache.stats.hits += 1
        return measurement

    async def _await_peer(
        self, cache: SweepCache, fp: str
    ) -> Optional[Measurement]:
        """Async twin of :meth:`SweepCache.wait_for`: poll for the
        claiming peer's entry without blocking the event loop."""
        deadline = self._loop.time() + self.peer_wait_timeout
        while True:
            measurement = self._from_cache(cache, fp)
            if measurement is not None:
                return measurement
            if not cache.claim_live(fp):
                return self._from_cache(cache, fp)
            if self._loop.time() >= deadline:
                return None
            await asyncio.sleep(self.peer_poll)

    # ------------------------------------------------- verification core

    async def _obtain_verify(self, ver: _Verification) -> str:
        """Satisfy one §4 equivalence check; raises on mismatch.
        Returns which layer satisfied it (``cache``/``peer``/
        ``coalesced``/``simulated``)."""
        key = ver.key
        cache = self.session.cache
        if key is None or cache is None:
            await self._run_verification(ver, None, False)
            return "simulated"
        if self._verdict_cached(cache, key):
            ver.prepared.equivalent = True
            cache.stats.verify_hits += 1
            return "cache"
        holder = self._inflight_verify.get(key)
        if holder is not None:
            await holder  # raises if the running check failed
            ver.prepared.equivalent = True
            return "coalesced"
        future = self._loop.create_future()
        self._inflight_verify[key] = future
        try:
            claimed = cache.claim(key)
            if not claimed:
                landed = await self._await_verify_peer(cache, key)
                if landed:
                    ver.prepared.equivalent = True
                    future.set_result(True)
                    self._inflight_verify.pop(key, None)
                    return "peer"
                claimed = cache.claim(key)
            await self._run_verification(ver, cache if claimed else None, key)
        except BaseException as exc:
            self._inflight_verify.pop(key, None)
            future.set_exception(exc)
            future.exception()
            raise
        future.set_result(True)
        self._inflight_verify.pop(key, None)
        return "simulated"

    async def _run_verification(
        self, ver: _Verification, cache, key
    ) -> None:
        try:
            run_a, run_b = await asyncio.gather(
                self._run_job(ver.original_job),
                self._run_job(ver.transformed_job),
            )
            self.stats.verify_simulations += 2
            ver.prepared.check_equivalence(run_a, run_b)  # raises
        except BaseException:
            if cache is not None and key:
                cache.release(key)
            raise
        if cache is not None and key:
            cache.put(
                key,
                {
                    "kind": "verify",
                    "equivalent": True,
                    "app": ver.prepared.app.name,
                    "nranks": ver.prepared.app.nranks,
                },
            )

    @staticmethod
    def _verdict_cached(cache: SweepCache, key: str) -> bool:
        payload = cache.get(key)
        return (
            payload is not None
            and payload.get("kind") == "verify"
            and payload.get("equivalent") is True
        )

    async def _await_verify_peer(self, cache: SweepCache, key: str) -> bool:
        deadline = self._loop.time() + self.peer_wait_timeout
        while True:
            if self._verdict_cached(cache, key):
                return True
            if not cache.claim_live(key):
                return self._verdict_cached(cache, key)
            if self._loop.time() >= deadline:
                return False
            await asyncio.sleep(self.peer_poll)

    # ----------------------------------------------- compare and verify

    async def _handle_compare(self, request: ServeRequest, send) -> None:
        self.stats.compares += 1
        body = dict(request.body)
        self._reject_unknown(
            body,
            (
                "app",
                "app_kwargs",
                "nranks",
                "network",
                "collective",
                "variant",
                "tile_size",
                "interchange",
            ),
        )
        name = body.get("app")
        if not isinstance(name, str):
            raise RequestError("compare needs 'app': a workload name")

        def work():
            app = build_app(
                name,
                nranks=body.get("nranks", 8),
                **dict(body.get("app_kwargs", {})),
            )
            return self.session.compare(
                CompareRequest(
                    app=app,
                    network=body.get("network"),
                    collective=(
                        body["collective"] if "collective" in body else UNSET
                    ),
                    variant=body.get("variant"),
                    tile_size=body.get("tile_size", "auto"),
                    interchange=body.get("interchange", "auto"),
                )
            )

        try:
            pair = await asyncio.to_thread(work)
        except ReproError as exc:
            raise RequestError(f"compare failed: {exc}") from None
        await send(
            event(
                "result",
                request.id,
                result={
                    "app": pair.app,
                    "network": pair.network,
                    "original": pair.original.to_dict(),
                    "transformed": pair.prepush.to_dict(),
                    "speedup": pair.speedup,
                    "equivalent": pair.equivalent,
                },
            )
        )

    async def _handle_verify(self, request: ServeRequest, send) -> None:
        self.stats.verifies += 1
        body = dict(request.body)
        self._reject_unknown(
            body,
            (
                "program",
                "nranks",
                "tile_size",
                "interchange",
                "variant",
                "network",
                "collective",
            ),
        )
        program = body.get("program")
        if not isinstance(program, str):
            raise RequestError("verify needs 'program': source text")

        def work():
            return self.session.verify(
                VerifyRequest(
                    program=program,
                    nranks=body.get("nranks", 8),
                    tile_size=body.get("tile_size", "auto"),
                    interchange=body.get("interchange", "auto"),
                    variant=body.get("variant"),
                    network=body.get("network"),
                    collective=(
                        body["collective"] if "collective" in body else UNSET
                    ),
                )
            )

        try:
            result = await asyncio.to_thread(work)
        except ReproError as exc:
            raise RequestError(f"verify failed: {exc}") from None
        eq = result.equivalence
        await send(
            event(
                "result",
                request.id,
                result={
                    "equivalent": eq.equivalent,
                    "speedup": eq.speedup,
                    "time_original": eq.time_original,
                    "time_transformed": eq.time_transformed,
                    "compared_arrays": list(eq.compared_arrays),
                    "mismatches": list(eq.mismatches),
                    "transformed": result.transform.unparse(),
                },
            )
        )

    # -------------------------------------------------------------- tune

    async def _handle_tune(self, request: ServeRequest, send) -> None:
        """Run a :func:`repro.tune.tune` search server-side.

        The search loop itself runs on a worker thread (it is ordinary
        blocking orchestration), but every candidate evaluation is
        routed back onto the event loop through :meth:`_tune_round` —
        i.e. through :meth:`_obtain_point` — so tune evaluations enjoy
        the same three-layer dedup as sweep points and coalesce with
        any concurrent client measuring the same fingerprints.
        """
        from ..errors import TuneError
        from ..tune.driver import tune as run_tune
        from ..tune.space import SearchSpace
        from ..tune.strategies import get_strategy

        self.stats.tunes += 1
        body = dict(request.body)
        self._reject_unknown(
            body,
            (
                "space",
                "strategy",
                "budget",
                "objective",
                "seed",
                "strategy_params",
            ),
        )
        space_data = body.get("space")
        if not isinstance(space_data, dict):
            raise RequestError(
                "tune needs 'space': a SearchSpace.to_dict() object"
            )
        try:
            space = SearchSpace.from_dict(space_data)
        except (ReproError, TypeError, ValueError) as exc:
            raise RequestError(f"invalid search space: {exc}") from None
        strategy = body.get("strategy", "hill-climb")
        if not isinstance(strategy, str):
            raise RequestError("'strategy' must be a string")
        try:
            get_strategy(strategy)
        except TuneError as exc:
            raise RequestError(str(exc)) from None
        budget = body.get("budget", 32)
        if not isinstance(budget, int) or isinstance(budget, bool) or budget < 1:
            raise RequestError("'budget' must be a positive integer")
        # admission control: a tune evaluates up to `budget` points (x2
        # with baselines); refuse searches the pending-point budget
        # could never admit round by round
        if budget > self.max_pending_points:
            raise OverloadError(
                f"tune budget {budget} exceeds the server's "
                f"{self.max_pending_points}-point admission budget; "
                f"lower the budget or raise --max-pending"
            )
        objective = body.get("objective", "time")
        if objective not in ("time", "speedup"):
            raise RequestError(
                "'objective' must be 'time' or 'speedup' over the wire"
            )
        seed = body.get("seed")
        if seed is not None and (
            not isinstance(seed, int) or isinstance(seed, bool)
        ):
            raise RequestError("'seed' must be an integer")
        params = body.get("strategy_params") or {}
        if not isinstance(params, dict):
            raise RequestError("'strategy_params' must be an object")

        await send(
            event(
                "accepted",
                request.id,
                budget=budget,
                strategy=strategy,
                space_fingerprint=space.fingerprint(),
            )
        )

        loop = self._loop

        def evaluator(specs):
            # called on the driver's worker thread; hop each round back
            # onto the event loop where the dedup machinery lives
            return asyncio.run_coroutine_threadsafe(
                self._tune_round(specs), loop
            ).result()

        def on_step(step) -> None:
            asyncio.run_coroutine_threadsafe(
                send(event("step", request.id, **step.to_dict())), loop
            ).result()

        def work():
            return run_tune(
                space,
                session=self.session,
                strategy=strategy,
                budget=budget,
                objective=objective,
                seed=seed,
                strategy_params=params,
                evaluate=evaluator,
                on_step=on_step,
            )

        try:
            result = await asyncio.to_thread(work)
        except TuneError as exc:
            raise RequestError(f"tune failed: {exc}") from None
        payload = result.to_dict()
        payload["trajectory"] = {
            "header": result.trajectory.header,
            "steps": [s.to_dict() for s in result.trajectory.steps],
        }
        await send(event("result", request.id, result=payload))

    async def _tune_round(self, specs: List[SweepSpec]):
        """One tune evaluation round as a ``SweepResult``, every point
        going through :meth:`_obtain_point` (all three dedup layers)."""
        from ..harness.sweep import SweepResult, SweepRun, SweepStats

        specs = [
            s
            if s.engine_mode is not None
            else dataclasses.replace(s, engine_mode=self.session.engine_mode)
            for s in specs
        ]
        points, verifications = await asyncio.to_thread(self._expand, specs)
        if self._pending_points + len(points) > self.max_pending_points:
            raise OverloadError(
                f"tune round expands to {len(points)} points but the "
                f"server already has {self._pending_points} pending of "
                f"a {self.max_pending_points}-point budget"
            )
        self._pending_points += len(points)
        self.stats.points_requested += len(points)
        self.stats.verify_checks += len(verifications)
        stats = SweepStats(points=len(points))
        try:
            outcomes = await asyncio.gather(
                *(self._obtain_point(p) for p in points)
            )
            for ver in verifications:
                outcome = await self._obtain_verify(ver)
                if outcome == "cache":
                    self.stats.verify_hits += 1
                    stats.verify_hits += 1
                elif outcome == "simulated":
                    stats.verify_simulated += 2
                stats.verify_checks += 1
        finally:
            self._pending_points -= len(points)
        runs: List[Any] = []
        for point, (measurement, source, cached) in zip(points, outcomes):
            if source == "simulated":
                stats.simulated += 1
            elif cached:
                stats.cache_hits += 1
            else:
                stats.deduplicated += 1
            runs.append(
                SweepRun(
                    axes=point.axes,
                    measurement=measurement,
                    cached=cached,
                    fingerprint=point.fingerprint,
                    transform=point.transform,
                )
            )
        return SweepResult(runs=runs, stats=stats, specs=list(specs))

    # --------------------------------------------------- status/shutdown

    async def _handle_status(self, request: ServeRequest, send) -> None:
        cache = self.session.cache
        await send(
            event(
                "result",
                request.id,
                result={
                    "protocol": PROTOCOL_VERSION,
                    "engine": ENGINE_VERSION,
                    "host": self.host,
                    "port": self.port,
                    "draining": self._draining,
                    "active_requests": self._active_requests,
                    "pending_points": self._pending_points,
                    "max_pending_points": self.max_pending_points,
                    "stats": self.stats.to_dict(),
                    "cache": (
                        None if cache is None else vars(cache.stats).copy()
                    ),
                },
            )
        )

    async def _handle_shutdown(self, request: ServeRequest, send) -> None:
        body = dict(request.body)
        self._reject_unknown(body, ("drain",))
        drain = body.get("drain", True)
        if not isinstance(drain, bool):
            raise RequestError("'drain' must be a boolean")
        await send(event("result", request.id, result={"stopping": True}))
        # detached: shutdown(drain) waits for active requests, and this
        # handler IS one — awaiting it here would deadlock the drain
        asyncio.ensure_future(self.shutdown(drain=drain))


class ThreadedServer:
    """Host a :class:`SweepServer` on a dedicated thread + event loop.

    The synchronous embedding used by the benchmarks and tests::

        with ThreadedServer(cache_dir=".cache") as ts:
            client = ServeClient(port=ts.port)
            ...

    ``stop()`` (or context exit) performs a drain shutdown.
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self._kwargs = server_kwargs
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[SweepServer] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ThreadedServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-host", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                self.server = SweepServer(**self._kwargs)
                await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:  # surface on the caller thread
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self.server.wait_closed()

        asyncio.run(main())

    def stop(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        if self._loop is None or self.server is None:
            return
        if self._loop.is_closed():
            # a client's shutdown verb (or a signal) already stopped the
            # server and its loop; stop() stays idempotent
            self._thread.join(timeout)
            self._loop = None
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(drain=drain), self._loop
            )
        except RuntimeError:  # loop closed between the check and the call
            self._thread.join(timeout)
            self._loop = None
            return
        try:
            future.result(timeout)
        finally:
            self._thread.join(timeout)
            self._loop = None

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
