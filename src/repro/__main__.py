"""``python -m repro`` — alias for the ``compuniformer`` CLI."""

import sys

from .cli import main

sys.exit(main())
