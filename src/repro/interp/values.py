"""Runtime value representation for the interpreter.

Arrays are Fortran arrays: column-major numpy storage plus per-dimension
lower bounds.  Scalars live as Python ``int``/``float``/``bool`` in the
frame.  All integer storage is int64 and real storage float64
(:data:`~repro.runtime.costmodel.ELEMENT_BYTES` per element), which fixes
message sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from ..errors import InterpError

Scalar = Union[int, float, bool]


_DTYPES = {"integer": np.int64, "real": np.float64, "logical": np.int64}


@dataclass
class FArray:
    """A Fortran array: F-ordered numpy data + lower bounds per dimension."""

    data: np.ndarray
    lbounds: Tuple[int, ...]
    base_type: str

    @staticmethod
    def allocate(
        base_type: str, bounds: Sequence[Tuple[int, int]]
    ) -> "FArray":
        """Allocate an array given inclusive (lo, hi) bounds per dimension."""
        shape = []
        lbounds = []
        for lo, hi in bounds:
            if hi < lo:
                raise InterpError(
                    f"array dimension with upper bound {hi} below lower "
                    f"bound {lo}"
                )
            shape.append(hi - lo + 1)
            lbounds.append(lo)
        dtype = _DTYPES.get(base_type)
        if dtype is None:
            raise InterpError(f"cannot allocate array of type {base_type!r}")
        data = np.zeros(tuple(shape), dtype=dtype, order="F")
        return FArray(data=data, lbounds=tuple(lbounds), base_type=base_type)

    @property
    def rank(self) -> int:
        return self.data.ndim

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    # ------------------------------------------------------------- indexing

    def _index(self, subs: Sequence[int]) -> Tuple[int, ...]:
        if len(subs) != self.rank:
            raise InterpError(
                f"rank mismatch: {len(subs)} subscripts for rank-{self.rank} "
                f"array"
            )
        out = []
        for s, lo, extent in zip(subs, self.lbounds, self.data.shape):
            off = int(s) - lo
            if not 0 <= off < extent:
                raise InterpError(
                    f"subscript {s} out of bounds [{lo}, {lo + extent - 1}]"
                )
            out.append(off)
        return tuple(out)

    def get(self, subs: Sequence[int]) -> Scalar:
        value = self.data[self._index(subs)]
        return float(value) if self.base_type == "real" else int(value)

    def set(self, subs: Sequence[int], value: Scalar) -> None:
        self.data[self._index(subs)] = value

    # ------------------------------------------------------------- sections

    def section(
        self, ranges: Sequence[Union[int, Tuple[int, int]]]
    ) -> np.ndarray:
        """An ndarray view of a rectangular section.

        Each entry is a single subscript (that dimension collapses) or an
        inclusive ``(lo, hi)`` pair.  The result is a (possibly strided)
        view — writes through it hit this array's storage.
        """
        if len(ranges) != self.rank:
            raise InterpError(
                f"rank mismatch: {len(ranges)} section subscripts for "
                f"rank-{self.rank} array"
            )
        index = []
        for r, lo, extent in zip(ranges, self.lbounds, self.data.shape):
            if isinstance(r, tuple):
                a, b = int(r[0]) - lo, int(r[1]) - lo
                if not (0 <= a and b < extent and a <= b + 1):
                    raise InterpError(
                        f"section {r[0]}:{r[1]} out of bounds "
                        f"[{lo}, {lo + extent - 1}]"
                    )
                index.append(slice(a, b + 1))
            else:
                off = int(r) - lo
                if not 0 <= off < extent:
                    raise InterpError(
                        f"subscript {r} out of bounds [{lo}, {lo + extent - 1}]"
                    )
                index.append(off)
        return self.data[tuple(index)]

    def flat(self) -> np.ndarray:
        """1-D view in Fortran (column-major) element order."""
        return self.data.reshape(-1, order="F")

    def flat_offset(self, subs: Sequence[int]) -> int:
        """0-based flat position of an element in Fortran order."""
        idx = self._index(subs)
        off = 0
        stride = 1
        for i, extent in zip(idx, self.data.shape):
            off += i * stride
            stride *= extent
        return off

    def view_from(
        self, flat_offset: int, bounds: Sequence[Tuple[int, int]], base_type: str
    ) -> "FArray":
        """Fortran sequence association: a dummy array overlaid on this
        array's storage sequence starting at ``flat_offset``."""
        shape = [hi - lo + 1 for lo, hi in bounds]
        need = 1
        for s in shape:
            need *= s
        flat = self.flat()
        if flat_offset < 0 or flat_offset + need > flat.size:
            raise InterpError(
                f"sequence association needs {need} elements at offset "
                f"{flat_offset}, but only {flat.size - flat_offset} remain"
            )
        window = flat[flat_offset : flat_offset + need]
        data = window.reshape(tuple(shape), order="F")
        return FArray(
            data=data,
            lbounds=tuple(lo for lo, _ in bounds),
            base_type=base_type,
        )

    def copy(self) -> "FArray":
        return FArray(
            data=self.data.copy(order="F"),
            lbounds=self.lbounds,
            base_type=self.base_type,
        )

    def __eq__(self, other: object) -> bool:  # pragma: no cover - debug aid
        if not isinstance(other, FArray):
            return NotImplemented
        return (
            self.lbounds == other.lbounds
            and self.base_type == other.base_type
            and np.array_equal(self.data, other.data)
        )
