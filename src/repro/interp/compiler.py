"""Closure compiler: the interpreter's fast path for yield-free code.

The tree-walking interpreter dispatches on AST node type at *every*
visit, charges the cost model through a method call per operation, and
threads every statement through generator machinery (``yield from``)
even when the statement can never yield an engine operation.  Profiling
shows those three costs — isinstance chains, per-visit dispatch, and
generator frames — dominate the whole experiment harness.

This module removes all three for the common case.  Each AST node is
compiled **once** into a Python closure specialized for that node:

* expressions become ``fn(frame) -> value`` closures with the operator,
  literal value, intrinsic, or subscript arity baked in at compile time;
* *pure* statements (whose subtree can never yield to the simulator —
  no MPI call anywhere below them) become ``fn(frame) -> None`` closures
  that execute eagerly, without a generator frame;
* virtual-CPU charges accumulate into a shared one-element list cell
  (``acc[0] += cost``) instead of a method call, and entire pure regions
  flush as a single ``Compute`` event at the next communication point.

Purity is computed per statement with a call-graph fixpoint: a call is
impure only if it is an MPI operation or (transitively) reaches one.
External procedures execute synchronously and are therefore pure in
this sense.  Impure statements keep the interpreter's generator path,
but their nested pure sub-statements still take the fast path, so an
outer time-step loop containing MPI only pays generator overhead at the
communication skeleton, not inside the compute kernels.

Exactness: every closure charges the cost model exactly as the
tree-walking path does (same per-operation constants, same runtime
int/real discrimination, same evaluation order for error parity), so
virtual-time results are unchanged — only wall-clock time drops.  See
DESIGN.md §5 for the invariants this file maintains.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import InterpError
from ..lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    BoolLit,
    CallStmt,
    Comment,
    ContinueStmt,
    CycleStmt,
    DoLoop,
    ExitStmt,
    ExternalDecl,
    Expr,
    FuncCall,
    If,
    ImplicitNone,
    IntLit,
    Print,
    RealLit,
    Return,
    Stmt,
    StrLit,
    Subroutine,
    TypeDecl,
    UnaryOp,
    VarRef,
    WhileLoop,
)

ExprFn = Callable[[Any], Any]  # fn(frame) -> scalar value
StmtFn = Callable[[Any], None]  # fn(frame) -> None (may raise control flow)


def _subscript_error(subs: Sequence[int], arr) -> InterpError:
    """Reproduce FArray._index's error for an out-of-bounds subscript."""
    data = arr.data
    if len(subs) != data.ndim:
        return InterpError(
            f"rank mismatch: {len(subs)} subscripts for rank-{data.ndim} "
            f"array"
        )
    for s, lo, extent in zip(subs, arr.lbounds, data.shape):
        if not 0 <= s - lo < extent:
            return InterpError(
                f"subscript {s} out of bounds [{lo}, {lo + extent - 1}]"
            )
    return InterpError("internal: subscript error without cause")


class StmtCompiler:
    """Compiles AST nodes of one :class:`Interpreter` into closures.

    One compiler exists per interpreter instance; all caches are keyed
    by node identity (the AST outlives the compiler, so ids are stable).
    """

    def __init__(self, interp) -> None:
        self.interp = interp
        self.cost = interp.cost
        self.acc = interp._acc_cell  # shared [float] accumulator
        # id(node) -> (node, fn); the node reference pins the id
        self._exprs: Dict[int, Tuple[Expr, ExprFn]] = {}
        self._stmts: Dict[int, Tuple[Stmt, Optional[StmtFn]]] = {}
        self._bodies: Dict[int, Tuple[list, list]] = {}
        self._sub_purity: Dict[str, bool] = {}

    # ------------------------------------------------------------- purity

    def stmt_is_pure(self, stmt: Stmt) -> bool:
        """True when no execution of ``stmt`` can yield a SimOp."""
        if isinstance(stmt, CallStmt):
            return self._call_is_pure(stmt.name)
        if isinstance(stmt, DoLoop):
            return all(self.stmt_is_pure(s) for s in stmt.body)
        if isinstance(stmt, WhileLoop):
            return all(self.stmt_is_pure(s) for s in stmt.body)
        if isinstance(stmt, If):
            return all(
                self.stmt_is_pure(s) for _, b in stmt.branches for s in b
            ) and all(self.stmt_is_pure(s) for s in stmt.else_body)
        return isinstance(
            stmt,
            (
                Assign,
                Print,
                Return,
                ExitStmt,
                CycleStmt,
                ContinueStmt,
                Comment,
                TypeDecl,
                ImplicitNone,
                ExternalDecl,
            ),
        )

    def _call_is_pure(self, name: str) -> bool:
        from .interpreter import _MPI_CALLS

        if name in _MPI_CALLS:
            return False
        if self.interp.externals.lookup(name) is not None:
            return True
        sub = self.interp.subroutines.get(name)
        if sub is None:
            return True  # unknown procedure: the error raises eagerly
        return self.sub_is_pure(sub)

    def sub_is_pure(self, sub: Subroutine) -> bool:
        if not self._sub_purity:
            self._compute_subroutine_purity()
        return self._sub_purity.get(sub.name, True)

    def _compute_subroutine_purity(self) -> None:
        """Transitive purity for every subroutine, as a worklist fixpoint.

        A subroutine is impure iff its body syntactically contains an MPI
        call, or it calls (transitively, through any cycle) an impure
        subroutine.  Computed bottom-up over the whole call graph in one
        pass — a recursive walk with an optimistic memo would finalize a
        member of a mutual-recursion cycle using a provisional answer.
        """
        from .interpreter import _MPI_CALLS

        subroutines = self.interp.subroutines
        calls: Dict[str, set] = {}
        impure: set = set()
        for name, sub in subroutines.items():
            callees: set = set()
            stack = list(sub.body)
            while stack:
                stmt = stack.pop()
                if isinstance(stmt, CallStmt):
                    if stmt.name in _MPI_CALLS:
                        impure.add(name)
                    elif stmt.name in subroutines:
                        callees.add(stmt.name)
                elif isinstance(stmt, (DoLoop, WhileLoop)):
                    stack.extend(stmt.body)
                elif isinstance(stmt, If):
                    for _, body in stmt.branches:
                        stack.extend(body)
                    stack.extend(stmt.else_body)
            calls[name] = callees

        callers: Dict[str, set] = {name: set() for name in subroutines}
        for name, callees in calls.items():
            for callee in callees:
                callers[callee].add(name)
        worklist = list(impure)
        while worklist:
            name = worklist.pop()
            for caller in callers[name]:
                if caller not in impure:
                    impure.add(caller)
                    worklist.append(caller)

        self._sub_purity = {
            name: name not in impure for name in subroutines
        }

    # -------------------------------------------------------------- bodies

    def body_entries(self, body: List[Stmt]):
        """Compile a statement list into ``[(pure_fn_or_None, stmt), ...]``.

        Memoized by list identity; the interpreter's generator
        ``_exec_body`` walks this instead of re-dispatching per visit.
        """
        key = id(body)
        hit = self._bodies.get(key)
        if hit is not None and hit[0] is body:
            return hit[1]
        entries = [(self.stmt(s), s) for s in body]
        self._bodies[key] = (body, entries)
        return entries

    def _body_fns(self, body: Sequence[Stmt]) -> List[StmtFn]:
        """Compile an all-pure statement list to bare closures."""
        fns = []
        for s in body:
            fn = self.stmt(s)
            assert fn is not None, "impure statement inside pure region"
            fns.append(fn)
        return fns

    # ---------------------------------------------------------- statements

    def stmt(self, s: Stmt) -> Optional[StmtFn]:
        """Compiled closure for a pure statement, or None if impure."""
        key = id(s)
        hit = self._stmts.get(key)
        if hit is not None and hit[0] is s:
            return hit[1]
        fn = self._compile_stmt(s) if self.stmt_is_pure(s) else None
        self._stmts[key] = (s, fn)
        return fn

    def _compile_stmt(self, s: Stmt) -> StmtFn:
        acc = self.acc
        so = self.cost.stmt_overhead

        if isinstance(s, Assign):
            return self._compile_assign(s)
        if isinstance(s, DoLoop):
            return self._compile_do(s)
        if isinstance(s, If):
            return self._compile_if(s)
        if isinstance(s, WhileLoop):
            return self._compile_while(s)
        if isinstance(s, CallStmt):
            return self._compile_call(s)
        if isinstance(s, Print):
            itemfs = [self.expr(e) for e in s.items]
            out = self.interp.output

            def run_print(f, itemfs=itemfs, out=out):
                acc[0] += so
                out.append(tuple(itf(f) for itf in itemfs))

            return run_print
        if isinstance(s, Return):
            from .interpreter import _Return

            def run_return(f):
                acc[0] += so
                raise _Return()

            return run_return
        if isinstance(s, ExitStmt):
            from .interpreter import _Exit

            def run_exit(f):
                acc[0] += so
                raise _Exit()

            return run_exit
        if isinstance(s, CycleStmt):
            from .interpreter import _Cycle

            def run_cycle(f):
                acc[0] += so
                raise _Cycle()

            return run_cycle
        if isinstance(
            s, (ContinueStmt, Comment, TypeDecl, ImplicitNone, ExternalDecl)
        ):
            def run_nop(f):
                acc[0] += so

            return run_nop
        raise InterpError(
            f"cannot execute {type(s).__name__}", getattr(s, "line", 0)
        )

    def _compile_assign(self, s: Assign) -> StmtFn:
        acc = self.acc
        so = self.cost.stmt_overhead
        mem = self.cost.mem_access
        rhs = self.expr(s.rhs)
        lhs = s.lhs
        line = s.line

        if isinstance(lhs, VarRef):
            name = lhs.name

            def run_scalar(f):
                acc[0] += so
                v = rhs(f)
                scalars = f.scalars
                if name not in scalars:
                    raise InterpError(f"undeclared scalar {name!r}", line)
                t = f.types.get(name, "integer")
                if t == "integer":
                    scalars[name] = int(v)
                elif t == "real":
                    scalars[name] = float(v)
                else:
                    scalars[name] = bool(v)

            return run_scalar

        if isinstance(lhs, ArrayRef):
            name = lhs.name
            subfs = [self.expr(e) for e in lhs.subs]
            if len(subfs) == 1:
                s0 = subfs[0]

                def run_set1(f):
                    acc[0] += so
                    v = rhs(f)
                    arr = f.arrays.get(name)
                    if arr is None:
                        raise InterpError(f"undeclared array {name!r}", line)
                    i0 = int(s0(f))
                    acc[0] += mem
                    data = arr.data
                    j0 = i0 - arr.lbounds[0]
                    if data.ndim == 1 and 0 <= j0 < data.shape[0]:
                        data[j0] = v
                    else:
                        raise _subscript_error((i0,), arr)

                return run_set1
            if len(subfs) == 2:
                s0, s1 = subfs

                def run_set2(f):
                    acc[0] += so
                    v = rhs(f)
                    arr = f.arrays.get(name)
                    if arr is None:
                        raise InterpError(f"undeclared array {name!r}", line)
                    i0 = int(s0(f))
                    i1 = int(s1(f))
                    acc[0] += mem
                    data = arr.data
                    lb = arr.lbounds
                    j0 = i0 - lb[0]
                    j1 = i1 - lb[1]
                    shape = data.shape
                    if (
                        data.ndim == 2
                        and 0 <= j0 < shape[0]
                        and 0 <= j1 < shape[1]
                    ):
                        data[j0, j1] = v
                    else:
                        raise _subscript_error((i0, i1), arr)

                return run_set2

            def run_setn(f):
                acc[0] += so
                v = rhs(f)
                arr = f.arrays.get(name)
                if arr is None:
                    raise InterpError(f"undeclared array {name!r}", line)
                subs = [int(sf(f)) for sf in subfs]
                acc[0] += mem
                arr.set(subs, v)

            return run_setn

        def run_bad(f):
            acc[0] += so
            raise InterpError("invalid assignment target", line)

        return run_bad

    def _compile_do(self, s: DoLoop) -> StmtFn:
        from .interpreter import _Cycle, _Exit

        acc = self.acc
        so = self.cost.stmt_overhead
        iop = self.cost.int_op
        lof = self.expr(s.lo)
        hif = self.expr(s.hi)
        stepf = self.expr(s.step) if s.step else None
        bodyfns = self._body_fns(s.body)
        var = s.var
        line = s.line

        def run_do(f):
            acc[0] += so
            lo = int(lof(f))
            hi = int(hif(f))
            step = int(stepf(f)) if stepf is not None else 1
            if step == 0:
                raise InterpError("do loop with zero step", line)
            trips = max(0, (hi - lo + step) // step)
            value = lo
            scalars = f.scalars
            broke = False
            for _ in range(trips):
                scalars[var] = value
                try:
                    for bf in bodyfns:
                        bf(f)
                except _Exit:
                    broke = True
                    break
                except _Cycle:
                    pass
                value += step
            if not broke:
                scalars[var] = value
            acc[0] += iop * max(1, trips)

        return run_do

    def _compile_if(self, s: If) -> StmtFn:
        acc = self.acc
        so = self.cost.stmt_overhead
        iop = self.cost.int_op
        branches = [
            (self.expr(cond), self._body_fns(body))
            for cond, body in s.branches
        ]
        elsefns = self._body_fns(s.else_body)

        def run_if(f):
            acc[0] += so
            for cf, bfns in branches:
                acc[0] += iop
                if cf(f):
                    for bf in bfns:
                        bf(f)
                    return
            for bf in elsefns:
                bf(f)

        return run_if

    def _compile_while(self, s: WhileLoop) -> StmtFn:
        from .interpreter import _Cycle, _Exit

        acc = self.acc
        so = self.cost.stmt_overhead
        iop = self.cost.int_op
        condf = self.expr(s.cond)
        bodyfns = self._body_fns(s.body)
        line = s.line

        def run_while(f):
            acc[0] += so
            guard = 0
            while True:
                acc[0] += iop
                if not condf(f):
                    break
                guard += 1
                if guard > 10_000_000:
                    raise InterpError(
                        "while loop exceeded iteration guard", line
                    )
                try:
                    for bf in bodyfns:
                        bf(f)
                except _Exit:
                    break
                except _Cycle:
                    continue

        return run_while

    def _compile_call(self, s: CallStmt) -> StmtFn:
        """A pure CallStmt: external, pure local subroutine, or unknown."""
        acc = self.acc
        so = self.cost.stmt_overhead
        itp = self.interp
        name = s.name

        ext = itp.externals.lookup(name)
        if ext is not None:

            def run_external(f):
                acc[0] += so
                itp._exec_external(ext, s, f)

            return run_external

        sub = itp.subroutines.get(name)
        if sub is None:

            def run_unknown(f):
                acc[0] += so
                raise InterpError(
                    f"call to unknown procedure {name!r} (not defined, not "
                    f"registered as external, not an MPI call)",
                    s.line,
                )

            return run_unknown

        from .interpreter import _Return

        compiled_body: Optional[List[StmtFn]] = None

        def run_subroutine(f):
            nonlocal compiled_body
            acc[0] += so
            callee, copy_back, element_back = itp._bind_call(sub, s, f)
            if compiled_body is None:
                # compiled lazily so self-recursive subroutines terminate
                compiled_body = self._body_fns(sub.body)
            try:
                for bf in compiled_body:
                    bf(callee)
            except _Return:
                pass
            itp._copy_back_results(f, callee, copy_back, element_back)

        return run_subroutine

    # --------------------------------------------------------- expressions

    def expr(self, e: Expr) -> ExprFn:
        key = id(e)
        hit = self._exprs.get(key)
        if hit is not None and hit[0] is e:
            return hit[1]
        fn = self._compile_expr(e)
        self._exprs[key] = (e, fn)
        return fn

    def _compile_expr(self, e: Expr) -> ExprFn:
        if isinstance(e, (IntLit, RealLit, BoolLit, StrLit)):
            v = e.value
            return lambda f, v=v: v
        if isinstance(e, VarRef):
            name = e.name
            line = e.line

            def run_var(f):
                try:
                    return f.scalars[name]
                except KeyError:
                    raise InterpError(
                        f"undefined variable {name!r}", line
                    ) from None

            return run_var
        if isinstance(e, ArrayRef):
            return self._compile_array_get(e)
        if isinstance(e, BinOp):
            return self._compile_binop(e)
        if isinstance(e, UnaryOp):
            return self._compile_unop(e)
        if isinstance(e, FuncCall):
            return self._compile_funcall(e)
        line = getattr(e, "line", 0)
        tname = type(e).__name__

        def run_bad(f):
            raise InterpError(f"cannot evaluate {tname}", line)

        return run_bad

    def _compile_array_get(self, e: ArrayRef) -> ExprFn:
        acc = self.acc
        mem = self.cost.mem_access
        name = e.name
        line = e.line
        subfs = [self.expr(s) for s in e.subs]

        if len(subfs) == 1:
            s0 = subfs[0]

            def run_get1(f):
                arr = f.arrays.get(name)
                if arr is None:
                    raise InterpError(f"undeclared array {name!r}", line)
                i0 = int(s0(f))
                acc[0] += mem
                data = arr.data
                j0 = i0 - arr.lbounds[0]
                if data.ndim == 1 and 0 <= j0 < data.shape[0]:
                    v = data[j0]
                    return float(v) if arr.base_type == "real" else int(v)
                raise _subscript_error((i0,), arr)

            return run_get1
        if len(subfs) == 2:
            s0, s1 = subfs

            def run_get2(f):
                arr = f.arrays.get(name)
                if arr is None:
                    raise InterpError(f"undeclared array {name!r}", line)
                i0 = int(s0(f))
                i1 = int(s1(f))
                acc[0] += mem
                data = arr.data
                lb = arr.lbounds
                j0 = i0 - lb[0]
                j1 = i1 - lb[1]
                shape = data.shape
                if (
                    data.ndim == 2
                    and 0 <= j0 < shape[0]
                    and 0 <= j1 < shape[1]
                ):
                    v = data[j0, j1]
                    return float(v) if arr.base_type == "real" else int(v)
                raise _subscript_error((i0, i1), arr)

            return run_get2

        def run_getn(f):
            arr = f.arrays.get(name)
            if arr is None:
                raise InterpError(f"undeclared array {name!r}", line)
            subs = [int(sf(f)) for sf in subfs]
            acc[0] += mem
            return arr.get(subs)

        return run_getn

    def _compile_binop(self, e: BinOp) -> ExprFn:
        acc = self.acc
        iop = self.cost.int_op
        rop = self.cost.real_op
        op = e.op
        line = e.line
        lf = self.expr(e.left)
        rf = self.expr(e.right)

        if op == ".and.":

            def run_and(f):
                acc[0] += iop
                return bool(lf(f)) and bool(rf(f))

            return run_and
        if op == ".or.":

            def run_or(f):
                acc[0] += iop
                return bool(lf(f)) or bool(rf(f))

            return run_or

        if op == "+":

            def run_add(f):
                l = lf(f)
                r = rf(f)
                acc[0] += (
                    rop if isinstance(l, float) or isinstance(r, float) else iop
                )
                return l + r

            return run_add
        if op == "-":

            def run_sub(f):
                l = lf(f)
                r = rf(f)
                acc[0] += (
                    rop if isinstance(l, float) or isinstance(r, float) else iop
                )
                return l - r

            return run_sub
        if op == "*":

            def run_mul(f):
                l = lf(f)
                r = rf(f)
                acc[0] += (
                    rop if isinstance(l, float) or isinstance(r, float) else iop
                )
                return l * r

            return run_mul
        if op == "/":

            def run_div(f):
                l = lf(f)
                r = rf(f)
                if isinstance(l, float) or isinstance(r, float):
                    acc[0] += rop
                    return l / r
                acc[0] += iop
                if r == 0:
                    raise InterpError("integer division by zero", line)
                q = abs(l) // abs(r)
                return q if (l >= 0) == (r >= 0) else -q

            return run_div
        if op == "**":

            def run_pow(f):
                l = lf(f)
                r = rf(f)
                acc[0] += (
                    rop if isinstance(l, float) or isinstance(r, float) else iop
                )
                return l**r

            return run_pow

        cmp = {
            "==": lambda l, r: l == r,
            "/=": lambda l, r: l != r,
            "<": lambda l, r: l < r,
            "<=": lambda l, r: l <= r,
            ">": lambda l, r: l > r,
            ">=": lambda l, r: l >= r,
        }.get(op)
        if cmp is not None:

            def run_cmp(f):
                l = lf(f)
                r = rf(f)
                acc[0] += (
                    rop if isinstance(l, float) or isinstance(r, float) else iop
                )
                return cmp(l, r)

            return run_cmp

        def run_badop(f):
            lf(f)
            rf(f)
            raise InterpError(f"unknown operator {op!r}", line)

        return run_badop

    def _compile_unop(self, e: UnaryOp) -> ExprFn:
        acc = self.acc
        iop = self.cost.int_op
        rop = self.cost.real_op
        vf = self.expr(e.operand)
        line = e.line
        if e.op == "-":

            def run_neg(f):
                v = vf(f)
                acc[0] += rop if isinstance(v, float) else iop
                return -v

            return run_neg
        if e.op == ".not.":

            def run_not(f):
                v = vf(f)
                acc[0] += iop
                return not bool(v)

            return run_not
        op = e.op

        def run_badu(f):
            vf(f)
            raise InterpError(f"unknown unary op {op!r}", line)

        return run_badu

    def _compile_funcall(self, e: FuncCall) -> ExprFn:
        acc = self.acc
        intr = self.cost.intrinsic
        itp = self.interp
        name = e.name
        line = e.line

        if name == "mynode":
            return lambda f: itp.rank
        if name == "numnodes":
            return lambda f: itp.size

        argfs = [self.expr(a) for a in e.args]

        if name == "mod" and len(argfs) == 2:
            a0, a1 = argfs

            def run_mod(f):
                a = a0(f)
                b = a1(f)
                acc[0] += intr
                if isinstance(a, int) and isinstance(b, int):
                    if b == 0:
                        raise InterpError("mod with zero divisor", line)
                    return int(math.fmod(a, b))
                return math.fmod(a, b)

            return run_mod

        one_arg = {
            "abs": abs,
            "int": int,
            "real": float,
            "sqrt": math.sqrt,
            "sin": math.sin,
            "cos": math.cos,
            "exp": math.exp,
            "log": math.log,
        }.get(name)
        if one_arg is not None and len(argfs) == 1:
            a0 = argfs[0]

            def run_one(f):
                v = a0(f)
                acc[0] += intr
                return one_arg(v)

            return run_one

        if name in ("min", "max"):
            pick = min if name == "min" else max

            def run_minmax(f):
                vals = [af(f) for af in argfs]
                acc[0] += intr
                return pick(vals)

            return run_minmax

        if name in ("iand", "ior", "ieor") and len(argfs) == 2:
            a0, a1 = argfs
            bit = {
                "iand": lambda a, b: a & b,
                "ior": lambda a, b: a | b,
                "ieor": lambda a, b: a ^ b,
            }[name]

            def run_bit(f):
                a = a0(f)
                b = a1(f)
                acc[0] += intr
                return bit(int(a), int(b))

            return run_bit

        if name == "ishft" and len(argfs) == 2:
            a0, a1 = argfs

            def run_shift(f):
                a = int(a0(f))
                s = int(a1(f))
                acc[0] += intr
                return a << s if s >= 0 else a >> (-s)

            return run_shift

        if name == "merge" and len(argfs) == 3:
            a0, a1, a2 = argfs

            def run_merge(f):
                x = a0(f)
                y = a1(f)
                c = a2(f)
                acc[0] += intr
                return x if bool(c) else y

            return run_merge

        # size(), wrong arity of a known intrinsic, or an unknown name:
        # fall back to the reference evaluator for exact error parity
        def run_fallback(f):
            return itp._eval_intrinsic(e, f)

        return run_fallback
