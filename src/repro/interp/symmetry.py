"""Rank-symmetry recorder: interpret one representative, prove the rest.

SPMD programs in the mini-Fortran subset are usually *rank-symmetric*:
every rank executes the same statements in the same order, and the rank
id (``mynode()``) only flows into stored data and collective payloads,
never into control flow, message sizes, or communication partners.  For
such programs one interpretation can stand in for all ``P`` ranks — the
basis of the replay engine (DESIGN.md §10) that scales simulations to
1024+ ranks.

:class:`SymmetryRecorder` is an :class:`~repro.interp.interpreter.Interpreter`
that executes the program *once*, carrying rank-dependent values as
:class:`RankVec` vectors with one slot per rank (numpy-backed, so the
vector width is almost free).  The proof obligation is enforced
dynamically as a taint discipline: any attempt to convert a
:class:`RankVec` to a single scalar — a loop bound, an IF condition, an
MPI count or root, a subscript of a store, a point-to-point partner —
raises :class:`~repro.errors.SymmetryError`, and the caller falls back
to full per-rank interpretation.  There are no false positives: if
recording succeeds, replaying the recorded trace is bit-identical to
interpreting every rank (the parity suite in
``tests/integration/test_replay_parity.py`` checks exactly this claim).

What must match full interpretation, and how it is kept exact:

* **Virtual time.**  Cost charges never depend on *values*, only on the
  statements executed, so the single recorded charge stream is every
  rank's charge stream.  Flush boundaries are reproduced exactly by
  walking the same compiled/pure body partition as the fast path
  (``_exec_body`` + ``_maybe_flush`` overrides) — pure regions
  accumulate without flushing, exactly like the compiled closures.
* **Data.**  Arrays that ever receive a rank-dependent store are
  *shadowed*: a ``(P, size)`` matrix holding every rank's copy in flat
  Fortran order.  Collectives are applied to shadows algebraically
  (an alltoall is a blocked transpose, an allgather a concatenation),
  which is exact because the registered algorithms move bytes without
  transforming them; integer allreduce is exact under any combination
  order, while *real* allreduce raises :class:`SymmetryError` because
  its result depends on the algorithm's combination order.
* **Scalars.**  Rank-uniform scalars stay Python ints (arbitrary
  precision, like the full path).  Rank-dependent values live in int64/
  float64 numpy vectors; intermediates that overflow int64 are the one
  documented divergence (no roster app does this — see DESIGN.md §10).
  Transcendental intrinsics on vectors go through :mod:`math`
  element-wise so libm results match the scalar path bit-for-bit.

Shadow memory is bounded by ``max_shadow_bytes`` (default 256 MiB of
worst-case ``P × array`` footprint).  An array whose shadow would blow
the budget degrades to an *approximate* representative copy: timing
stays exact (charges are value-independent), but its per-rank contents
are dropped and any value read back out of it becomes an
:class:`ApproxVec`, which may flow into further stores but never into
control flow, printed output, or anything else observable — those raise
:class:`SymmetryError`.  The owning :class:`~repro.interp.runner.ClusterRun`
is flagged ``data_approximate`` so correctness checkers refuse to
compare such arrays.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import InterpError, SimulationError, SymmetryError
from ..lang.ast_nodes import (
    ArrayRef,
    Expr,
    FuncCall,
    Print,
    SourceFile,
    Stmt,
    UnaryOp,
    VarRef,
)
from ..runtime.costmodel import DEFAULT_COST_MODEL, CostModel
from .interpreter import _MPI_CALLS, Frame, Gen, Interpreter
from .values import FArray, Scalar

# Bump when the recorder's semantics change in any way that could alter
# a replayed result: job fingerprints fold this in (runner.job_fingerprint),
# so cached measurements produced under older recorder semantics are
# invalidated rather than served stale.
SYMMETRY_VERSION = "1.0"

# Worst-case bytes of per-rank shadow storage (P × flat array) the
# recorder will allocate before degrading an array to an approximate
# representative.  256 MiB keeps parity-scale runs (P <= 64) fully
# exact while letting a 1024-rank nodeloop (16 GiB of would-be shadows)
# complete with exact timing.
MAX_SHADOW_BYTES = 256 * 1024 * 1024


class RankVec:
    """A rank-indexed value: slot ``r`` is the value rank ``r`` computes.

    Backed by a numpy vector (int64 / float64 / bool) so element-wise
    arithmetic over all ranks costs one vector op.  Converting one to a
    plain scalar is exactly the taint sink the symmetry proof forbids,
    so every conversion protocol raises :class:`SymmetryError`.
    """

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray) -> None:
        self.values = np.asarray(values)

    @property
    def is_real(self) -> bool:
        return self.values.dtype.kind == "f"

    def _diverges(self, what: str) -> SymmetryError:
        return SymmetryError(
            f"rank-dependent value used {what}: ranks would diverge, so "
            f"one recorded trace cannot stand in for all of them"
        )

    def __bool__(self) -> bool:
        raise self._diverges("in control flow or a logical context")

    def __int__(self) -> int:
        raise self._diverges(
            "where a rank-uniform integer is required (loop bound, MPI "
            "count/root/partner, store subscript, array bound)"
        )

    def __index__(self) -> int:
        raise self._diverges("as an index")

    def __float__(self) -> float:
        raise self._diverges("where a rank-uniform real is required")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RankVec({self.values!r})"


class ApproxVec:
    """A rank-varying value whose per-rank contents were dropped.

    Produced only by reads from budget-degraded (approximate) arrays.
    Carries one deterministic representative so arithmetic and stores
    keep working — timing charges are value-independent — but it is
    *not* any real rank's value, so everything observable (control
    flow, subscripts, MPI arguments, printed output) raises
    :class:`SymmetryError`.
    """

    __slots__ = ("rep",)

    def __init__(self, rep: Scalar) -> None:
        self.rep = rep

    @property
    def is_real(self) -> bool:
        return isinstance(self.rep, float)

    def _dropped(self, what: str) -> SymmetryError:
        return SymmetryError(
            f"approximate per-rank data (shadow budget exceeded) used "
            f"{what}; rerun with engine_mode='full' if its exact contents "
            f"matter"
        )

    def __bool__(self) -> bool:
        raise self._dropped("in control flow")

    def __int__(self) -> int:
        raise self._dropped("where a rank-uniform integer is required")

    def __index__(self) -> int:
        raise self._dropped("as an index")

    def __float__(self) -> float:
        raise self._dropped("where a rank-uniform real is required")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ApproxVec({self.rep!r})"


_VECS = (RankVec, ApproxVec)

# trace event tuples produced by the recorder (sizes are element counts):
#   ("compute", seconds)
#   ("alltoall", send_elems, recv_elems)
#   ("allreduce", count, op)
#   ("allgather", send_elems, recv_elems)
#   ("bcast", count, root)
#   ("barrier",)
TraceEvent = Tuple[Any, ...]


def _rep_of(x: Any) -> Scalar:
    if isinstance(x, ApproxVec):
        return x.rep
    if isinstance(x, RankVec):
        return x.values[0].item()
    return x


def _int_like(x: Any) -> bool:
    """Mirror of ``isinstance(v, int)`` on the scalar path (bool is int)."""
    if isinstance(x, RankVec):
        return x.values.dtype.kind in "bi"
    return isinstance(x, int) and not isinstance(x, float)


class SymmetryRecorder(Interpreter):
    """One vectorized interpretation standing in for all ``nranks`` ranks.

    Drive it like an interpreter (``run_collecting()``); it yields only
    ``Compute`` ops (communication is recorded, not performed).  After a
    successful run, :attr:`trace` holds the collective/compute schedule
    every rank follows, :attr:`main_frame` the rank-uniform final state,
    and :attr:`shadows` each rank-varying array's per-rank contents.
    """

    def __init__(
        self,
        source: SourceFile,
        nranks: int,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_shadow_bytes: int = MAX_SHADOW_BYTES,
    ) -> None:
        if nranks < 1:
            raise SimulationError(f"cannot record a trace for {nranks} ranks")
        super().__init__(source, comm=None, cost_model=cost_model)
        self.nranks = nranks
        self.max_shadow_bytes = max_shadow_bytes
        self.trace: List[TraceEvent] = []
        # per-array (P, size) matrices of flat Fortran-order contents;
        # while an entry exists the FArray's own storage is stale
        self.shadows: Dict[str, np.ndarray] = {}
        self._shadow_bytes = 0
        # arrays degraded to an approximate representative copy
        self._approx: Set[str] = set()
        self._pure_depth = 0
        self._mynode = RankVec(np.arange(nranks, dtype=np.int64))

    @property
    def data_approximate(self) -> bool:
        return bool(self._approx)

    # -------------------------------------------------- flush-exact bodies

    def _exec_body(self, body: Sequence[Stmt], frame: Frame) -> Gen:
        # The fast path runs pure statements as compiled closures that
        # never flush mid-region.  Closures cannot carry RankVecs, so we
        # execute everything through the slow path — but suppress flushes
        # inside pure regions to reproduce the fast path's exact Compute
        # partition (charge totals are identical either way).
        for fn, stmt in self._compiler.body_entries(body):
            if fn is not None:
                self._pure_depth += 1
                try:
                    yield from self._exec_stmt(stmt, frame)
                finally:
                    self._pure_depth -= 1
            else:
                yield from self._exec_stmt(stmt, frame)

    def _maybe_flush(self) -> Gen:
        if not self._pure_depth:
            yield from super()._maybe_flush()

    # --------------------------------------------------------- statements

    def _exec_stmt(self, stmt: Stmt, frame: Frame) -> Gen:
        if isinstance(stmt, Print):
            self.charge(self.cost.stmt_overhead)
            yield from self._maybe_flush()
            values = tuple(self._eval(e, frame) for e in stmt.items)
            for v in values:
                if isinstance(v, ApproxVec):
                    raise v._dropped("in printed output")
            self.output.append(values)
            return
        yield from super()._exec_stmt(stmt, frame)

    def _exec_assign(self, stmt, frame: Frame) -> None:
        value = self._eval(stmt.rhs, frame)
        lhs = stmt.lhs
        if isinstance(lhs, VarRef):
            if lhs.name not in frame.scalars:
                raise InterpError(f"undeclared scalar {lhs.name!r}", stmt.line)
            frame.scalars[lhs.name] = self._coerce(
                value, frame.types.get(lhs.name, "integer")
            )
            return
        if not isinstance(lhs, ArrayRef):
            raise InterpError("invalid assignment target", stmt.line)
        arr = self._array(lhs.name, frame, stmt.line)
        subs = [self._eval(s, frame) for s in lhs.subs]
        self.charge(self.cost.mem_access)
        self._store_element(lhs.name, arr, subs, value, stmt.line)

    def _exec_call(self, stmt, frame: Frame) -> Gen:
        if stmt.name in _MPI_CALLS:
            yield from self._exec_mpi(stmt, frame)
            return
        # Subroutines and externals execute per rank with the rank id in
        # scope; one vectorized activation cannot prove them symmetric.
        # (An *unknown* procedure also lands here: the full-interpretation
        # fallback then reports the proper undefined-procedure error.)
        raise SymmetryError(
            f"call to procedure {stmt.name!r}: subroutine/external bodies "
            f"are interpreted per rank and are outside the symmetry proof"
        )

    # ---------------------------------------------------------- expressions

    def _coerce(self, value: Any, base_type: str) -> Any:  # type: ignore[override]
        if isinstance(value, RankVec):
            v = value.values
            if base_type == "integer":
                return RankVec(v.astype(np.int64))
            if base_type == "real":
                return RankVec(v.astype(np.float64))
            return RankVec(v != 0)
        if isinstance(value, ApproxVec):
            return ApproxVec(Interpreter._coerce(value.rep, base_type))
        return Interpreter._coerce(value, base_type)

    def _eval(self, e: Expr, frame: Frame) -> Any:
        if isinstance(e, ArrayRef):
            arr = self._array(e.name, frame, e.line)
            subs = [self._eval(s, frame) for s in e.subs]
            self.charge(self.cost.mem_access)
            return self._read_element(e.name, arr, subs, e.line)
        if isinstance(e, UnaryOp) and e.op == "-":
            v = self._eval(e.operand, frame)
            if isinstance(v, RankVec):
                self.charge(
                    self.cost.real_op if v.is_real else self.cost.int_op
                )
                return RankVec(-v.values)
            if isinstance(v, ApproxVec):
                self.charge(
                    self.cost.real_op if v.is_real else self.cost.int_op
                )
                return ApproxVec(-v.rep)
            self.charge(
                self.cost.real_op if isinstance(v, float) else self.cost.int_op
            )
            return -v
        return super()._eval(e, frame)

    def _eval_binop(self, e, frame: Frame) -> Any:
        op = e.op
        if op in (".and.", ".or."):
            # short-circuit via _truthy; a vec operand raises SymmetryError
            return super()._eval_binop(e, frame)
        left = self._eval(e.left, frame)
        right = self._eval(e.right, frame)
        if isinstance(left, _VECS) or isinstance(right, _VECS):
            return self._vec_binop(op, left, right, e.line)
        is_real = isinstance(left, float) or isinstance(right, float)
        self.charge(self.cost.real_op if is_real else self.cost.int_op)
        return self._binop_value(op, left, right, is_real, e.line)

    def _vec_binop(self, op: str, left: Any, right: Any, line: int) -> Any:
        if isinstance(left, ApproxVec) or isinstance(right, ApproxVec):
            l, r = _rep_of(left), _rep_of(right)
            is_real = isinstance(l, float) or isinstance(r, float)
            self.charge(self.cost.real_op if is_real else self.cost.int_op)
            return ApproxVec(self._binop_value(op, l, r, is_real, line))
        is_real = (
            (left.is_real if isinstance(left, RankVec) else isinstance(left, float))
            or (right.is_real if isinstance(right, RankVec) else isinstance(right, float))
        )
        self.charge(self.cost.real_op if is_real else self.cost.int_op)
        l = left.values if isinstance(left, RankVec) else left
        r = right.values if isinstance(right, RankVec) else right
        if op == "+":
            out = l + r
        elif op == "-":
            out = l - r
        elif op == "*":
            out = l * r
        elif op == "/":
            if is_real:
                out = l / r
            else:
                # at least one operand is an ndarray here; test the
                # divisor without np.any's dispatch overhead
                zero = (r == 0).any() if isinstance(r, np.ndarray) else r == 0
                if zero:
                    raise InterpError("integer division by zero", line)
                q = abs(l) // abs(r)
                out = np.where((l >= 0) == (r >= 0), q, -q)
        elif op == "**":
            out = np.power(l, r)
        elif op == "==":
            out = l == r
        elif op == "/=":
            out = l != r
        elif op == "<":
            out = l < r
        elif op == "<=":
            out = l <= r
        elif op == ">":
            out = l > r
        elif op == ">=":
            out = l >= r
        else:
            raise InterpError(f"unknown operator {op!r}", line)
        return RankVec(np.asarray(out))

    def _eval_intrinsic(self, e: FuncCall, frame: Frame) -> Any:
        name = e.name
        if name == "mynode":
            return self._mynode
        if name == "numnodes":
            return self.nranks
        args = [self._eval(a, frame) for a in e.args]
        self.charge(self.cost.intrinsic)
        if not any(isinstance(a, _VECS) for a in args):
            return self._intrinsic_value(name, args, e.line)
        return self._vec_intrinsic(name, args, e.line)

    def _vec_intrinsic(self, name: str, args: List[Any], line: int) -> Any:
        if any(isinstance(a, ApproxVec) for a in args):
            reps = [_rep_of(a) for a in args]
            return ApproxVec(self._intrinsic_value(name, reps, line))
        vals = [a.values if isinstance(a, RankVec) else a for a in args]
        if name == "mod":
            a, b = vals
            int_mod = _int_like(args[0]) and _int_like(args[1])
            if int_mod:
                zero = (b == 0).any() if isinstance(b, np.ndarray) else b == 0
                if zero:
                    raise InterpError("mod with zero divisor", line)
            out = np.fmod(a, b)
            if int_mod:
                out = out.astype(np.int64)
            return RankVec(out)
        if name == "min":
            out = vals[0]
            for v in vals[1:]:
                out = np.minimum(out, v)
            return RankVec(np.asarray(out))
        if name == "max":
            out = vals[0]
            for v in vals[1:]:
                out = np.maximum(out, v)
            return RankVec(np.asarray(out))
        if name == "abs":
            return RankVec(np.abs(vals[0]))
        if name == "int":
            return RankVec(np.trunc(vals[0]).astype(np.int64))
        if name == "real":
            return RankVec(np.asarray(vals[0], dtype=np.float64))
        if name == "sqrt":
            v = np.asarray(vals[0])
            if np.any(v < 0):
                raise ValueError("math domain error")
            return RankVec(np.sqrt(v))
        if name in ("sin", "cos", "exp", "log"):
            # element-wise through libm: numpy's SIMD kernels for these
            # are not guaranteed bit-identical to math.*
            fn = getattr(math, name)
            return RankVec(
                np.array([fn(x) for x in np.asarray(vals[0]).tolist()])
            )
        if name in ("iand", "ior", "ieor"):
            a = np.trunc(np.asarray(vals[0])).astype(np.int64)
            b = np.trunc(np.asarray(vals[1])).astype(np.int64)
            if name == "iand":
                return RankVec(a & b)
            if name == "ior":
                return RankVec(a | b)
            return RankVec(a ^ b)
        if name == "ishft":
            a = np.trunc(np.asarray(vals[0])).astype(np.int64)
            s = np.trunc(np.asarray(vals[1])).astype(np.int64)
            left = np.left_shift(a, np.maximum(s, 0))
            right = np.right_shift(a, np.maximum(-s, 0))
            return RankVec(np.asarray(np.where(s >= 0, left, right)))
        if name == "merge":
            t, f, cond = vals
            if isinstance(args[2], RankVec):
                cond = np.asarray(cond) != 0
            else:
                cond = bool(cond)
            return RankVec(np.asarray(np.where(cond, t, f)))
        # "size" and unknown intrinsics: raise the scalar path's error
        return self._intrinsic_value(name, [_rep_of(a) for a in args], line)

    # ------------------------------------------------------ shadowed arrays

    def _read_element(
        self, name: str, arr: FArray, subs: List[Any], line: int
    ) -> Any:
        for s in subs:
            if isinstance(s, ApproxVec):
                raise s._dropped(f"as a subscript reading {name!r}")
        if any(isinstance(s, RankVec) for s in subs):
            return self._gather(name, arr, subs, line)
        subs = [int(s) for s in subs]
        shadow = self.shadows.get(name)
        if shadow is None:
            value = arr.get(subs)
            if name in self._approx:
                return ApproxVec(value)
            return value
        return self._collapse(shadow[:, arr.flat_offset(subs)], arr.base_type)

    def _gather(
        self, name: str, arr: FArray, subs: List[Any], line: int
    ) -> Any:
        """Read with rank-dependent subscripts: each rank reads its own
        element (halo-exchange style, e.g. ``halo(left * 2 + 2)``)."""
        if len(subs) != arr.rank:
            raise InterpError(
                f"rank mismatch: {len(subs)} subscripts for rank-{arr.rank} "
                f"array"
            )
        P = self.nranks
        offs: Any = np.zeros(P, dtype=np.int64)
        stride = 1
        for s, lo, extent in zip(subs, arr.lbounds, arr.shape):
            sv = s.values if isinstance(s, RankVec) else int(s)
            off_d = sv - lo
            bad = (np.asarray(off_d) < 0) | (np.asarray(off_d) >= extent)
            if np.any(bad):
                where = np.atleast_1d(np.asarray(off_d) + lo)[
                    int(np.argmax(np.atleast_1d(bad)))
                ]
                raise InterpError(
                    f"subscript {int(where)} out of bounds "
                    f"[{lo}, {lo + extent - 1}]"
                )
            offs = offs + off_d * stride
            stride *= extent
        shadow = self.shadows.get(name)
        if shadow is not None:
            col = shadow[np.arange(P), offs]
        elif name in self._approx:
            v = np.asarray(arr.flat())[int(offs[0])]
            return ApproxVec(
                float(v) if arr.base_type == "real" else int(v)
            )
        else:
            col = np.asarray(arr.flat())[offs]
        return self._collapse(col, arr.base_type)

    def _collapse(self, col: np.ndarray, base_type: str) -> Any:
        first = col[0]
        if (col == first).all():
            return float(first) if base_type == "real" else int(first)
        return RankVec(col.copy())

    def _store_element(
        self, name: str, arr: FArray, subs: List[Any], value: Any, line: int
    ) -> None:
        if any(isinstance(s, _VECS) for s in subs):
            raise SymmetryError(
                f"rank-dependent subscript in a store to {name!r}: ranks "
                f"would write different elements of the same array"
            )
        subs = [int(s) for s in subs]
        if isinstance(value, ApproxVec):
            self._demote_to_rank0(name, arr)
            arr.set(subs, value.rep)
            self._approx.add(name)
            return
        if isinstance(value, RankVec):
            shadow = self._shadow_for(name, arr)
            if shadow is None:  # over budget: keep rank 0's copy only
                arr.set(subs, value.values[0].item())
                self._approx.add(name)
                return
            shadow[:, arr.flat_offset(subs)] = value.values
            return
        shadow = self.shadows.get(name)
        if shadow is not None:
            shadow[:, arr.flat_offset(subs)] = value
            return
        arr.set(subs, value)

    def _shadow_for(self, name: str, arr: FArray) -> Optional[np.ndarray]:
        shadow = self.shadows.get(name)
        if shadow is not None:
            return shadow
        if name in self._approx:
            return None
        flat = np.asarray(arr.flat())
        need = flat.nbytes * self.nranks
        if self._shadow_bytes + need > self.max_shadow_bytes:
            return None
        shadow = np.repeat(flat[None, :], self.nranks, axis=0)
        self.shadows[name] = shadow
        self._shadow_bytes += need
        return shadow

    def _drop_shadow(self, name: str) -> None:
        shadow = self.shadows.pop(name, None)
        if shadow is not None:
            self._shadow_bytes -= shadow.nbytes

    def _demote_to_rank0(self, name: str, arr: FArray) -> None:
        shadow = self.shadows.pop(name, None)
        if shadow is not None:
            self._shadow_bytes -= shadow.nbytes
            arr.flat()[:] = shadow[0]

    def _send_rows(self, name: str, arr: FArray) -> np.ndarray:
        """Every rank's flat copy of ``name``: the shadow, or a broadcast
        view of the rank-uniform contents (no copy)."""
        shadow = self.shadows.get(name)
        if shadow is not None:
            return shadow
        flat = np.asarray(arr.flat())
        return np.broadcast_to(flat, (self.nranks, flat.size))

    def _budget_allows(self, name: str, need: int) -> bool:
        current = self.shadows.get(name)
        used = self._shadow_bytes - (
            current.nbytes if current is not None else 0
        )
        return used + need <= self.max_shadow_bytes

    def _install_rows(
        self, name: str, arr: FArray, rows: np.ndarray
    ) -> None:
        """Replace ``name``'s contents with per-rank rows, collapsing to
        rank-uniform storage when every row coincides."""
        if rows.dtype != arr.data.dtype:
            rows = rows.astype(arr.data.dtype)
        first = rows[0]
        if (rows == first).all():
            self._drop_shadow(name)
            arr.flat()[:] = first
            self._approx.discard(name)
            return
        self._drop_shadow(name)
        rows = np.ascontiguousarray(rows)
        self.shadows[name] = rows
        self._shadow_bytes += rows.nbytes
        self._approx.discard(name)

    # -------------------------------------------------------------- MPI

    def _exec_mpi(self, stmt, frame: Frame) -> Gen:
        yield from self._flush()
        name = stmt.name
        if name == "mpi_alltoall":
            self._rec_alltoall(stmt, frame)
        elif name == "mpi_allreduce":
            self._rec_allreduce(stmt, frame)
        elif name == "mpi_allgather":
            self._rec_allgather(stmt, frame)
        elif name == "mpi_bcast":
            self._rec_bcast(stmt, frame)
        elif name == "mpi_barrier":
            self.trace.append(("barrier",))
        else:
            raise SymmetryError(
                f"{name}: point-to-point partners/counts are per-rank "
                f"expressions; symmetry is not provable for explicit "
                f"send/recv programs"
            )
        self._set_ierr(stmt, frame)

    def _rec_alltoall(self, stmt, frame: Frame) -> None:
        P = self.nranks
        if len(stmt.args) < 7:
            raise InterpError("mpi_alltoall needs 8 arguments", stmt.line)
        send = self._whole_array(stmt.args[0], frame, stmt.line)
        recv = self._whole_array(stmt.args[3], frame, stmt.line)
        scount = int(self._eval(stmt.args[1], frame))
        if scount * P != send.size:
            raise InterpError(
                f"mpi_alltoall send count {scount} * {P} ranks != "
                f"buffer size {send.size}",
                stmt.line,
            )
        if send.size % P or recv.size % P:
            raise SimulationError(
                f"alltoall buffer length {send.size} not divisible by "
                f"{P} ranks"
            )
        if recv.size != send.size:
            raise SimulationError("alltoall send/recv sizes differ")
        sname, rname = stmt.args[0].name, stmt.args[3].name
        self.trace.append(("alltoall", send.size, recv.size))
        part = send.size // P
        if sname in self._approx:
            # senders' true rows are unknown; deterministic fill
            rep = np.asarray(send.flat())
            self._drop_shadow(rname)
            recv.flat()[:] = np.tile(rep[:part], P)
            self._approx.add(rname)
            return
        rows = self._send_rows(sname, send)
        if not self._budget_allows(rname, P * send.size * rows.dtype.itemsize):
            # recv row r is rank r's exact result; keep only rank 0's:
            # recv_0 block i = send_i block 0
            rep_row = np.ascontiguousarray(rows[:, :part]).reshape(-1)
            self._drop_shadow(rname)
            recv.flat()[:] = rep_row
            self._approx.add(rname)
            return
        # recv_j partition i = send_i partition j: a blocked transpose
        cube = np.ascontiguousarray(rows).reshape(P, P, part)
        recv_rows = np.ascontiguousarray(cube.transpose(1, 0, 2)).reshape(
            P, send.size
        )
        self._install_rows(rname, recv, recv_rows)

    def _rec_allreduce(self, stmt, frame: Frame) -> None:
        from ..runtime.collectives import OP_CODES, reduce_ufunc

        P = self.nranks
        if len(stmt.args) not in (4, 5):
            raise InterpError(
                "mpi_allreduce needs (sbuf, rbuf, count[, op], ierr)",
                stmt.line,
            )
        send = self._whole_array(stmt.args[0], frame, stmt.line)
        recv = self._whole_array(stmt.args[1], frame, stmt.line)
        count = int(self._eval(stmt.args[2], frame))
        if count != send.size or count != recv.size:
            raise InterpError(
                f"mpi_allreduce count {count} != buffer sizes "
                f"{send.size}/{recv.size}",
                stmt.line,
            )
        op = "sum"
        if len(stmt.args) == 5:
            code = int(self._eval(stmt.args[3], frame))
            if code not in OP_CODES:
                raise InterpError(
                    f"mpi_allreduce op code {code} unknown "
                    f"(0 sum, 1 max, 2 min, 3 prod)",
                    stmt.line,
                )
            op = OP_CODES[code]
        if send.base_type == "real" or recv.base_type == "real":
            raise SymmetryError(
                "allreduce on real data: each algorithm's combination "
                "order groups the floating-point reduction differently, "
                "which an algebraic replay cannot reproduce"
            )
        sname, rname = stmt.args[0].name, stmt.args[1].name
        self.trace.append(("allreduce", count, op))
        ufunc = reduce_ufunc(op)
        if sname in self._approx:
            rep = np.asarray(send.flat())
            res = ufunc.reduce(np.broadcast_to(rep, (P, rep.size)), axis=0)
            self._drop_shadow(rname)
            recv.flat()[:] = res
            self._approx.add(rname)
            return
        res = ufunc.reduce(self._send_rows(sname, send), axis=0)
        self._drop_shadow(rname)
        recv.flat()[:] = res
        self._approx.discard(rname)

    def _rec_allgather(self, stmt, frame: Frame) -> None:
        P = self.nranks
        if len(stmt.args) != 4:
            raise InterpError(
                "mpi_allgather needs (sbuf, scount, rbuf, ierr)", stmt.line
            )
        send = self._whole_array(stmt.args[0], frame, stmt.line)
        recv = self._whole_array(stmt.args[2], frame, stmt.line)
        scount = int(self._eval(stmt.args[1], frame))
        if scount != send.size:
            raise InterpError(
                f"mpi_allgather send count {scount} != buffer size "
                f"{send.size}",
                stmt.line,
            )
        if scount * P != recv.size:
            raise InterpError(
                f"mpi_allgather recv buffer size {recv.size} != count "
                f"{scount} * {P} ranks",
                stmt.line,
            )
        sname, rname = stmt.args[0].name, stmt.args[2].name
        self.trace.append(("allgather", send.size, recv.size))
        if sname in self._approx:
            rep = np.asarray(send.flat())
            self._drop_shadow(rname)
            recv.flat()[:] = np.tile(rep, P)
            self._approx.add(rname)
            return
        # partition j of every rank's recv is rank j's send: the result
        # is rank-uniform even when the contributions differ
        flat = np.ascontiguousarray(self._send_rows(sname, send)).reshape(-1)
        self._drop_shadow(rname)
        recv.flat()[:] = flat
        self._approx.discard(rname)

    def _rec_bcast(self, stmt, frame: Frame) -> None:
        P = self.nranks
        if len(stmt.args) != 4:
            raise InterpError(
                "mpi_bcast needs (buf, count, root, ierr)", stmt.line
            )
        buf = self._whole_array(stmt.args[0], frame, stmt.line)
        count = int(self._eval(stmt.args[1], frame))
        if count != buf.size:
            raise InterpError(
                f"mpi_bcast count {count} != buffer size {buf.size}",
                stmt.line,
            )
        root = int(self._eval(stmt.args[2], frame))
        if not 0 <= root < P:
            raise SimulationError(
                f"bcast root {root} out of range for {P} ranks"
            )
        name = stmt.args[0].name
        self.trace.append(("bcast", count, root))
        shadow = self.shadows.get(name)
        if shadow is not None:
            row = shadow[root].copy()
            self._drop_shadow(name)
            buf.flat()[:] = row
            self._approx.discard(name)
        # rank-uniform buf: broadcasting is the identity; approximate
        # buf: the root's true contents are unknown, so it stays approx
