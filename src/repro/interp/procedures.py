"""External procedures: the paper's "procedure whose source is unavailable".

The indirect pattern (§3.2) computes data in a procedure ``P`` that the
transformer cannot see into; at runtime it is a compiled library routine.
We model such routines as Python callables registered by name.  Each
declares which argument positions it mutates — that is exactly the answer
the paper's semi-automatic *user query* provides, so test programs can
hand the same information to a
:class:`~repro.analysis.callinfo.DictOracle`.

An external also declares its virtual CPU cost (it is compiled code, so
the interpreter's per-statement model does not apply).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Set, Union

import numpy as np

from ..errors import InterpError
from .values import FArray, Scalar

Arg = Union[Scalar, FArray]


@dataclass
class ExternalCall:
    """Context handed to an external procedure implementation."""

    name: str
    args: list
    rank: int
    size: int

    def scalar(self, i: int) -> Scalar:
        v = self.args[i]
        if isinstance(v, FArray):
            raise InterpError(
                f"{self.name}: argument {i} is an array, expected a scalar"
            )
        return v

    def array(self, i: int) -> FArray:
        v = self.args[i]
        if not isinstance(v, FArray):
            raise InterpError(
                f"{self.name}: argument {i} is a scalar, expected an array"
            )
        return v


#: Implementation signature: receives the call context, returns the
#: virtual CPU seconds the routine costs (or None for zero).
ExternalFn = Callable[[ExternalCall], Optional[float]]


@dataclass
class ExternalProc:
    """A registered external procedure."""

    name: str
    fn: ExternalFn
    mutates: Set[int] = field(default_factory=set)

    def oracle_answer(self) -> Set[int]:
        """The mutated-argument answer a user would give the oracle."""
        return set(self.mutates)


class ExternalRegistry:
    """Name -> :class:`ExternalProc` lookup used by the interpreter."""

    def __init__(self, procs: Sequence[ExternalProc] = ()) -> None:
        self._procs: Dict[str, ExternalProc] = {}
        for p in procs:
            self.register(p)

    def register(self, proc: ExternalProc) -> None:
        self._procs[proc.name] = proc

    def lookup(self, name: str) -> Optional[ExternalProc]:
        return self._procs.get(name)

    def names(self) -> Sequence[str]:
        return sorted(self._procs)

    def oracle_answers(self) -> Dict[str, Set[int]]:
        """Answers for a :class:`~repro.analysis.callinfo.DictOracle`."""
        return {name: p.oracle_answer() for name, p in self._procs.items()}


def make_producer(
    name: str,
    producer: Callable[[int, int, int, np.ndarray], None],
    *,
    work_per_element: float = 50e-9,
    out_arg: int = 1,
    step_arg: int = 0,
    slab_size: Optional[int] = None,
) -> ExternalProc:
    """Build the Fig. 3 style producer ``call p(step, at)``.

    ``producer(step, rank, size, out_flat)`` fills the output buffer for
    one outer-loop step.  ``slab_size`` bounds how many elements the
    routine writes; this matters after the copy-elimination transformation
    expands ``At`` with a tile dimension and passes ``At(1, slot)`` by
    sequence association — the routine must then fill exactly one slab,
    not the whole remaining storage.  The external charges
    ``work_per_element * slab`` virtual CPU seconds, modeling the compiled
    kernel the paper's test program hides inside ``P``.
    """

    def fn(call: ExternalCall) -> float:
        step = int(call.scalar(step_arg))
        out = call.array(out_arg)
        flat = out.flat()
        n = min(slab_size, flat.size) if slab_size else flat.size
        producer(step, call.rank, call.size, flat[:n])
        return work_per_element * n

    return ExternalProc(name=name, fn=fn, mutates={out_arg})
