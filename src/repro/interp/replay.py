"""Replay engine: run one recorded trace on every rank of the cluster.

The second half of the rank-symmetry engine (DESIGN.md §10; the first
half is :mod:`repro.interp.symmetry`).  :func:`replay_cluster` records
the program once with :class:`~repro.interp.symmetry.SymmetryRecorder`,
then drives the real :class:`~repro.runtime.simulator.Engine` with one
lightweight generator per rank that replays the recorded schedule:
``Compute`` events verbatim, collectives re-issued through a real
per-rank :class:`~repro.runtime.mpi.SimComm` so the registered
algorithms emit exactly the isend/irecv/wait streams full
interpretation would.  Timing is therefore *identical*, not
approximated: the engine sees the same ops with the same byte counts in
the same order, and its scheduling is deterministic.

Replay ranks share scratch buffers per trace event *and* one
collective-staging pool (collective algorithms' control flow depends
only on rank, size, and partition size, never payload values — see
:meth:`~repro.runtime.mpi.SimComm.staging_buffer`), run with
``detect_races=False`` (recorded
programs are collective-only, hence race-free — full interpretation
reports no warnings for them either) and ``snapshot_payloads=False``
(payload contents are already accounted for by the recorder's shadow
algebra, so copy-on-write snapshots would be pure overhead).

The recorded data is reassembled into the same
:class:`~repro.interp.runner.ClusterRun` shape full interpretation
produces: per-rank print records expanded from rank vectors, per-rank
final arrays from shadows (rank-uniform arrays share one ndarray across
ranks — treat them read-only).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Sequence, Tuple, Union

import numpy as np

from ..errors import SimulationError, SymmetryError
from ..lang import SourceFile, parse
from ..runtime.collectives import CollectiveSpec
from ..runtime.costmodel import DEFAULT_COST_MODEL, CostModel
from ..runtime.events import Compute, SimOp
from ..runtime.mpi import SimComm
from ..runtime.network import IDEAL, NetworkModel, resolve_model
from ..runtime.simulator import Engine
from .runner import ClusterRun
from .symmetry import RankVec, SymmetryRecorder, TraceEvent


def record_trace(
    program: Union[str, SourceFile],
    nranks: int,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> SymmetryRecorder:
    """Interpret ``program`` once for all ranks; raises
    :class:`~repro.errors.SymmetryError` when symmetry cannot be proven."""
    source = program if isinstance(program, SourceFile) else parse(program)
    recorder = SymmetryRecorder(source, nranks, cost_model=cost_model)
    for op in recorder.run_collecting():
        if type(op) is not Compute:
            raise SymmetryError(
                f"recorder produced a non-compute op {op!r}"
            )  # pragma: no cover - recorder never emits these
        recorder.trace.append(("compute", op.seconds))
    return recorder


def _scratch_for(events: Sequence[TraceEvent]) -> List[Tuple[np.ndarray, ...]]:
    """One shared buffer set per trace event (int64: 8 bytes/element,
    the same wire size as every mini-Fortran dtype)."""
    scratch: List[Tuple[np.ndarray, ...]] = []
    for ev in events:
        kind = ev[0]
        if kind in ("alltoall", "allgather"):
            scratch.append(
                (np.zeros(ev[1], np.int64), np.zeros(ev[2], np.int64))
            )
        elif kind == "allreduce":
            scratch.append(
                (np.zeros(ev[1], np.int64), np.zeros(ev[1], np.int64))
            )
        elif kind == "bcast":
            scratch.append((np.zeros(ev[1], np.int64),))
        else:
            scratch.append(())
    return scratch


def _replay_rank(
    rank: int,
    nranks: int,
    events: Sequence[TraceEvent],
    scratch: Sequence[Tuple[np.ndarray, ...]],
    collective: CollectiveSpec,
    staging: Dict[Any, np.ndarray],
) -> Generator[SimOp, Any, Any]:
    comm = SimComm(rank, nranks, collectives=collective, staging=staging)
    for ev, bufs in zip(events, scratch):
        kind = ev[0]
        if kind == "compute":
            yield Compute(seconds=ev[1])
        elif kind == "alltoall":
            yield from comm.alltoall(bufs[0], bufs[1])
        elif kind == "allreduce":
            yield from comm.allreduce(bufs[0], bufs[1], op=ev[2])
        elif kind == "allgather":
            yield from comm.allgather(bufs[0], bufs[1])
        elif kind == "bcast":
            yield from comm.bcast(bufs[0], root=ev[2])
        elif kind == "barrier":
            yield from comm.barrier()
        else:  # pragma: no cover - trace entries are produced above
            raise SimulationError(f"unknown trace event {kind!r}")


def replay_cluster(
    program: Union[str, SourceFile],
    nranks: int,
    network: Union[str, NetworkModel] = IDEAL,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    collective: CollectiveSpec = None,
) -> ClusterRun:
    """Record once, replay on ``nranks`` ranks; bit-identical to
    :func:`~repro.interp.runner._simulate` whenever recording succeeds.

    Raises :class:`~repro.errors.SymmetryError` when the program is not
    provably rank-symmetric (the caller decides whether to fall back).
    """
    recorder = record_trace(program, nranks, cost_model=cost_model)
    events = recorder.trace
    scratch = _scratch_for(events)
    # one collective-staging pool for the whole cluster (see
    # SimComm.staging_buffer): replayed payloads are never read back,
    # so ranks may share — and at 1024 ranks, per-rank staging would
    # multiply the footprint by three orders of magnitude
    staging: Dict[Any, np.ndarray] = {}
    engine = Engine(
        [
            _replay_rank(rank, nranks, events, scratch, collective, staging)
            for rank in range(nranks)
        ],
        resolve_model(network),
        detect_races=False,
        snapshot_payloads=False,
    )
    result = engine.run()
    return ClusterRun(
        result=result,
        outputs=_expand_outputs(recorder, nranks),
        arrays=_expand_arrays(recorder, nranks),
        data_approximate=recorder.data_approximate,
    )


def _expand_outputs(
    recorder: SymmetryRecorder, nranks: int
) -> List[List[Tuple[Any, ...]]]:
    template = recorder.output
    has_vecs = any(
        isinstance(v, RankVec) for entry in template for v in entry
    )
    if not has_vecs:
        return [list(template) for _ in range(nranks)]
    return [
        [
            tuple(
                v.values[rank].item() if isinstance(v, RankVec) else v
                for v in entry
            )
            for entry in template
        ]
        for rank in range(nranks)
    ]


def _expand_arrays(
    recorder: SymmetryRecorder, nranks: int
) -> List[Dict[str, np.ndarray]]:
    # rank-uniform (and approximate-representative) arrays are shared
    # across ranks as one ndarray; shadowed arrays get per-rank copies
    frame = recorder.main_frame
    shared = {
        name: arr.data.copy(order="F")
        for name, arr in frame.arrays.items()
        if name not in recorder.shadows
    }
    arrays: List[Dict[str, np.ndarray]] = []
    for rank in range(nranks):
        d = dict(shared)
        for name, shadow in recorder.shadows.items():
            shape = frame.arrays[name].shape
            d[name] = np.asfortranarray(
                shadow[rank].reshape(shape, order="F")
            )
        arrays.append(d)
    return arrays
